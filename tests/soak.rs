//! Long-running soak tests, `#[ignore]`d by default. Run with:
//!
//! ```sh
//! cargo test --release --test soak -- --ignored --nocapture
//! ```

use leaplist::{LeapListLt, Params};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// 30 seconds of mixed load on the paper's default configuration with
/// continuous snapshot validation and a final model reconciliation of a
/// thread-owned key stripe.
#[test]
#[ignore = "soak test: ~30s"]
fn lt_soak_mixed_load() {
    let map = Arc::new(LeapListLt::<u64>::new(Params::default()));
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let threads = 4;
    let key_space = 50_000u64;

    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let map = map.clone();
            let stop = stop.clone();
            let ops = ops.clone();
            std::thread::spawn(move || {
                let mut rng = 0x50AC + t;
                let mut n = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let k = xorshift(&mut rng) % key_space;
                    match xorshift(&mut rng) % 10 {
                        0..=3 => {
                            map.update(k, n);
                        }
                        4..=5 => {
                            map.remove(k);
                        }
                        6..=8 => {
                            std::hint::black_box(map.lookup(k));
                        }
                        _ => {
                            let span = 1_000 + xorshift(&mut rng) % 1_000;
                            let snap = map.range_query(k, (k + span).min(u64::MAX - 2));
                            for w in snap.windows(2) {
                                assert!(w[0].0 < w[1].0, "torn soak snapshot");
                            }
                        }
                    }
                    n += 1;
                }
                ops.fetch_add(n, Ordering::Relaxed);
            })
        })
        .collect();

    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(500));
        // Periodic global invariant: len agrees with a full snapshot.
        let snap = map.range_query(0, key_space + 2_000);
        for w in snap.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
    stop.store(true, Ordering::Release);
    for w in workers {
        w.join().unwrap();
    }
    let total = ops.load(Ordering::Relaxed);
    println!("soak: {total} operations, final population {}", map.len());
    assert!(total > 0);
    assert_eq!(map.len(), map.range_query(0, key_space + 2_000).len());
}
