//! Cross-crate integration tests: the full stack (EBR + STM + Leap-List)
//! exercised in the configurations the paper actually ran, including the
//! GCC-TM-faithful write-through mode.

use leap_stm::{atomically, Mode, StmDomain, TVar};
use leaplist::{LeapListCop, LeapListLt, LeapListRwlock, LeapListTm, Params, RangeMap};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn small_params() -> Params {
    Params {
        node_size: 4,
        max_level: 8,
        use_trie: true,
        ..Params::default()
    }
}

/// The paper's actual substrate is weakly-isolated *write-through* GCC-TM;
/// the marked-pointer protocol exists precisely for that mode. Run the LT
/// variant on a write-through domain under churn with concurrent
/// linearizable range queries.
#[test]
fn leap_lt_on_write_through_domain_stays_consistent() {
    let domain = Arc::new(StmDomain::with_config(Mode::WriteThrough, 14));
    let map = Arc::new(LeapListLt::<u64>::with_domain(small_params(), domain));
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3u64)
        .map(|t| {
            let map = map.clone();
            std::thread::spawn(move || {
                let mut rng = 0xBEEF + t;
                for i in 0..3_000u64 {
                    let k = xorshift(&mut rng) % 200;
                    if i % 4 == 0 {
                        map.remove(k);
                    } else {
                        map.update(k, i);
                    }
                }
            })
        })
        .collect();
    let checker = {
        let map = map.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let snap = map.range_query(0, 500);
                for w in snap.windows(2) {
                    assert!(w[0].0 < w[1].0, "torn snapshot under write-through");
                }
            }
        })
    };
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    checker.join().unwrap();
}

/// All four variants given the same operation sequence end in the same
/// state, which also matches the model.
#[test]
fn variants_agree_on_identical_histories() {
    let lt = LeapListLt::<u64>::new(small_params());
    let cop = LeapListCop::<u64>::new(small_params());
    let tm = LeapListTm::<u64>::new(small_params());
    let rw = LeapListRwlock::<u64>::new(small_params());
    let maps: [&dyn RangeMap<u64>; 4] = [&lt, &cop, &tm, &rw];
    let mut model = BTreeMap::new();
    let mut rng = 0x5151u64;
    for i in 0..3_000u64 {
        let k = xorshift(&mut rng) % 128;
        if xorshift(&mut rng).is_multiple_of(3) {
            for m in &maps {
                m.remove(k);
            }
            model.remove(&k);
        } else {
            for m in &maps {
                m.update(k, i);
            }
            model.insert(k, i);
        }
    }
    let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    for m in &maps {
        assert_eq!(m.range_query(0, 1_000), want);
    }
}

/// Leap-Lists and hand-written transactions can share one domain: a
/// transactional counter is updated concurrently with list operations on
/// the same `StmDomain` without interference.
#[test]
fn lists_and_raw_transactions_share_a_domain() {
    let domain = Arc::new(StmDomain::new());
    let map = Arc::new(LeapListLt::<u64>::with_domain(
        small_params(),
        domain.clone(),
    ));
    let counter = Arc::new(TVar::new(0u64));
    let list_worker = {
        let map = map.clone();
        std::thread::spawn(move || {
            for i in 0..2_000u64 {
                map.update(i % 64, i);
            }
        })
    };
    let tx_worker = {
        let domain = domain.clone();
        let counter = counter.clone();
        std::thread::spawn(move || {
            for _ in 0..2_000 {
                atomically(&domain, |tx| {
                    let c = tx.read(&*counter)?;
                    tx.write(&*counter, c + 1)
                });
            }
        })
    };
    list_worker.join().unwrap();
    tx_worker.join().unwrap();
    assert_eq!(counter.naked_load(), 2_000);
    assert_eq!(map.len(), 64);
    let stats = domain.stats();
    assert!(stats.total_commits() >= 4_000, "stats: {stats}");
}

/// Structures created and dropped while others churn: the shared default
/// EBR collector must reclaim each structure's garbage without touching
/// the others.
#[test]
fn many_structures_share_the_default_collector() {
    let survivor = Arc::new(LeapListLt::<u64>::new(small_params()));
    let churn = {
        let survivor = survivor.clone();
        std::thread::spawn(move || {
            for i in 0..1_000u64 {
                survivor.update(i % 32, i);
            }
        })
    };
    for round in 0..20 {
        let temp = LeapListLt::<u64>::new(small_params());
        for k in 0..50u64 {
            temp.update(k, round);
        }
        for k in 0..50u64 {
            temp.remove(k);
        }
        drop(temp);
    }
    churn.join().unwrap();
    assert_eq!(survivor.len(), 32);
    for k in 0..32u64 {
        assert!(survivor.lookup(k).is_some());
    }
}

/// The composite multi-list operation is the distinguishing API claim
/// ("updating functions compose operations on multiple Leap-Lists"):
/// an invariant spanning FOUR lists survives concurrent batched updates.
#[test]
fn four_list_batches_preserve_cross_list_invariant() {
    let lists = Arc::new(LeapListLt::<u64>::group(4, small_params()));
    {
        let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
        LeapListLt::update_batch(&refs, &[1, 1, 1, 1], &[0, 0, 0, 0]);
    }
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let lists = lists.clone();
        std::thread::spawn(move || {
            let refs: Vec<&LeapListLt<u64>> = lists.iter().collect();
            for g in 1..=4_000u64 {
                // All four lists move to generation g atomically.
                LeapListLt::update_batch(&refs, &[1, 1, 1, 1], &[g, g, g, g]);
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let lists = lists.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Reads are per-list (the paper's lookups address one
                    // list); each list's generation must be monotone.
                    let g = lists[0].lookup(1).unwrap();
                    assert!(g >= last, "generation went backwards");
                    last = g;
                }
            })
        })
        .collect();
    writer.join().unwrap();
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    for l in lists.iter() {
        assert_eq!(l.lookup(1), Some(4_000));
    }
}

/// End-to-end sanity for the bench harness: a short measured run on every
/// algorithm completes and reports plausible throughput.
#[test]
fn bench_harness_smoke() {
    use leap_bench::driver::{run_throughput, RunCfg};
    use leap_bench::target::{make_target, Algo};
    use leap_bench::workload::{Mix, Workload};
    for algo in [
        Algo::LeapLt,
        Algo::LeapCop,
        Algo::LeapTm,
        Algo::LeapRwlock,
        Algo::SkipCas,
        Algo::SkipTm,
    ] {
        let lists = if matches!(algo, Algo::SkipCas | Algo::SkipTm) {
            1
        } else {
            4
        };
        let t = make_target(algo, lists, small_params());
        t.prefill(200);
        let wl = Workload {
            mix: Mix::read_dominated(),
            key_range: 400,
            span_min: 5,
            span_max: 25,
            key_dist: Default::default(),
            batch_keys: Default::default(),
        };
        let cfg = RunCfg {
            threads: 2,
            duration: std::time::Duration::from_millis(40),
            repeats: 1,
            seed: 1,
        };
        let ops = run_throughput(&t, &wl, &cfg);
        assert!(ops > 50.0, "{:?} throughput {ops}", algo);
    }
}
