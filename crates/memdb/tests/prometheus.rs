//! Prometheus exposition conformance for the table + store registries.
//!
//! The scrape surface is consumed by an external system, so its contract
//! is pinned here: histogram buckets must be cumulative and monotone in
//! `le`, `_sum`/`_count` must agree with the JSON snapshot of the same
//! instruments, and scraping a sharded table's two registries (table-level
//! and store-level) into one page must never produce a duplicate series.

use leap_memdb::{Schema, Table};
use std::collections::HashSet;

/// One parsed histogram block: `(le, cumulative_count)` bucket pairs in
/// file order, plus the trailing sum and count samples.
struct HistBlock {
    buckets: Vec<(f64, u64)>,
    sum: u64,
    count: u64,
}

/// Parses every `# TYPE <name> histogram` block out of a Prometheus text
/// page. Panics on malformed lines — the point of the test.
fn parse_histograms(page: &str) -> Vec<(String, HistBlock)> {
    let mut out: Vec<(String, HistBlock)> = Vec::new();
    let mut current: Option<(String, HistBlock)> = None;
    for line in page.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some(done) = current.take() {
                out.push(done);
            }
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE line names a series");
            if parts.next() == Some("histogram") {
                current = Some((
                    name.to_string(),
                    HistBlock {
                        buckets: Vec::new(),
                        sum: 0,
                        count: 0,
                    },
                ));
            }
            continue;
        }
        let Some((name, block)) = current.as_mut() else {
            continue;
        };
        if let Some(rest) = line.strip_prefix(&format!("{name}_bucket{{le=\"")) {
            let (le, tail) = rest.split_once("\"}").expect("closing le quote: {line}");
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse()
                    .unwrap_or_else(|_| panic!("numeric le in {line}"))
            };
            let cum = tail
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("numeric bucket value in {line}"));
            block.buckets.push((le, cum));
        } else if let Some(v) = line.strip_prefix(&format!("{name}_sum ")) {
            block.sum = v.trim().parse().expect("numeric _sum");
        } else if let Some(v) = line.strip_prefix(&format!("{name}_count ")) {
            block.count = v.trim().parse().expect("numeric _count");
        }
    }
    if let Some(done) = current.take() {
        out.push(done);
    }
    out
}

/// Every `# TYPE`-declared series name on a page.
fn series_names(page: &str) -> Vec<String> {
    page.lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|rest| rest.split_whitespace().next())
        .map(str::to_string)
        .collect()
}

fn exercised_table() -> Table {
    let schema = Schema::new(&["user", "age"]).with_index("age");
    let table = Table::sharded(schema);
    let mut ids = Vec::new();
    for i in 0..40 {
        ids.push(table.insert(&[1000 + i, i % 7]).expect("insert"));
    }
    for &id in &ids {
        assert!(table.get(id).is_some());
    }
    table.update_column(ids[0], "age", 50).expect("update");
    table.delete(ids[1]).expect("delete");
    assert!(!table.scan_by("age", 0, 100).expect("scan").is_empty());
    assert!(!table.is_empty());
    table
}

#[test]
fn buckets_are_cumulative_and_monotone_in_le() {
    let table = exercised_table();
    let store = table.store().expect("sharded backend");
    for page in [
        table.obs().registry().to_prometheus(),
        store
            .obs()
            .expect("obs on by default")
            .registry()
            .to_prometheus(),
    ] {
        let hists = parse_histograms(&page);
        assert!(!hists.is_empty(), "page declares histograms:\n{page}");
        for (name, block) in hists {
            assert!(
                !block.buckets.is_empty(),
                "{name} has at least the +Inf bucket"
            );
            for pair in block.buckets.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "{name}: le strictly increasing ({} then {})",
                    pair[0].0,
                    pair[1].0
                );
                assert!(
                    pair[0].1 <= pair[1].1,
                    "{name}: cumulative counts non-decreasing"
                );
            }
            let last = block.buckets.last().expect("nonempty");
            assert!(last.0.is_infinite(), "{name}: final bucket is +Inf");
            assert_eq!(
                last.1, block.count,
                "{name}: +Inf bucket carries every sample"
            );
        }
    }
}

#[test]
fn sum_and_count_match_the_json_snapshot() {
    let table = exercised_table();
    // Table-level: each `table_op_<kind>_ns` block must agree with the
    // same instrument's structured snapshot (no ops run between the two
    // reads, so the values are exactly equal).
    let hists = parse_histograms(&table.obs().registry().to_prometheus());
    let snap = table.obs().snapshot();
    for (kind, h) in &snap.op_latency {
        let name = format!("table_op_{kind}_ns");
        let block = &hists
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .1;
        assert_eq!(block.count, h.count, "{name}: _count matches snapshot");
        assert_eq!(block.sum, h.sum, "{name}: _sum matches snapshot");
    }
    // And the JSON rendering itself carries the same counts.
    let json = snap.to_json();
    for (kind, h) in &snap.op_latency {
        assert!(
            json.contains(&format!("\"{kind}\":{{\"count\":{}", h.count)),
            "JSON snapshot disagrees on {kind}: {json}"
        );
    }
}

#[test]
fn no_duplicate_series_across_table_and_store_registries() {
    let table = exercised_table();
    let store = table.store().expect("sharded backend");
    let table_page = table.obs().registry().to_prometheus();
    let store_page = store
        .obs()
        .expect("obs on by default")
        .registry()
        .to_prometheus();
    let mut seen = HashSet::new();
    for name in series_names(&table_page)
        .into_iter()
        .chain(series_names(&store_page))
    {
        assert!(
            seen.insert(name.clone()),
            "series {name} declared twice across the combined scrape"
        );
    }
    // The two layers are distinguishable by prefix, which is what keeps
    // the combined page collision-free by construction.
    assert!(seen.iter().any(|n| n.starts_with("table_op_")));
    assert!(seen.iter().any(|n| n.starts_with("store_op_")));
}
