//! History-checked concurrency tests for the sharded table backend: every
//! worker thread records each operation's invocation/response through a
//! `leap_history::Session`, and after the run an offline checker verifies
//! the complete history is **strictly serializable** against the
//! sequential table model — the dbcop methodology, instead of ad-hoc
//! invariant probes.
//!
//! Rows are packed into one `u64` for the checker's model: the indexed
//! `age` column in bits `[0, 28)`, the non-indexed `user` column in bits
//! `[28, 56)` — exactly the fixed-width tuples `leap_history` models.
//! `update_column` maps to [`leap_history::Op::Rmw`], `scan_by` to
//! [`leap_history::Op::FieldRange`] (ordered by `(age, row id)`, as the
//! table orders covering-index scans).

use leap_history::{check, Field, Op, Recorder, Ret, Session};
use leap_memdb::{DbError, Row, RowId, Schema, Table};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const AGE: Field = Field {
    shift: 0,
    width: 28,
};
const USER: Field = Field {
    shift: 28,
    width: 28,
};
/// Ages live in a narrow domain so scans and updates collide.
const AGE_DOM: u64 = 50;

fn schema() -> Schema {
    Schema::new(&["user", "age"]).with_index("age")
}

fn pack(row: &Row) -> u64 {
    USER.set(
        AGE.set(0, row.get(1).expect("age")),
        row.get(0).expect("user"),
    )
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Shared pool of row ids the threads contend on.
type IdPool = Arc<Mutex<Vec<RowId>>>;

fn record_insert(s: &mut Session, table: &Table, user: u64, age: u64) -> RowId {
    let inv = s.invoke();
    let id = table.insert(&[user, age]).expect("valid row");
    s.resolve(
        inv,
        Op::Put(id.0, USER.set(AGE.set(0, age), user)),
        Ret::Value(None),
    );
    id
}

fn record_delete(s: &mut Session, table: &Table, id: RowId) {
    s.delete(id.0, || match table.delete(id) {
        Ok(row) => Some(pack(&row)),
        Err(DbError::NoSuchRow(_)) => None,
        Err(e) => panic!("unexpected delete error: {e}"),
    });
}

fn record_get(s: &mut Session, table: &Table, id: RowId) {
    s.get(id.0, || table.get(id).map(|r| pack(&r)));
}

fn record_update(s: &mut Session, table: &Table, id: RowId, column: &str, field: Field, to: u64) {
    s.rmw(id.0, field, to, || {
        match table.update_column(id, column, to) {
            Ok(row) => Some(pack(&row)),
            Err(DbError::NoSuchRow(_)) => None,
            Err(e) => panic!("unexpected update error: {e}"),
        }
    });
}

fn record_scan(s: &mut Session, table: &Table, lo: u64, hi: u64) {
    s.field_range(AGE, lo, hi, || {
        table
            .scan_by("age", lo, hi)
            .expect("age is indexed")
            .into_iter()
            .map(|(id, row)| (id.0, pack(&row)))
            .collect()
    });
}

/// One worker: `ops` operations mixing inserts, deletes, point reads,
/// indexed and non-indexed column updates, and index scans over the
/// shared id pool.
fn worker(seed: u64, ops: usize, table: Arc<Table>, pool: IdPool, mut session: Session) {
    let mut rng = seed | 1;
    for i in 0..ops {
        let r = xorshift(&mut rng);
        let pick = |rng: &mut u64| -> Option<RowId> {
            let pool = pool.lock().unwrap();
            if pool.is_empty() {
                None
            } else {
                Some(pool[(xorshift(rng) as usize) % pool.len()])
            }
        };
        match r % 10 {
            0 | 1 => {
                // Unique-ish user value helps the checker prune orders.
                let id = record_insert(
                    &mut session,
                    &table,
                    (seed % 1000) * 1000 + i as u64,
                    xorshift(&mut rng) % AGE_DOM,
                );
                pool.lock().unwrap().push(id);
            }
            2 => {
                if let Some(id) = pick(&mut rng) {
                    let mut pool = pool.lock().unwrap();
                    pool.retain(|&p| p != id);
                    drop(pool);
                    record_delete(&mut session, &table, id);
                }
            }
            3 | 4 => {
                if let Some(id) = pick(&mut rng) {
                    record_update(
                        &mut session,
                        &table,
                        id,
                        "age",
                        AGE,
                        xorshift(&mut rng) % AGE_DOM,
                    );
                }
            }
            5 => {
                if let Some(id) = pick(&mut rng) {
                    record_update(
                        &mut session,
                        &table,
                        id,
                        "user",
                        USER,
                        xorshift(&mut rng) % (1 << 20),
                    );
                }
            }
            6 | 7 => {
                if let Some(id) = pick(&mut rng) {
                    record_get(&mut session, &table, id);
                }
            }
            _ => {
                let lo = xorshift(&mut rng) % AGE_DOM;
                let hi = (lo + 1 + xorshift(&mut rng) % 10).min(AGE_DOM);
                record_scan(&mut session, &table, lo, hi);
            }
        }
    }
}

/// Builds the table, prefills `rows` rows (captured as the checker's
/// initial state), runs `threads` recorded workers, and checks the
/// history.
fn run_workload(
    table: Arc<Table>,
    threads: u64,
    ops: usize,
    rows: u64,
    during: impl FnOnce(&Table),
) {
    let pool: IdPool = Arc::new(Mutex::new(Vec::new()));
    let mut initial = BTreeMap::new();
    for i in 0..rows {
        let (user, age) = (i, i % AGE_DOM);
        let id = table.insert(&[user, age]).expect("prefill");
        initial.insert(id.0, USER.set(AGE.set(0, age), user));
        pool.lock().unwrap().push(id);
    }
    let rec = Recorder::new();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let (table, pool, session) = (table.clone(), pool.clone(), rec.session());
            std::thread::spawn(move || {
                worker(
                    0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1),
                    ops,
                    table,
                    pool,
                    session,
                )
            })
        })
        .collect();
    during(&table);
    for w in workers {
        w.join().expect("worker panicked");
    }
    let history = rec.history();
    assert!(
        history.len() >= threads as usize * ops / 2,
        "history too small"
    );
    let report = check(&history, &initial)
        .unwrap_or_else(|v| panic!("table history is not serializable:\n{v}"));
    assert_eq!(report.events, history.len());
    // Quiescent cross-check: the table agrees with itself.
    assert_eq!(table.scan_all().len(), table.len());
    assert_eq!(
        table.count_by("age", 0, AGE_DOM).expect("indexed"),
        table.len()
    );
}

/// Workload 1: mixed table traffic on the sharded backend, no resharding.
#[test]
fn history_sharded_table_mixed_ops() {
    let table = Arc::new(Table::sharded(schema()));
    run_workload(table, 3, 120, 40, |_| {});
}

/// Workload 2: the same traffic while the test drives an explicit
/// split of the age-index subspace's shard, chunk by chunk, then merges
/// it back — the overlay straddles live index maintenance.
#[test]
fn history_sharded_table_under_manual_reshard() {
    use leap_memdb::Backend;
    use leap_store::RebalancePolicy;
    use leaplist::Params;
    let table = Arc::new(Table::with_backend(
        schema(),
        Backend::Sharded {
            params: Params {
                node_size: 8,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
            shards: None,
            rebalance: RebalancePolicy {
                chunk: 8,
                ..RebalancePolicy::default()
            },
        },
    ));
    run_workload(table.clone(), 3, 100, 60, |t| {
        let store = t.store().expect("sharded backend");
        // Split the age-index shard (subspace 1) somewhere inside the
        // populated low end, drain it, then merge it back — all racing
        // the recorded workers.
        let intervals = store.router().routing().intervals();
        // The age subspace starts at tag 1's base; composite keys are
        // `(age << 28) | row id`, so splitting at age 25 puts live keys
        // on both sides of the migration.
        let (src, lo, _hi) = intervals[1];
        let at = lo + ((AGE_DOM / 2) << 28);
        if store.split_shard(src, at).is_ok() {
            store.rebalance_until_idle();
        }
        let intervals = store.router().routing().intervals();
        if intervals.len() >= 2 {
            let _ = store.merge_shards(intervals[1].0, intervals[2].0);
            store.rebalance_until_idle();
        }
        assert!(store.stats().migrations_completed >= 1);
    });
}

/// Workload 3: a background [`leap_store::Rebalancer`] with an aggressive
/// policy races the recorded traffic end to end.
#[test]
fn history_sharded_table_with_background_rebalancer() {
    use leap_memdb::Backend;
    use leap_store::{RebalancePolicy, Rebalancer};
    use leaplist::Params;
    let table = Arc::new(Table::with_backend(
        schema(),
        Backend::Sharded {
            params: Params {
                node_size: 8,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
            shards: None,
            rebalance: RebalancePolicy {
                chunk: 16,
                split_ratio: 1.2,
                min_split_keys: 32,
                ..RebalancePolicy::default()
            },
        },
    ));
    let store = table.store().expect("sharded backend").clone();
    let rebalancer = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
    run_workload(table.clone(), 3, 120, 80, |_| {});
    rebalancer.stop().expect("rebalancer survived the run");
    assert!(
        store.router().migration().is_none(),
        "rebalancer stopped cleanly"
    );
}

/// Backend parity: the same recorded workload on the raw-list backend
/// also checks out (the checker covers both table storage layouts).
#[test]
fn history_raw_table_mixed_ops() {
    let table = Arc::new(Table::new(schema()));
    run_workload(table, 3, 100, 40, |_| {});
}
