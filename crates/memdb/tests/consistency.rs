//! Concurrency and model tests for the table store: cross-index atomicity
//! of inserts/deletes, covering-scan consistency, and agreement with a
//! sequential model.

use leap_memdb::{DbError, Row, RowId, Schema, Table};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn schema() -> Schema {
    Schema::new(&["user", "age", "score"])
        .with_index("age")
        .with_index("score")
}

/// Inserts and deletes maintain all three lists atomically: a scanner must
/// never find a row in one secondary index but not the other.
#[test]
fn insert_delete_atomic_across_indexes() {
    let table = Arc::new(Table::new(schema()));
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let table = table.clone();
        std::thread::spawn(move || {
            let mut rng = 0xDBu64;
            let mut live: Vec<RowId> = Vec::new();
            for i in 0..6_000u64 {
                if live.len() > 200 || (xorshift(&mut rng).is_multiple_of(3) && !live.is_empty()) {
                    let idx = (xorshift(&mut rng) as usize) % live.len();
                    let id = live.swap_remove(idx);
                    table.delete(id).unwrap();
                } else {
                    // age == score so the two indexes must agree exactly.
                    let v = xorshift(&mut rng) % 100;
                    let id = table.insert(&[i, v, v]).unwrap();
                    live.push(id);
                }
            }
        })
    };
    let checker = {
        let table = table.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut checks = 0;
            while !stop.load(Ordering::Acquire) {
                // Both covering indexes hold identical populations because
                // age == score for every row; each scan is a consistent
                // snapshot, but the two scans happen at different times,
                // so compare each snapshot against ITSELF: entry key
                // bucket must equal the stored row's column.
                for (idx_col, col_pos) in [("age", 1usize), ("score", 2usize)] {
                    let snap = table.scan_by(idx_col, 0, 100).unwrap();
                    for (id, row) in &snap {
                        assert_eq!(
                            row.get(1),
                            row.get(2),
                            "row {id} torn across indexed columns"
                        );
                        let _ = col_pos;
                    }
                }
                checks += 1;
            }
            checks
        })
    };
    writer.join().unwrap();
    stop.store(true, Ordering::Release);
    assert!(checker.join().unwrap() > 0);

    // Quiescent: indexes agree exactly.
    let by_age = table.scan_by("age", 0, 100).unwrap().len();
    let by_score = table.scan_by("score", 0, 100).unwrap().len();
    assert_eq!(by_age, by_score);
    assert_eq!(by_age, table.len());
}

/// Concurrent inserts from several threads: no ids collide, all rows land.
#[test]
fn concurrent_inserts_all_land() {
    let table = Arc::new(Table::new(schema()));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let table = table.clone();
            std::thread::spawn(move || {
                let mut ids = Vec::new();
                for i in 0..500u64 {
                    ids.push(table.insert(&[t * 1_000 + i, i % 50, i % 30]).unwrap());
                }
                ids
            })
        })
        .collect();
    let mut all: Vec<RowId> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    let n = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n, "row ids must be unique");
    assert_eq!(table.len(), 2_000);
    assert_eq!(table.scan_by("age", 0, 50).unwrap().len(), 2_000);
}

/// `update_column` on a non-indexed column is atomic: concurrent scans of
/// any index always see age == score mirrored rows with a matching user
/// generation (user column updated everywhere at once).
#[test]
fn nonindexed_update_is_atomic_in_covering_indexes() {
    let table = Arc::new(Table::new(schema()));
    let id = table.insert(&[0, 10, 10]).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let table = table.clone();
        std::thread::spawn(move || {
            for g in 1..=5_000u64 {
                table.update_column(id, "user", g).unwrap();
            }
        })
    };
    let checker = {
        let table = table.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut last = 0u64;
            while !stop.load(Ordering::Acquire) {
                let snap = table.scan_by("age", 10, 10).unwrap();
                assert_eq!(snap.len(), 1);
                let g = snap[0].1.get(0).unwrap();
                assert!(g >= last, "user generation went backwards");
                last = g;
            }
        })
    };
    writer.join().unwrap();
    stop.store(true, Ordering::Release);
    checker.join().unwrap();
    assert_eq!(table.get(id).unwrap().get(0), Some(5_000));
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64, u64),
    DeleteNth(usize),
    UpdateAge(usize, u64),
    UpdateUser(usize, u64),
    ScanAge(u64, u64),
    ScanScore(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<u64>(), 0..80u64, 0..80u64).prop_map(|(u, a, s)| Op::Insert(u, a, s)),
        2 => any::<usize>().prop_map(Op::DeleteNth),
        1 => (any::<usize>(), 0..80u64).prop_map(|(n, v)| Op::UpdateAge(n, v)),
        1 => (any::<usize>(), any::<u64>()).prop_map(|(n, v)| Op::UpdateUser(n, v)),
        2 => (0..80u64, 0..40u64).prop_map(|(lo, w)| Op::ScanAge(lo, lo + w)),
        2 => (0..80u64, 0..40u64).prop_map(|(lo, w)| Op::ScanScore(lo, lo + w)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-threaded model check: the table agrees with a BTreeMap of
    /// rows on every scan, through inserts, deletes and column updates.
    #[test]
    fn table_matches_model(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let table = Table::new(schema());
        let mut model: BTreeMap<u64, [u64; 3]> = BTreeMap::new();
        let mut ids: Vec<RowId> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(u, a, s) => {
                    let id = table.insert(&[u, a, s]).unwrap();
                    model.insert(id.0, [u, a, s]);
                    ids.push(id);
                }
                Op::DeleteNth(n) => {
                    if ids.is_empty() { continue; }
                    let id = ids.remove(n % ids.len());
                    prop_assert!(table.delete(id).is_ok());
                    model.remove(&id.0);
                }
                Op::UpdateAge(n, v) => {
                    if ids.is_empty() { continue; }
                    let id = ids[n % ids.len()];
                    table.update_column(id, "age", v).unwrap();
                    model.get_mut(&id.0).unwrap()[1] = v;
                }
                Op::UpdateUser(n, v) => {
                    if ids.is_empty() { continue; }
                    let id = ids[n % ids.len()];
                    table.update_column(id, "user", v).unwrap();
                    model.get_mut(&id.0).unwrap()[0] = v;
                }
                Op::ScanAge(lo, hi) => {
                    let got: Vec<(u64, Vec<u64>)> = table
                        .scan_by("age", lo, hi).unwrap()
                        .into_iter()
                        .map(|(id, r)| (id.0, r.columns().to_vec()))
                        .collect();
                    let mut want: Vec<(u64, Vec<u64>)> = model
                        .iter()
                        .filter(|(_, c)| (lo..=hi).contains(&c[1]))
                        .map(|(id, c)| (*id, c.to_vec()))
                        .collect();
                    want.sort_by_key(|(id, c)| (c[1], *id));
                    prop_assert_eq!(got, want);
                }
                Op::ScanScore(lo, hi) => {
                    let got = table.count_by("score", lo, hi).unwrap();
                    let want = model.values().filter(|c| (lo..=hi).contains(&c[2])).count();
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
    }
}

#[test]
fn errors_are_well_typed() {
    let t = Table::new(schema());
    assert_eq!(
        t.scan_by("user", 0, 1),
        Err(DbError::NotIndexed("user".into()))
    );
    assert!(t.get(RowId(42)).is_none());
    let r = Row::new(&[1, 2, 3]);
    assert_eq!(r.columns().len(), 3);
}
