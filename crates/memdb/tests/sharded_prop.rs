//! Property test for the sharded table backend: **any** interleaving of
//! table mutations (insert / delete / update_column on indexed and
//! non-indexed columns) with resharding actions on the backing store
//! (explicit splits and merges of subspace shards, bounded
//! `rebalance_step` drains) preserves the table exactly, compared against
//! a `BTreeMap` row model replayed sequentially. After every action the
//! covering index scan and the primary scan must equal the model —
//! including mid-migration; at the end every read surface (counts, paged
//! scans, per-shard key sums) must agree too. Mirrors
//! `crates/store/tests/reshard_prop.rs` one layer up.

use leap_memdb::{Backend, RowId, Schema, Table};
use leap_store::RebalancePolicy;
use leaplist::Params;
use proptest::prelude::*;
use std::collections::BTreeMap;

const AGE_DOM: u64 = 32;

#[derive(Clone, Debug)]
enum Action {
    Insert(u64, u64),
    DeleteNth(usize),
    UpdateAge(usize, u64),
    UpdateUser(usize, u64),
    /// One bounded rebalance step on the backing store.
    Step,
    /// Split a (selected) owning shard somewhere inside its interval.
    Split(usize, u64),
    /// Merge an adjacent interval pair (selected by index).
    Merge(usize),
}

fn table() -> Table {
    Table::with_backend(
        Schema::new(&["user", "age"]).with_index("age"),
        Backend::Sharded {
            params: Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            },
            shards: None,
            // Tiny chunks: most migrations stay in flight across several
            // interleaved table mutations — the interesting schedule.
            rebalance: RebalancePolicy {
                chunk: 3,
                ..RebalancePolicy::default()
            },
        },
    )
}

/// The model: row id -> (user, age), plus insertion-ordered live ids.
struct Model {
    rows: BTreeMap<u64, (u64, u64)>,
    ids: Vec<RowId>,
}

fn run(table: &Table, model: &mut Model, action: &Action) {
    let store = table.store().expect("sharded backend");
    match *action {
        Action::Insert(user, age) => {
            let age = age % AGE_DOM;
            let id = table.insert(&[user, age]).expect("valid row");
            model.rows.insert(id.0, (user, age));
            model.ids.push(id);
        }
        Action::DeleteNth(n) => {
            if model.ids.is_empty() {
                return;
            }
            let id = model.ids.remove(n % model.ids.len());
            let row = table.delete(id).expect("live id");
            assert_eq!(
                (row.get(0).unwrap(), row.get(1).unwrap()),
                model.rows.remove(&id.0).expect("model has the row"),
                "deleted row diverged"
            );
        }
        Action::UpdateAge(n, v) => {
            if model.ids.is_empty() {
                return;
            }
            let id = model.ids[n % model.ids.len()];
            let v = v % AGE_DOM;
            let row = table.update_column(id, "age", v).expect("live id");
            model.rows.get_mut(&id.0).expect("model has the row").1 = v;
            assert_eq!(row.get(1), Some(v));
        }
        Action::UpdateUser(n, v) => {
            if model.ids.is_empty() {
                return;
            }
            let id = model.ids[n % model.ids.len()];
            table.update_column(id, "user", v).expect("live id");
            model.rows.get_mut(&id.0).expect("model has the row").0 = v;
        }
        Action::Step => {
            store.rebalance_step();
        }
        Action::Split(sel, at_raw) => {
            // Target a currently-owning shard and a key inside its
            // interval, so most generated splits actually begin.
            let intervals = store.router().routing().intervals();
            let (s, lo, hi) = intervals[sel % intervals.len()];
            if lo < hi {
                let at = lo + 1 + at_raw % (hi - lo);
                let _ = store.split_shard(s, at);
            }
        }
        Action::Merge(sel) => {
            let intervals = store.router().routing().intervals();
            if intervals.len() >= 2 {
                let i = sel % (intervals.len() - 1);
                let _ = store.merge_shards(intervals[i].0, intervals[i + 1].0);
            }
        }
    }
}

/// `(id, user, age)` triples of one read surface.
type View = Vec<(u64, u64, u64)>;

/// The covering-index scan and the primary scan, as `(id, user, age)`
/// triples in the table's documented orders.
fn observe(table: &Table) -> (View, View) {
    let by_age = table
        .scan_by("age", 0, AGE_DOM)
        .expect("age is indexed")
        .into_iter()
        .map(|(id, r)| (id.0, r.get(0).unwrap(), r.get(1).unwrap()))
        .collect();
    let by_id = table
        .scan_all()
        .into_iter()
        .map(|(id, r)| (id.0, r.get(0).unwrap(), r.get(1).unwrap()))
        .collect();
    (by_age, by_id)
}

fn model_views(model: &Model) -> (View, View) {
    let by_id: View = model
        .rows
        .iter()
        .map(|(&id, &(user, age))| (id, user, age))
        .collect();
    let mut by_age = by_id.clone();
    by_age.sort_by_key(|&(id, _, age)| (age, id));
    (by_age, by_id)
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (0u64..1_000_000, 0u64..AGE_DOM).prop_map(|(u, a)| Action::Insert(u, a)),
        1 => any::<usize>().prop_map(Action::DeleteNth),
        2 => (any::<usize>(), 0u64..AGE_DOM).prop_map(|(n, v)| Action::UpdateAge(n, v)),
        1 => (any::<usize>(), any::<u64>()).prop_map(|(n, v)| Action::UpdateUser(n, v)),
        4 => Just(Action::Step),
        1 => (0usize..8, 1u64..(1 << 30)).prop_map(|(s, at)| Action::Split(s, at)),
        1 => (0usize..8).prop_map(Action::Merge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_table_matches_model_through_resharding(
        prefill in prop::collection::vec((0u64..1_000_000, 0u64..AGE_DOM), 0..16),
        actions in prop::collection::vec(action_strategy(), 1..36),
    ) {
        let table = table();
        let mut model = Model { rows: BTreeMap::new(), ids: Vec::new() };
        for &(user, age) in &prefill {
            run(&table, &mut model, &Action::Insert(user, age));
        }
        for action in &actions {
            run(&table, &mut model, action);
            // Both read surfaces must equal the model after EVERY action,
            // including mid-migration (keys split between src and dst).
            let (got_age, got_id) = observe(&table);
            let (want_age, want_id) = model_views(&model);
            prop_assert_eq!(&got_age, &want_age, "age index after {:?}", action);
            prop_assert_eq!(&got_id, &want_id, "primary after {:?}", action);
        }
        // Quiesce any in-flight migration, then check every read surface.
        let store = table.store().expect("sharded backend");
        store.rebalance_until_idle();
        prop_assert!(store.router().migration().is_none());
        let (got_age, got_id) = observe(&table);
        let (want_age, want_id) = model_views(&model);
        prop_assert_eq!(got_age, want_age);
        prop_assert_eq!(got_id, want_id);
        prop_assert_eq!(table.len(), model.rows.len());
        prop_assert_eq!(
            table.count_by("age", 0, AGE_DOM).unwrap(),
            model.rows.len()
        );
        for (&id, &(user, age)) in &model.rows {
            let row = table.get(RowId(id)).expect("live row");
            prop_assert_eq!(row.columns(), &[user, age], "row {}", id);
        }
        // Paged index scans tile to the same result at rest.
        let paged: Vec<(u64, u64, u64)> = table
            .scan_by_pages("age", 0, AGE_DOM, 3)
            .unwrap()
            .flatten()
            .map(|(id, r)| (id.0, r.get(0).unwrap(), r.get(1).unwrap()))
            .collect();
        let (want_age, _) = model_views(&model);
        prop_assert_eq!(paged, want_age);
        // Structural invariants survive arbitrary resharding: the store
        // holds exactly one primary and one index entry per row.
        let st = store.stats();
        prop_assert_eq!(
            st.shards.iter().map(|s| s.keys as usize).sum::<usize>(),
            2 * model.rows.len(),
            "shard key counts must add up to 2 entries per row"
        );
        let ss = table.subspace_stats().expect("sharded stats");
        prop_assert_eq!(ss[0].keys, model.rows.len());
        prop_assert_eq!(ss[1].keys, model.rows.len());
    }
}
