//! A named collection of tables.

use crate::{Backend, DbError, Schema, Table};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// An in-memory database: named [`Table`]s, each indexed by Leap-Lists.
///
/// # Example
///
/// ```
/// use leap_memdb::{Db, Schema};
/// let db = Db::new();
/// db.create_table("users", Schema::new(&["id", "age"]).with_index("age")).unwrap();
/// let users = db.table("users").unwrap();
/// users.insert(&[1, 33]).unwrap();
/// assert_eq!(users.count_by("age", 30, 40).unwrap(), 1);
/// ```
#[derive(Default)]
pub struct Db {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Db {
    /// Creates an empty database.
    pub fn new() -> Self {
        Db {
            tables: RwLock::new(HashMap::new()),
        }
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>, DbError> {
        self.create_table_with(name, schema, Backend::default())
    }

    /// Creates a table on the sharded [`Backend`]: every index lives in a
    /// prefix-tagged subspace of one `LeapStore` (see [`Table::sharded`]).
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] if the name is taken.
    pub fn create_sharded_table(&self, name: &str, schema: Schema) -> Result<Arc<Table>, DbError> {
        self.create_table_with(name, schema, Backend::sharded())
    }

    /// Creates a table on an explicit storage [`Backend`].
    ///
    /// # Errors
    ///
    /// [`DbError::TableExists`] if the name is taken.
    pub fn create_table_with(
        &self,
        name: &str,
        schema: Schema,
        backend: Backend,
    ) -> Result<Arc<Table>, DbError> {
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let table = Arc::new(Table::with_backend(schema, backend));
        tables.insert(name.to_string(), table.clone());
        Ok(table)
    }

    /// Fetches a table by name.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] if absent.
    pub fn table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Drops a table, returning it.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchTable`] if absent.
    pub fn drop_table(&self, name: &str) -> Result<Arc<Table>, DbError> {
        self.tables
            .write()
            .remove(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("tables", &self.table_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_fetch_drop() {
        let db = Db::new();
        db.create_table("t", Schema::new(&["a"])).unwrap();
        assert!(db.create_table("t", Schema::new(&["a"])).is_err());
        assert!(db.table("t").is_ok());
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        db.drop_table("t").unwrap();
        assert!(db.table("t").is_err());
        assert!(db.drop_table("t").is_err());
    }

    #[test]
    fn tables_are_shared_handles() {
        let db = Db::new();
        let t1 = db.create_table("x", Schema::new(&["a"])).unwrap();
        let t2 = db.table("x").unwrap();
        t1.insert(&[5]).unwrap();
        assert_eq!(t2.len(), 1);
    }
}
