//! The table's storage abstraction: every index entry lives in a
//! numbered **subspace** (0 = primary, `1 + i` = the `i`-th indexed
//! column), and a row mutation is a batch of per-subspace puts/removes
//! that the backend must commit as **one linearizable action**.
//!
//! Two backends implement it:
//!
//! * [`RawListStorage`] — the original layout: one [`LeapListLt`] per
//!   subspace on a shared transactional domain; a mutation batch commits
//!   through `LeapListLt::apply_batch_grouped` (k ops per list, one
//!   locking transaction).
//! * [`ShardedStorage`] — the service-scale layout: **one**
//!   [`LeapStore`] whose keyspace is carved into prefix-tagged
//!   [`Subspace`]s (`leap_store::Subspace`); a mutation batch becomes one
//!   [`LeapStore::apply`] call — a single cross-list transaction spanning
//!   the primary shard and every affected index shard, **even while a
//!   migration is resharding the very keys it touches**. Index scans run
//!   over the subspace's key interval; the paged variant routes through
//!   [`LeapStore::scan`]'s `Cursor`, and the snapshot-isolated variant
//!   through [`LeapStore::scan_snapshot`]'s `SnapshotCursor`.
//!
//! Both backends additionally serve **snapshot-isolated paged scans**
//! ([`TableStorage::snapshot_pages`]): the commit timestamp is pinned
//! once when the scan starts, and every page reads the index's version
//! bundles exactly as of that instant — retry-free under concurrent
//! commits, and (sharded) under in-flight migrations.
//!
//! The two backends pack composite index keys differently —
//! [`TableStorage::key_bits`] reports how many bits the backend grants
//! the column value and the row id (raw lists: 32/32 over the full
//! 64-bit key; the sharded store: 28/28 under the 8-bit subspace tag).

use crate::Row;
use leap_store::{
    BatchOp, LeapStore, Partitioning, RebalancePolicy, SnapshotCursor, StoreConfig, Subspace,
};
use leaplist::{LeapListLt, ListSnapshot, Params};
use std::sync::Arc;

/// One component of an atomic index-maintenance batch.
#[derive(Debug, Clone)]
pub(crate) enum IndexOp {
    /// Write `row` under `key` in `subspace`.
    Put {
        /// Target subspace (0 = primary).
        subspace: usize,
        /// Key within the subspace.
        key: u64,
        /// The row to store (covering indexes store the full row).
        row: Row,
    },
    /// Remove `key` from `subspace`.
    Remove {
        /// Target subspace.
        subspace: usize,
        /// Key within the subspace.
        key: u64,
    },
}

impl IndexOp {
    fn subspace(&self) -> usize {
        match self {
            IndexOp::Put { subspace, .. } | IndexOp::Remove { subspace, .. } => *subspace,
        }
    }
}

/// What a [`crate::Table`] needs from its index storage (see module docs).
pub(crate) trait TableStorage: Send + Sync {
    /// `(value_bits, id_bits)` of the composite index keys this backend
    /// can represent: an indexed column value must fit `value_bits`, a
    /// row id `id_bits`.
    fn key_bits(&self) -> (u32, u32);

    /// Applies the batch as **one linearizable action** across all
    /// touched subspaces.
    fn apply(&self, ops: &[IndexOp]);

    /// Point lookup in one subspace (transaction-free).
    fn lookup(&self, subspace: usize, key: u64) -> Option<Row>;

    /// All pairs with keys in `[lo, hi]` of one subspace, ascending, as
    /// **one consistent snapshot**.
    fn scan(&self, subspace: usize, lo: u64, hi: u64) -> Vec<(u64, Row)>;

    /// The first at-most-`limit` pairs of `[lo, hi]` in one subspace —
    /// one bounded linearizable transaction (the engine under the
    /// table's paged scans).
    fn scan_page(&self, subspace: usize, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Row)>;

    /// Number of keys in `[lo, hi]` of one subspace (consistent
    /// snapshot, no row clones).
    fn count(&self, subspace: usize, lo: u64, hi: u64) -> usize;

    /// A **snapshot-isolated** paged scan of `[lo, hi]` in one subspace:
    /// the global commit timestamp is pinned here, once, and every page —
    /// first and last alike — reads the subspace exactly as of that
    /// instant from the lists' version bundles, untouched by commits that
    /// land (or, on the sharded backend, migrations that move keys) while
    /// the scan is parked between pages. The engine under
    /// [`crate::Table::scan_by_snapshot`].
    fn snapshot_pages<'a>(
        &'a self,
        subspace: usize,
        lo: u64,
        hi: u64,
        page_size: usize,
    ) -> Box<dyn SnapshotPages + 'a>;

    /// The backing [`LeapStore`], when this backend is sharded — the
    /// handle tests, benches and operators use to drive resharding and
    /// read store/subspace statistics.
    fn store(&self) -> Option<&Arc<LeapStore<Row>>> {
        None
    }
}

/// One subspace's snapshot-isolated paged scan, pinned to one commit
/// timestamp (see [`TableStorage::snapshot_pages`]). Holds an epoch guard
/// and a timestamp pin for its whole lifetime, so drop it promptly.
pub(crate) trait SnapshotPages {
    /// The pinned commit timestamp every page of this scan reads at.
    fn ts(&self) -> u64;

    /// The next page — at most the construction-time page size, ascending
    /// — or `None` when the range is exhausted. Never an empty page.
    fn next_page(&mut self) -> Option<Vec<(u64, Row)>>;
}

/// [`SnapshotPages`] over one raw list: a pinned [`ListSnapshot`] plus a
/// resume key; each page is one transaction-free bundle walk.
struct RawSnapshotPages<'a> {
    list: &'a LeapListLt<Row>,
    snap: ListSnapshot,
    hi: u64,
    next: Option<u64>,
    page_size: usize,
}

impl SnapshotPages for RawSnapshotPages<'_> {
    fn ts(&self) -> u64 {
        self.snap.ts()
    }

    fn next_page(&mut self) -> Option<Vec<(u64, Row)>> {
        let lo = self.next?;
        let page = self
            .list
            .snapshot_page(&self.snap, lo, self.hi, self.page_size);
        self.next = match page.last() {
            // A full page may have more behind it; a short one proves the
            // snapshot holds nothing further in range.
            Some(&(last, _)) if page.len() == self.page_size && last < self.hi => Some(last + 1),
            _ => None,
        };
        (!page.is_empty()).then_some(page)
    }
}

/// [`SnapshotPages`] over the sharded store: the store's
/// [`SnapshotCursor`] (which pins once and merges shard pages itself),
/// with the subspace tag stripped off each key.
struct ShardedSnapshotPages<'a> {
    cursor: SnapshotCursor<'a, Row>,
    ss: Subspace,
}

impl SnapshotPages for ShardedSnapshotPages<'_> {
    fn ts(&self) -> u64 {
        self.cursor.ts()
    }

    fn next_page(&mut self) -> Option<Vec<(u64, Row)>> {
        self.cursor.next_page().map(|page| {
            page.into_iter()
                .map(|(k, row)| (self.ss.payload(k), row))
                .collect()
        })
    }
}

/// One Leap-List per subspace on a shared domain (the original backend).
pub(crate) struct RawListStorage {
    /// `lists[s]` serves subspace `s`.
    lists: Vec<LeapListLt<Row>>,
}

impl RawListStorage {
    pub(crate) fn new(subspaces: usize, params: Params) -> Self {
        RawListStorage {
            lists: LeapListLt::group(subspaces, params),
        }
    }
}

impl TableStorage for RawListStorage {
    fn key_bits(&self) -> (u32, u32) {
        (32, 32)
    }

    fn apply(&self, ops: &[IndexOp]) {
        // Group per list, preserving input order within each group, then
        // commit every group in ONE locking transaction.
        let mut groups: Vec<Vec<BatchOp<Row>>> = vec![Vec::new(); self.lists.len()];
        for op in ops {
            groups[op.subspace()].push(match op {
                IndexOp::Put { key, row, .. } => BatchOp::Update(*key, row.clone()),
                IndexOp::Remove { key, .. } => BatchOp::Remove(*key),
            });
        }
        let mut lists: Vec<&LeapListLt<Row>> = Vec::new();
        let mut per_list: Vec<&[BatchOp<Row>]> = Vec::new();
        for (s, g) in groups.iter().enumerate() {
            if !g.is_empty() {
                lists.push(&self.lists[s]);
                per_list.push(g);
            }
        }
        LeapListLt::apply_batch_grouped(&lists, &per_list);
    }

    fn lookup(&self, subspace: usize, key: u64) -> Option<Row> {
        self.lists[subspace].lookup(key)
    }

    fn scan(&self, subspace: usize, lo: u64, hi: u64) -> Vec<(u64, Row)> {
        self.lists[subspace].range_query(lo, hi)
    }

    fn scan_page(&self, subspace: usize, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Row)> {
        self.lists[subspace].range_page(lo, hi, limit)
    }

    fn count(&self, subspace: usize, lo: u64, hi: u64) -> usize {
        LeapListLt::count_range_group(&[&self.lists[subspace]], &[(lo, hi)])[0]
    }

    fn snapshot_pages<'a>(
        &'a self,
        subspace: usize,
        lo: u64,
        hi: u64,
        page_size: usize,
    ) -> Box<dyn SnapshotPages + 'a> {
        let list = &self.lists[subspace];
        Box::new(RawSnapshotPages {
            snap: list.pin_snapshot(),
            list,
            hi,
            next: (lo <= hi).then_some(lo),
            page_size,
        })
    }
}

/// All subspaces in one [`LeapStore`] under prefix tags (the sharded
/// backend; see module docs).
pub(crate) struct ShardedStorage {
    store: Arc<LeapStore<Row>>,
    /// `tags[s]` is subspace `s`'s tagged key region.
    tags: Vec<Subspace>,
}

impl ShardedStorage {
    /// A store carving `subspaces` tagged regions over `shards` range-
    /// partitioned shards. With `shards == subspaces` (the default the
    /// table picks) each subspace initially owns exactly one shard; the
    /// rebalancer splits further when an index grows hot.
    pub(crate) fn new(
        subspaces: usize,
        shards: usize,
        params: Params,
        rebalance: RebalancePolicy,
    ) -> Self {
        let tags: Vec<Subspace> = (0..subspaces)
            // INVARIANT: the table layer derives `subspaces` from the schema,
            // whose column count is validated to fit a u8 tag.
            .map(|t| Subspace::new(u8::try_from(t).expect("at most 255 subspaces")))
            .collect();
        let store = LeapStore::new(
            StoreConfig::new(shards, Partitioning::Range)
                .with_key_space(Subspace::key_space(subspaces))
                .with_params(params)
                .with_rebalancing(rebalance),
        );
        ShardedStorage {
            store: Arc::new(store),
            tags,
        }
    }
}

impl TableStorage for ShardedStorage {
    fn key_bits(&self) -> (u32, u32) {
        // 8-bit tag + 28-bit value + 28-bit row id = 64.
        (28, 28)
    }

    fn apply(&self, ops: &[IndexOp]) {
        // ONE Store::apply call: the store groups the tagged keys onto
        // their shards (source/destination pairs mid-migration) and
        // commits everything in a single cross-list transaction.
        let batch: Vec<BatchOp<Row>> = ops
            .iter()
            .map(|op| match op {
                IndexOp::Put { subspace, key, row } => {
                    BatchOp::Update(self.tags[*subspace].key(*key), row.clone())
                }
                IndexOp::Remove { subspace, key } => {
                    BatchOp::Remove(self.tags[*subspace].key(*key))
                }
            })
            .collect();
        self.store.apply(&batch);
    }

    fn lookup(&self, subspace: usize, key: u64) -> Option<Row> {
        self.store.get(self.tags[subspace].key(key))
    }

    fn scan(&self, subspace: usize, lo: u64, hi: u64) -> Vec<(u64, Row)> {
        let ss = self.tags[subspace];
        self.store
            .range(ss.key(lo), ss.key(hi))
            .into_iter()
            .map(|(k, row)| (ss.payload(k), row))
            .collect()
    }

    fn scan_page(&self, subspace: usize, lo: u64, hi: u64, limit: usize) -> Vec<(u64, Row)> {
        let ss = self.tags[subspace];
        // Route through the store's paged Cursor: one bounded
        // linearizable transaction for this page.
        self.store
            .scan_pages(ss.key(lo), ss.key(hi), limit)
            .next()
            .unwrap_or_default()
            .into_iter()
            .map(|(k, row)| (ss.payload(k), row))
            .collect()
    }

    fn count(&self, subspace: usize, lo: u64, hi: u64) -> usize {
        let ss = self.tags[subspace];
        self.store.count_range(ss.key(lo), ss.key(hi))
    }

    fn snapshot_pages<'a>(
        &'a self,
        subspace: usize,
        lo: u64,
        hi: u64,
        page_size: usize,
    ) -> Box<dyn SnapshotPages + 'a> {
        let ss = self.tags[subspace];
        Box::new(ShardedSnapshotPages {
            cursor: self
                .store
                .scan_snapshot_pages(ss.key(lo), ss.key(hi), page_size),
            ss,
        })
    }

    fn store(&self) -> Option<&Arc<LeapStore<Row>>> {
        Some(&self.store)
    }
}

/// How a [`crate::Table`] stores its indexes — raw per-index Leap-Lists,
/// or one sharded [`LeapStore`] with prefix-tagged subspaces.
#[derive(Debug, Clone)]
pub enum Backend {
    /// One Leap-List per index on a shared domain (the paper's §4 layout;
    /// the default).
    RawLists(Params),
    /// One range-partitioned [`LeapStore`]: subspace-tagged composite
    /// keys, cross-shard single-transaction index maintenance, paged
    /// index scans, and live resharding under a
    /// [`leap_store::Rebalancer`].
    Sharded {
        /// Per-shard Leap-List parameters.
        params: Params,
        /// Initial shard count; `None` picks one shard per subspace so
        /// the primary and every index start on their own shard.
        shards: Option<usize>,
        /// Policy for [`LeapStore::rebalance_step`] driven on the
        /// backing store.
        rebalance: RebalancePolicy,
    },
}

impl Backend {
    /// The sharded backend with default parameters and policy.
    pub fn sharded() -> Self {
        Backend::Sharded {
            params: Params::default(),
            shards: None,
            rebalance: RebalancePolicy::default(),
        }
    }

    pub(crate) fn build(&self, subspaces: usize) -> Box<dyn TableStorage> {
        match self {
            Backend::RawLists(params) => Box::new(RawListStorage::new(subspaces, params.clone())),
            Backend::Sharded {
                params,
                shards,
                rebalance,
            } => Box::new(ShardedStorage::new(
                subspaces,
                shards.unwrap_or(subspaces),
                params.clone(),
                rebalance.clone(),
            )),
        }
    }
}

impl Default for Backend {
    fn default() -> Self {
        Backend::RawLists(Params::default())
    }
}
