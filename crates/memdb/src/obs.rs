//! Table-level observability: per-op-kind latency histograms registered
//! in one [`leap_obs::Registry`], so a table scrape (JSON or Prometheus)
//! sits beside the store- and STM-level series from the same `leap-obs`
//! core.
//!
//! Every table op is microsecond-scale — each commits at least one
//! transaction, or walks an index snapshot — so unlike the store's
//! sampled get path every call records a sample.
//!
//! # Series names
//!
//! `table_op_insert_ns`, `table_op_delete_ns`, `table_op_get_ns`,
//! `table_op_update_ns`, `table_op_scan_ns`, `table_op_scan_page_ns`,
//! `table_op_count_ns`, `table_op_snapshot_page_ns` (pinned-timestamp
//! pages served by [`crate::TableSnapshotScan`]).

use leap_obs::{HistSnapshot, Histogram, Json, Registry};
use std::sync::Arc;
use std::time::Instant;

/// The op-kind order every snapshot reports, paired with each kind's
/// registry series name.
const OP_KINDS: [(&str, &str); 8] = [
    ("insert", "table_op_insert_ns"),
    ("delete", "table_op_delete_ns"),
    ("get", "table_op_get_ns"),
    ("update", "table_op_update_ns"),
    ("scan", "table_op_scan_ns"),
    ("scan_page", "table_op_scan_page_ns"),
    ("count", "table_op_count_ns"),
    ("snapshot_page", "table_op_snapshot_page_ns"),
];

/// Index into [`TableObs`]'s histogram set (kept in [`OP_KINDS`] order).
#[derive(Debug, Clone, Copy)]
pub(crate) enum TableOp {
    Insert = 0,
    Delete = 1,
    Get = 2,
    Update = 3,
    Scan = 4,
    ScanPage = 5,
    Count = 6,
    SnapshotPage = 7,
}

/// A table's instrument set: one latency histogram per op kind (see the
/// module docs for series names), all living in one registry.
#[derive(Debug)]
pub struct TableObs {
    registry: Arc<Registry>,
    /// Per-op-kind latency histograms, in [`OP_KINDS`] order.
    ops: [Arc<Histogram>; 8],
}

impl TableObs {
    pub(crate) fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let ops = OP_KINDS.map(|(_, series)| registry.histogram(series));
        TableObs { registry, ops }
    }

    /// The registry holding every series — scrape it directly via
    /// [`Registry::snapshot_json`] / [`Registry::to_prometheus`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Times `f` and records the sample under `op`. The op kind also
    /// rides as the leap-trace op-context label, so any store span begun
    /// under `f` carries which table op drove it.
    #[inline]
    pub(crate) fn timed<T>(&self, op: TableOp, f: impl FnOnce() -> T) -> T {
        let _ctx = leap_obs::trace::op_context(OP_KINDS[op as usize].0);
        let start = Instant::now();
        let r = f();
        self.ops[op as usize].record(start.elapsed().as_nanos() as u64);
        r
    }

    /// A point-in-time copy of every op histogram.
    pub fn snapshot(&self) -> TableObsSnapshot {
        TableObsSnapshot {
            op_latency: OP_KINDS
                .iter()
                .zip(&self.ops)
                .map(|(&(kind, _), h)| (kind, h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a table's op-latency histograms.
#[derive(Debug, Clone)]
pub struct TableObsSnapshot {
    /// Per-op-kind latency snapshots, in a fixed kind order (insert,
    /// delete, get, update, scan, scan_page, count, snapshot_page).
    pub op_latency: Vec<(&'static str, HistSnapshot)>,
}

impl TableObsSnapshot {
    /// The snapshot as one JSON object, keyed by op kind:
    /// `{"op_latency":{"insert":{"count",..},..}}`.
    pub fn to_json_value(&self) -> Json {
        Json::obj().field(
            "op_latency",
            Json::Obj(
                self.op_latency
                    .iter()
                    .map(|(kind, snap)| (kind.to_string(), snap.to_json_ns()))
                    .collect(),
            ),
        )
    }

    /// [`Self::to_json_value`], rendered.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reports_all_kinds_in_order() {
        let obs = TableObs::new();
        obs.timed(TableOp::Insert, || std::hint::black_box(1 + 1));
        obs.timed(TableOp::Count, || std::hint::black_box(2 + 2));
        obs.timed(TableOp::SnapshotPage, || std::hint::black_box(3 + 3));
        let snap = obs.snapshot();
        let kinds: Vec<&str> = snap.op_latency.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                "insert",
                "delete",
                "get",
                "update",
                "scan",
                "scan_page",
                "count",
                "snapshot_page"
            ]
        );
        assert_eq!(snap.op_latency[0].1.count, 1);
        assert_eq!(snap.op_latency[6].1.count, 1);
        assert_eq!(snap.op_latency[7].1.count, 1);
        let json = snap.to_json();
        assert!(
            json.starts_with("{\"op_latency\":{\"insert\":{\"count\":1"),
            "{json}"
        );
        // The registry renders the same series under their public names.
        let reg = obs.registry().snapshot_json().render();
        assert!(reg.contains("\"table_op_insert_ns\""), "{reg}");
        let prom = obs.registry().to_prometheus();
        assert!(
            prom.contains("# TYPE table_op_insert_ns histogram"),
            "{prom}"
        );
    }
}
