//! Error type for the table store.

use std::fmt;

/// Errors returned by [`Table`](crate::Table) and [`Db`](crate::Db)
/// operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A column name is not part of the schema.
    UnknownColumn(String),
    /// The named column exists but carries no index.
    NotIndexed(String),
    /// A row tuple's width does not match the schema.
    WrongArity {
        /// Columns the schema defines.
        expected: usize,
        /// Columns the caller supplied.
        got: usize,
    },
    /// An indexed column value exceeds the bound imposed by the backend's
    /// composite `(value, row id)` index keys (32 bits on raw lists,
    /// 28 bits under the sharded backend's subspace tags).
    ValueOutOfRange {
        /// The offending column.
        column: String,
        /// The offending value.
        value: u64,
        /// The backend's largest representable indexed value.
        bound: u64,
    },
    /// The referenced row does not exist (anymore).
    NoSuchRow(crate::RowId),
    /// A table name is already taken / unknown (database level).
    NoSuchTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A bounded-retry operation ([`Table::insert_within`]
    /// (crate::Table::insert_within)) exhausted its retry budget before
    /// the underlying storage transaction could commit. Nothing was
    /// written.
    Timeout {
        /// Failed commit attempts made before giving up.
        attempts: u64,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownColumn(c) => write!(f, "unknown column '{c}'"),
            DbError::NotIndexed(c) => write!(f, "column '{c}' is not indexed"),
            DbError::WrongArity { expected, got } => {
                write!(f, "expected {expected} columns, got {got}")
            }
            DbError::ValueOutOfRange {
                column,
                value,
                bound,
            } => {
                write!(
                    f,
                    "indexed column '{column}' value {value} exceeds the backend bound {bound}"
                )
            }
            DbError::NoSuchRow(id) => write!(f, "row {} does not exist", id.0),
            DbError::NoSuchTable(t) => write!(f, "no table named '{t}'"),
            DbError::TableExists(t) => write!(f, "table '{t}' already exists"),
            DbError::Timeout { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DbError::UnknownColumn("x".into()).to_string().contains("x"));
        assert!(DbError::WrongArity {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("3"));
        assert!(DbError::NoSuchRow(crate::RowId(9))
            .to_string()
            .contains('9'));
    }
}
