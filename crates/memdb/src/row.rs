//! Rows and row identifiers.

use std::sync::Arc;

/// Opaque, monotonically allocated row identifier.
///
/// Row ids fit in 32 bits so they can share an index key word with the
/// indexed column value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub u64);

impl std::fmt::Display for RowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

/// An immutable row: a fixed-width tuple of `u64` columns behind an `Arc`
/// (cloning a row is a pointer copy, which keeps covering indexes cheap).
///
/// # Example
///
/// ```
/// use leap_memdb::Row;
/// let r = Row::new(&[1, 2, 3]);
/// assert_eq!(r.columns(), &[1, 2, 3]);
/// assert_eq!(r.get(1), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    columns: Arc<[u64]>,
}

impl Row {
    /// Builds a row from column values.
    pub fn new(columns: &[u64]) -> Self {
        Row {
            columns: columns.into(),
        }
    }

    /// All column values.
    pub fn columns(&self) -> &[u64] {
        &self.columns
    }

    /// One column value by position.
    pub fn get(&self, idx: usize) -> Option<u64> {
        self.columns.get(idx).copied()
    }

    /// A copy of this row with column `idx` replaced.
    pub(crate) fn with_column(&self, idx: usize, value: u64) -> Row {
        let mut cols: Vec<u64> = self.columns.to_vec();
        cols[idx] = value;
        Row::new(&cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accessors() {
        let r = Row::new(&[9, 8, 7]);
        assert_eq!(r.get(0), Some(9));
        assert_eq!(r.get(3), None);
        assert_eq!(r.columns().len(), 3);
    }

    #[test]
    fn with_column_replaces_one_value() {
        let r = Row::new(&[1, 2, 3]);
        let r2 = r.with_column(1, 99);
        assert_eq!(r2.columns(), &[1, 99, 3]);
        assert_eq!(r.columns(), &[1, 2, 3], "original untouched");
    }

    #[test]
    fn clone_is_shallow() {
        let r = Row::new(&[5; 1000]);
        let r2 = r.clone();
        assert!(Arc::ptr_eq(&r.columns, &r2.columns));
    }
}
