//! # leap-memdb — Leap-List indexes for an in-memory table store
//!
//! The paper closes with its intended application (§4): *"we plan to test
//! the Leap-List in an In-Memory Data-Base implementation, to replace the
//! B-trees for indexes."* This crate builds that application: a small
//! concurrent table store whose **primary and secondary indexes are all
//! Leap-Lists sharing one transactional domain**, so every row mutation —
//! insert, delete, or an indexed-column update — maintains *all* indexes
//! as one linearizable action (via `LeapListLt::apply_batch`), and every
//! index scan is a consistent snapshot.
//!
//! Rows are fixed-width tuples of `u64` columns (word-sized values, as in
//! the paper's design). Secondary indexes are *covering*: they store the
//! full row alongside the composite `(column value, row id)` key, so a
//! range scan over an index needs no second lookup and is linearizable
//! end to end.
//!
//! Tables run on one of two storage [`Backend`]s: the default keeps one
//! Leap-List per index (the paper's layout), while [`Table::sharded`]
//! packs every index into a prefix-tagged subspace of **one**
//! range-partitioned `leap_store::LeapStore` — index maintenance becomes
//! a single cross-shard `Store::apply` transaction, index scans page
//! through the store's `Cursor`, and a `leap_store::Rebalancer` can
//! split index-heavy shards while the table serves traffic.
//!
//! Long scans that must stay coherent across pages use
//! [`Table::scan_by_snapshot`]: the scan pins the commit timestamp once
//! and serves every page from the indexes' version bundles at that
//! instant — one consistent multi-page snapshot that never blocks or
//! aborts concurrent writers (on either backend, even mid-resharding).
//!
//! # Example
//!
//! ```
//! use leap_memdb::{Schema, Table};
//!
//! let schema = Schema::new(&["user", "age", "score"])
//!     .with_index("age")
//!     .with_index("score");
//! let table = Table::new(schema);
//!
//! let alice = table.insert(&[1001, 34, 88]).unwrap();
//! let bob = table.insert(&[1002, 27, 95]).unwrap();
//!
//! // Consistent range scan over the age index.
//! let adults = table.scan_by("age", 30, 120).unwrap();
//! assert_eq!(adults.len(), 1);
//! assert_eq!(adults[0].1.get(0), Some(1001));
//!
//! // Updating an indexed column moves the row between index buckets
//! // atomically (remove old entry + insert new entry + rewrite primary).
//! table.update_column(alice, "age", 29).unwrap();
//! assert_eq!(table.scan_by("age", 30, 120).unwrap().len(), 0);
//! assert_eq!(table.scan_by("age", 0, 29).unwrap().len(), 2);
//! # let _ = bob;
//! ```

#![deny(missing_docs)]

mod db;
mod error;
mod obs;
mod query;
mod row;
mod schema;
mod storage;
mod table;

pub use db::Db;
pub use error::DbError;
pub use obs::{TableObs, TableObsSnapshot};
pub use query::Query;
pub use row::{Row, RowId};
pub use schema::Schema;
pub use storage::Backend;
pub use table::{Table, TableScan, TableSnapshotScan, MAX_INDEXED_VALUE};

// Re-exported so bounded-retry callers ([`Table::insert_within`]) can
// build policies without importing the stm crate directly.
pub use leap_stm::RetryPolicy;
