//! A concurrent table whose primary and secondary indexes share one
//! transactional domain, behind a pluggable storage backend.
//!
//! # Index layout
//!
//! Entries live in numbered **subspaces**:
//!
//! * Subspace 0 — **primary index**: `row id -> Row`.
//! * Subspace `1 + i` — **covering secondary index** for the `i`-th
//!   indexed column: `(column value, row id) -> Row`. Storing the full
//!   (cheaply cloned, `Arc`-backed) row makes every range scan
//!   self-contained and therefore a single linearizable range query.
//!
//! How subspaces map onto lists is the backend's business
//! ([`crate::Backend`]): the default keeps one Leap-List per subspace
//! (the paper's §4 layout); the **sharded** backend packs every subspace
//! into one range-partitioned [`leap_store::LeapStore`] under prefix
//! tags, so indexes spread over shards, scans page through the store's
//! `Cursor`, and a `Rebalancer` can split index-heavy shards while the
//! table serves traffic.
//!
//! # Atomicity
//!
//! Every row mutation — `insert`, `delete`, and `update_column` on *any*
//! column, indexed or not — maintains the primary and **all** secondary
//! indexes as **one** linearizable action: the mutation's per-subspace
//! ops commit through a single multi-list transaction
//! (`LeapListLt::apply_batch_grouped` directly, or `LeapStore::apply` on
//! the sharded backend — one cross-shard transaction even mid-
//! migration). An indexed-column update moves the entry between two keys
//! of one subspace inside that same single transaction, so no scan can
//! ever observe the row absent from, or doubled in, an index.

use crate::obs::{TableObs, TableOp};
use crate::storage::{Backend, IndexOp, SnapshotPages, TableStorage};
use crate::{DbError, Row, RowId, Schema};
use leap_store::{LeapStore, Subspace, SubspaceStats};
use leaplist::Params;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const STRIPES: usize = 64;

/// Maximum value storable in an indexed column under the default
/// raw-list backend (the composite index key packs `(value, row id)`
/// into one 32/32 word). The sharded backend reserves 8 bits for the
/// subspace tag and allows 28/28 — ask [`Table::max_indexed_value`] for
/// the live bound.
pub const MAX_INDEXED_VALUE: u64 = (1 << 32) - 1;

/// A table with Leap-List indexes (see module docs).
pub struct Table {
    schema: Schema,
    storage: Box<dyn TableStorage>,
    /// Composite-key geometry, from the backend: value/id bit widths.
    value_bits: u32,
    id_bits: u32,
    /// Column position -> subspace (secondary indexes only).
    slot_of_column: Vec<Option<usize>>,
    next_row: AtomicU64,
    /// Per-row mutation serialization (delete / update_column).
    stripes: Vec<Mutex<()>>,
    /// Per-op-kind latency histograms (see [`crate::TableObs`]).
    obs: TableObs,
}

impl Table {
    /// Creates an empty table on the default raw-list backend with the
    /// paper's default Leap-List parameters.
    pub fn new(schema: Schema) -> Self {
        Self::with_params(schema, Params::default())
    }

    /// Creates an empty raw-list table with explicit Leap-List
    /// parameters.
    pub fn with_params(schema: Schema, params: Params) -> Self {
        Self::with_backend(schema, Backend::RawLists(params))
    }

    /// Creates an empty table on the **sharded** backend: one
    /// [`LeapStore`] holding every index in a prefix-tagged subspace,
    /// one shard per subspace initially, default rebalancing policy.
    pub fn sharded(schema: Schema) -> Self {
        Self::with_backend(schema, Backend::sharded())
    }

    /// Creates an empty table on an explicit [`Backend`].
    pub fn with_backend(schema: Schema, backend: Backend) -> Self {
        let indexed = schema.indexed_columns();
        let subspaces = 1 + indexed.len();
        let storage = backend.build(subspaces);
        let (value_bits, id_bits) = storage.key_bits();
        let mut slot_of_column = vec![None; schema.arity()];
        for (slot, col) in indexed.iter().enumerate() {
            slot_of_column[*col] = Some(1 + slot);
        }
        Table {
            schema,
            storage,
            value_bits,
            id_bits,
            slot_of_column,
            next_row: AtomicU64::new(1),
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
            obs: TableObs::new(),
        }
    }

    /// The table's op-latency instruments: one histogram per op kind
    /// (insert, delete, get, update, scan, scan_page, count), living in a
    /// [`leap_obs::Registry`] scrapeable as JSON or Prometheus text. On
    /// the sharded backend these table-level series complement the
    /// store-level ones from [`Table::store`]'s
    /// [`LeapStore::stats`](LeapStore::stats).
    pub fn obs(&self) -> &TableObs {
        &self.obs
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Largest value an indexed column can hold on this table's backend.
    pub fn max_indexed_value(&self) -> u64 {
        (1 << self.value_bits) - 1
    }

    /// The row-id mask of this table's backend — an **exclusive** bound
    /// on allocatable ids: the last id allocated before the table panics
    /// with "row id space exhausted" is `max_row_id() - 1` (the top id is
    /// reserved so the largest index composite can never collide with
    /// the store's reserved key `u64::MAX`).
    pub fn max_row_id(&self) -> u64 {
        (1 << self.id_bits) - 1
    }

    /// The backing [`LeapStore`] when this table runs on the sharded
    /// backend (`None` on raw lists) — the handle for driving
    /// `split_shard` / `rebalance_step` / a `Rebalancer`, and for store
    /// statistics.
    pub fn store(&self) -> Option<&Arc<LeapStore<Row>>> {
        self.storage.store()
    }

    /// Per-subspace key counts and shard placement (sharded backend
    /// only): entry 0 is the primary index, entry `1 + i` the `i`-th
    /// indexed column's subspace.
    pub fn subspace_stats(&self) -> Option<Vec<SubspaceStats>> {
        let store = self.storage.store()?;
        let tags: Vec<Subspace> = (0..1 + self.schema.indexed_columns().len())
            .map(|t| Subspace::new(t as u8))
            .collect();
        Some(store.subspace_stats(&tags))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.obs.timed(TableOp::Count, || {
            self.storage.count(0, 0, self.max_row_id())
        })
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn composite(&self, value: u64, id: u64) -> u64 {
        debug_assert!(value <= self.max_indexed_value());
        (value << self.id_bits) | (id & self.max_row_id())
    }

    fn check_row(&self, values: &[u64]) -> Result<(), DbError> {
        if values.len() != self.schema.arity() {
            return Err(DbError::WrongArity {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for col in self.schema.indexed_columns() {
            if values[col] > self.max_indexed_value() {
                return Err(DbError::ValueOutOfRange {
                    column: self.schema.column_name(col).to_string(),
                    value: values[col],
                    bound: self.max_indexed_value(),
                });
            }
        }
        Ok(())
    }

    fn stripe(&self, id: RowId) -> &Mutex<()> {
        &self.stripes[(id.0 as usize) % STRIPES]
    }

    /// Inserts a row, updating the primary and every secondary index as
    /// one linearizable action. Returns the new row id.
    ///
    /// # Errors
    ///
    /// [`DbError::WrongArity`] or [`DbError::ValueOutOfRange`].
    pub fn insert(&self, values: &[u64]) -> Result<RowId, DbError> {
        self.check_row(values)?;
        // Strictly below the mask: the very last id would make the top
        // index composite collide with the reserved key u64::MAX.
        // ORDERING: row-id allocator; uniqueness comes from the RMW, and the
        // id is published to readers by the storage commit, not by this add.
        let id = RowId(self.next_row.fetch_add(1, Ordering::Relaxed));
        assert!(id.0 < self.max_row_id(), "row id space exhausted");
        let row = Row::new(values);
        self.obs.timed(TableOp::Insert, || {
            self.storage.apply(&self.write_ops(id, &row))
        });
        Ok(id)
    }

    /// [`Table::insert`] under a bounded retry budget: if the storage
    /// transaction cannot commit within `policy` (attempt count and/or
    /// deadline), the insert is abandoned with [`DbError::Timeout`]
    /// instead of retrying forever — graceful degradation for callers
    /// with their own latency contract. Nothing is written on timeout,
    /// but the row id is consumed either way (ids are
    /// allocation-ordered, not dense).
    ///
    /// # Errors
    ///
    /// [`DbError::WrongArity`], [`DbError::ValueOutOfRange`] or
    /// [`DbError::Timeout`].
    pub fn insert_within(
        &self,
        values: &[u64],
        policy: leap_stm::RetryPolicy,
    ) -> Result<RowId, DbError> {
        self.check_row(values)?;
        // ORDERING: row-id allocator; uniqueness comes from the RMW, and the
        // id is published to readers by the storage commit, not by this add.
        let id = RowId(self.next_row.fetch_add(1, Ordering::Relaxed));
        assert!(id.0 < self.max_row_id(), "row id space exhausted");
        let row = Row::new(values);
        match leap_stm::with_retry_budget(policy, || {
            self.obs.timed(TableOp::Insert, || {
                self.storage.apply(&self.write_ops(id, &row))
            })
        }) {
            Ok(()) => Ok(id),
            Err(t) => Err(DbError::Timeout {
                attempts: t.attempts,
            }),
        }
    }

    /// The put batch writing `row` under `id` into every index.
    fn write_ops(&self, id: RowId, row: &Row) -> Vec<IndexOp> {
        let mut ops = Vec::with_capacity(1 + self.schema.indexed_columns().len());
        ops.push(IndexOp::Put {
            subspace: 0,
            key: id.0,
            row: row.clone(),
        });
        for col in self.schema.indexed_columns() {
            ops.push(IndexOp::Put {
                // INVARIANT: the constructor assigned a slot to every
                // indexed column of the schema.
                subspace: self.slot_of_column[col].expect("indexed column has a slot"),
                // INVARIANT: callers validate arity before building ops.
                key: self.composite(row.get(col).expect("arity checked"), id.0),
                row: row.clone(),
            });
        }
        ops
    }

    /// Deletes a row from every index as one linearizable action.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchRow`] if the row does not exist.
    pub fn delete(&self, id: RowId) -> Result<Row, DbError> {
        let _guard = self.stripe(id).lock();
        self.obs.timed(TableOp::Delete, || self.delete_locked(id))
    }

    fn delete_locked(&self, id: RowId) -> Result<Row, DbError> {
        let row = self.storage.lookup(0, id.0).ok_or(DbError::NoSuchRow(id))?;
        let mut ops = Vec::with_capacity(1 + self.schema.indexed_columns().len());
        ops.push(IndexOp::Remove {
            subspace: 0,
            key: id.0,
        });
        for col in self.schema.indexed_columns() {
            ops.push(IndexOp::Remove {
                // INVARIANT: the constructor assigned a slot to every
                // indexed column of the schema.
                subspace: self.slot_of_column[col].expect("indexed column has a slot"),
                // INVARIANT: stored rows passed the arity check on insert.
                key: self.composite(row.get(col).expect("stored rows match arity"), id.0),
            });
        }
        self.storage.apply(&ops);
        Ok(row)
    }

    /// Point lookup by row id (linearizable, transaction-free).
    pub fn get(&self, id: RowId) -> Option<Row> {
        self.obs
            .timed(TableOp::Get, || self.storage.lookup(0, id.0))
    }

    /// Sets one column of an existing row and returns the updated row.
    ///
    /// The primary and **every** secondary index update as one
    /// linearizable action — including an indexed column, whose entry
    /// moves between two keys of its subspace *inside the same single
    /// transaction* (remove old key + insert new key + rewrite the other
    /// covering entries).
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`], [`DbError::ValueOutOfRange`] or
    /// [`DbError::NoSuchRow`].
    pub fn update_column(&self, id: RowId, column: &str, value: u64) -> Result<Row, DbError> {
        let col = self.schema.resolve(column)?;
        if self.schema.is_indexed(col) && value > self.max_indexed_value() {
            return Err(DbError::ValueOutOfRange {
                column: column.to_string(),
                value,
                bound: self.max_indexed_value(),
            });
        }
        let _guard = self.stripe(id).lock();
        self.obs.timed(TableOp::Update, || {
            let old = self.storage.lookup(0, id.0).ok_or(DbError::NoSuchRow(id))?;
            let new_row = old.with_column(col, value);
            let mut ops = self.write_ops(id, &new_row);
            if self.schema.is_indexed(col) {
                // INVARIANT: the constructor assigned a slot to every
                // indexed column; `is_indexed(col)` held just above.
                let slot = self.slot_of_column[col].expect("indexed column has a slot");
                // INVARIANT: stored rows passed the arity check on insert.
                let old_key = self.composite(old.get(col).expect("stored rows match arity"), id.0);
                let new_key = self.composite(value, id.0);
                if old_key != new_key {
                    // The entry moves between keys of ONE subspace; the
                    // remove rides in the same atomic batch. (`write_ops`
                    // already put the new key.)
                    ops.push(IndexOp::Remove {
                        subspace: slot,
                        key: old_key,
                    });
                }
            }
            self.storage.apply(&ops);
            Ok(new_row)
        })
    }

    /// Linearizable range scan over the index on `column`: every row with
    /// `column value` in `[lo, hi]`, as one consistent snapshot, ordered
    /// by `(value, row id)`.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`], [`DbError::NotIndexed`], or
    /// [`DbError::ValueOutOfRange`] when `lo` exceeds the backend's
    /// [`Table::max_indexed_value`] (no stored value could match; `hi`
    /// merely clamps so open-ended scans stay valid).
    pub fn scan_by(&self, column: &str, lo: u64, hi: u64) -> Result<Vec<(RowId, Row)>, DbError> {
        let (slot, lo_key, hi_key) = self.index_range(column, lo, hi)?;
        Ok(self
            .obs
            .timed(TableOp::Scan, || self.storage.scan(slot, lo_key, hi_key))
            .into_iter()
            .map(|(k, row)| (RowId(k & self.max_row_id()), row))
            .collect())
    }

    /// A paged scan over the index on `column`: each page is one bounded
    /// linearizable transaction of at most `page_size` rows with a resume
    /// key (on the sharded backend this routes through
    /// [`LeapStore::scan`]'s `Cursor`). Between pages the table runs
    /// free, so each page is internally consistent but different pages
    /// may observe different instants. When the whole multi-page scan
    /// must be one snapshot, use [`Table::scan_by_snapshot`] — same
    /// paging, one pinned timestamp — or [`Table::scan_by`] for a single
    /// whole-range transaction.
    ///
    /// # Errors
    ///
    /// As for [`Table::scan_by`].
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn scan_by_pages(
        &self,
        column: &str,
        lo: u64,
        hi: u64,
        page_size: usize,
    ) -> Result<TableScan<'_>, DbError> {
        assert!(page_size > 0, "a page must hold at least one row");
        let (slot, lo_key, hi_key) = self.index_range(column, lo, hi)?;
        Ok(TableScan {
            table: self,
            subspace: slot,
            hi: hi_key,
            next: Some(lo_key),
            page_size,
        })
    }

    /// A **snapshot-isolated** paged scan over the index on `column`:
    /// this call pins the global commit timestamp once, and **every**
    /// page of the returned [`TableSnapshotScan`] reads the index exactly
    /// as of that instant — rows inserted, deleted, or moved between
    /// index buckets while the scan is parked between pages are
    /// invisible, and writers are never blocked or retried against. The
    /// pages come from the index lists' version bundles (the MVCC-lite
    /// layer), so the read is transaction-free; on the sharded backend
    /// consistency also holds across in-flight shard migrations.
    ///
    /// Ordering and paging match [`Table::scan_by_pages`]: at most
    /// `page_size` rows per page, ordered by `(column value, row id)`
    /// across the whole scan.
    ///
    /// The scan holds a timestamp pin (bounding version-bundle pruning)
    /// and an epoch guard for its whole lifetime — drop it promptly
    /// rather than parking it for minutes.
    ///
    /// # Errors
    ///
    /// As for [`Table::scan_by`].
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero.
    pub fn scan_by_snapshot(
        &self,
        column: &str,
        lo: u64,
        hi: u64,
        page_size: usize,
    ) -> Result<TableSnapshotScan<'_>, DbError> {
        assert!(page_size > 0, "a page must hold at least one row");
        let (slot, lo_key, hi_key) = self.index_range(column, lo, hi)?;
        Ok(TableSnapshotScan {
            pages: self.storage.snapshot_pages(slot, lo_key, hi_key, page_size),
            table: self,
        })
    }

    /// Resolves an indexed column and maps `[lo, hi]` to its composite
    /// key interval.
    ///
    /// A `lo` beyond the backend's representable bound is an error, not a
    /// clamp: no stored value can satisfy it, and clamping used to fold
    /// the query onto the boundary value itself — returning phantom rows
    /// whose column value *is* the bound instead of either the empty set
    /// or a diagnostic. `hi` still clamps, so open-ended scans like
    /// `[x, u64::MAX]` keep meaning "everything at or above x".
    fn index_range(&self, column: &str, lo: u64, hi: u64) -> Result<(usize, u64, u64), DbError> {
        let col = self.schema.resolve_indexed(column)?;
        // INVARIANT: `resolve_indexed` proved the column is indexed, and
        // the constructor assigned every indexed column a slot.
        let slot = self.slot_of_column[col].expect("indexed column has a slot");
        if lo > self.max_indexed_value() {
            return Err(DbError::ValueOutOfRange {
                column: self.schema.column_name(col).to_string(),
                value: lo,
                bound: self.max_indexed_value(),
            });
        }
        let lo_key = self.composite(lo, 0);
        // Clamp below the reserved sentinel key: the raw backend's full
        // 32/32 geometry puts its very top composite at u64::MAX (ids
        // stop one short of the mask, so no row can live there).
        let hi_key = self
            .composite(hi.min(self.max_indexed_value()), self.max_row_id())
            .min(u64::MAX - 1);
        Ok((slot, lo_key, hi_key))
    }

    /// Number of rows whose `column` value lies in `[lo, hi]` (consistent
    /// snapshot; no row clones).
    ///
    /// # Errors
    ///
    /// As for [`Table::scan_by`].
    pub fn count_by(&self, column: &str, lo: u64, hi: u64) -> Result<usize, DbError> {
        let (slot, lo_key, hi_key) = self.index_range(column, lo, hi)?;
        Ok(self
            .obs
            .timed(TableOp::Count, || self.storage.count(slot, lo_key, hi_key)))
    }

    /// Starts building a [`Query`](crate::Query) over this table.
    pub fn query(&self) -> crate::Query<'_> {
        crate::Query::new(self)
    }

    /// Inserts several rows; each insert is individually atomic across all
    /// indexes. Returns the new row ids.
    ///
    /// # Errors
    ///
    /// Fails fast on the first invalid row; earlier rows remain inserted.
    pub fn insert_many(&self, rows: &[&[u64]]) -> Result<Vec<RowId>, DbError> {
        rows.iter().map(|r| self.insert(r)).collect()
    }

    /// All rows, ordered by row id (consistent snapshot).
    pub fn scan_all(&self) -> Vec<(RowId, Row)> {
        self.obs
            .timed(TableOp::Scan, || self.storage.scan(0, 0, self.max_row_id()))
            .into_iter()
            .map(|(k, row)| (RowId(k), row))
            .collect()
    }
}

/// A paged index scan (see [`Table::scan_by_pages`]): iterates pages of
/// `(row id, row)`, each page one bounded linearizable transaction,
/// ordered by `(column value, row id)` across the whole scan.
pub struct TableScan<'t> {
    table: &'t Table,
    subspace: usize,
    hi: u64,
    next: Option<u64>,
    page_size: usize,
}

impl TableScan<'_> {
    /// The next page, or `None` when the index range is exhausted. Never
    /// returns an empty page.
    pub fn next_page(&mut self) -> Option<Vec<(RowId, Row)>> {
        let lo = self.next?;
        let page = self.table.obs.timed(TableOp::ScanPage, || {
            self.table
                .storage
                .scan_page(self.subspace, lo, self.hi, self.page_size)
        });
        self.next = match page.last() {
            Some(&(last, _)) if page.len() == self.page_size && last < self.hi => Some(last + 1),
            _ => None,
        };
        (!page.is_empty()).then(|| {
            page.into_iter()
                .map(|(k, row)| (RowId(k & self.table.max_row_id()), row))
                .collect()
        })
    }
}

impl Iterator for TableScan<'_> {
    type Item = Vec<(RowId, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_page()
    }
}

/// A snapshot-isolated paged index scan (see [`Table::scan_by_snapshot`]):
/// iterates pages of `(row id, row)` ordered by `(column value, row id)`,
/// **every** page read at the one commit timestamp pinned when the scan
/// was created.
pub struct TableSnapshotScan<'t> {
    table: &'t Table,
    pages: Box<dyn SnapshotPages + 't>,
}

impl TableSnapshotScan<'_> {
    /// The pinned commit timestamp every page of this scan reads at.
    pub fn ts(&self) -> u64 {
        self.pages.ts()
    }

    /// The next page, or `None` when the index range (as of the pinned
    /// timestamp) is exhausted. Never returns an empty page.
    pub fn next_page(&mut self) -> Option<Vec<(RowId, Row)>> {
        let pages = &mut self.pages;
        let page = self
            .table
            .obs
            .timed(TableOp::SnapshotPage, || pages.next_page())?;
        Some(
            page.into_iter()
                .map(|(k, row)| (RowId(k & self.table.max_row_id()), row))
                .collect(),
        )
    }
}

impl Iterator for TableSnapshotScan<'_> {
    type Item = Vec<(RowId, Row)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_page()
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("arity", &self.schema.arity())
            .field("indexes", &self.schema.indexed_columns().len())
            .field("rows", &self.len())
            .field("sharded", &self.storage.store().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_schema() -> Schema {
        Schema::new(&["user", "age", "score"])
            .with_index("age")
            .with_index("score")
    }

    fn backends() -> [(&'static str, Table); 2] {
        [
            ("raw", Table::new(people_schema())),
            ("sharded", Table::sharded(people_schema())),
        ]
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        for (name, t) in backends() {
            let id = t.insert(&[7, 30, 99]).unwrap();
            assert_eq!(t.get(id).unwrap().columns(), &[7, 30, 99], "{name}");
            assert_eq!(t.len(), 1, "{name}");
            let old = t.delete(id).unwrap();
            assert_eq!(old.columns(), &[7, 30, 99], "{name}");
            assert!(t.get(id).is_none(), "{name}");
            assert!(t.is_empty(), "{name}");
            assert_eq!(t.delete(id), Err(DbError::NoSuchRow(id)), "{name}");
        }
    }

    #[test]
    fn insert_within_bounds_the_retry_budget() {
        for (name, t) in backends() {
            // An uncontended insert never exhausts even the tightest
            // budget: the budget only ticks on commit retries.
            let policy = leap_stm::RetryPolicy::default().max_attempts(1);
            let id = t.insert_within(&[7, 30, 99], policy).unwrap();
            assert_eq!(t.get(id).unwrap().columns(), &[7, 30, 99], "{name}");
            // Validation still runs before the budget is even armed.
            assert_eq!(
                t.insert_within(&[1, 2], policy),
                Err(DbError::WrongArity {
                    expected: 3,
                    got: 2
                }),
                "{name}"
            );
        }
        assert!(DbError::Timeout { attempts: 4 }.to_string().contains('4'));
    }

    #[test]
    fn arity_and_range_validation() {
        for (name, t) in backends() {
            assert_eq!(
                t.insert(&[1, 2]),
                Err(DbError::WrongArity {
                    expected: 3,
                    got: 2
                }),
                "{name}"
            );
            assert!(
                matches!(
                    t.insert(&[1, u64::MAX, 3]),
                    Err(DbError::ValueOutOfRange { .. })
                ),
                "{name}"
            );
            // Non-indexed columns may hold any u64.
            t.insert(&[u64::MAX, 2, 3]).unwrap();
            // The largest indexed value the backend allows round-trips.
            let id = t.insert(&[1, t.max_indexed_value(), 3]).unwrap();
            assert_eq!(
                t.count_by("age", t.max_indexed_value(), u64::MAX).unwrap(),
                1,
                "{name}"
            );
            t.delete(id).unwrap();
        }
        // The two backends grant different composite-key geometry.
        assert_eq!(
            Table::new(people_schema()).max_indexed_value(),
            (1 << 32) - 1
        );
        assert_eq!(
            Table::sharded(people_schema()).max_indexed_value(),
            (1 << 28) - 1
        );
    }

    /// Bound parity at the exact boundary, per backend: the reported
    /// `ValueOutOfRange.bound` matches [`Table::max_indexed_value`]
    /// (32-bit raw vs 28-bit sharded), a row AT the bound is scannable,
    /// and a scan whose `lo` lies beyond it errors instead of silently
    /// clamping onto the boundary value (the old behavior returned the
    /// boundary row as a phantom match).
    #[test]
    fn scan_bound_parity_at_the_exact_boundary() {
        for (name, t) in backends() {
            let bound = t.max_indexed_value();
            assert_eq!(
                bound,
                if name == "raw" {
                    (1 << 32) - 1
                } else {
                    (1 << 28) - 1
                },
                "{name}"
            );
            let id = t.insert(&[9, bound, 5]).unwrap();
            // The boundary value itself scans and counts on both surfaces.
            let hits = t.scan_by("age", bound, bound).unwrap();
            assert_eq!(hits.len(), 1, "{name}");
            assert_eq!(hits[0].0, id, "{name}");
            assert_eq!(t.count_by("age", bound, u64::MAX).unwrap(), 1, "{name}");
            // One past the bound: an error carrying the backend's bound —
            // NOT a silent clamp that would re-surface the boundary row.
            for (lo, hi) in [(bound + 1, bound + 1), (bound + 1, u64::MAX)] {
                match t.scan_by("age", lo, hi) {
                    Err(DbError::ValueOutOfRange {
                        column,
                        value,
                        bound: b,
                    }) => {
                        assert_eq!(column, "age", "{name}");
                        assert_eq!(value, lo, "{name}");
                        assert_eq!(b, bound, "{name}: error reports the live bound");
                    }
                    other => panic!("{name}: expected ValueOutOfRange, got {other:?}"),
                }
                assert!(
                    matches!(
                        t.count_by("age", lo, hi),
                        Err(DbError::ValueOutOfRange { .. })
                    ),
                    "{name}"
                );
                assert!(
                    matches!(
                        t.scan_by_pages("age", lo, hi, 4),
                        Err(DbError::ValueOutOfRange { .. })
                    ),
                    "{name}"
                );
            }
            // The insert-side rejection reports the same bound.
            match t.insert(&[1, bound + 1, 2]) {
                Err(DbError::ValueOutOfRange { bound: b, .. }) => assert_eq!(b, bound, "{name}"),
                other => panic!("{name}: expected ValueOutOfRange, got {other:?}"),
            }
        }
    }

    #[test]
    fn backend_geometry_is_reported() {
        assert_eq!(
            Table::new(people_schema()).max_indexed_value(),
            (1 << 32) - 1
        );
        assert_eq!(
            Table::sharded(people_schema()).max_indexed_value(),
            (1 << 28) - 1
        );
    }

    #[test]
    fn scans_cover_all_indexes() {
        for (name, t) in backends() {
            for i in 0..50u64 {
                t.insert(&[i, i % 10, 100 - i]).unwrap();
            }
            let teens = t.scan_by("age", 3, 5).unwrap();
            assert_eq!(teens.len(), 15, "{name}");
            for (_, row) in &teens {
                assert!((3..=5).contains(&row.get(1).unwrap()), "{name}");
            }
            // scores are 100 - i for i in 0..50: [90, 100] covers i = 0..=10.
            assert_eq!(t.count_by("score", 90, 100).unwrap(), 11, "{name}");
            assert!(t.scan_by("user", 0, 10).is_err(), "user is not indexed");
            assert!(t.scan_by("nope", 0, 10).is_err(), "{name}");
            assert_eq!(t.scan_all().len(), 50, "{name}");
        }
    }

    #[test]
    fn paged_scans_tile_the_index() {
        for (name, t) in backends() {
            for i in 0..40u64 {
                t.insert(&[i, i % 8, i]).unwrap();
            }
            for page_size in [1usize, 3, 64] {
                let mut seen = Vec::new();
                for page in t.scan_by_pages("age", 2, 5, page_size).unwrap() {
                    assert!(page.len() <= page_size, "{name}");
                    seen.extend(page);
                }
                let whole = t.scan_by("age", 2, 5).unwrap();
                assert_eq!(seen, whole, "{name} page_size {page_size}");
            }
            assert!(t.scan_by_pages("user", 0, 1, 4).is_err(), "{name}");
        }
    }

    /// Tentpole: the whole multi-page snapshot scan observes ONE instant
    /// — rows inserted, deleted, or moved between index buckets after the
    /// timestamp was pinned stay invisible to every later page, on both
    /// backends.
    #[test]
    fn snapshot_scan_is_isolated_from_later_writes() {
        for (name, t) in backends() {
            for i in 0..30u64 {
                t.insert(&[i, i % 10, i]).unwrap();
            }
            let before = t.scan_by("age", 0, 9).unwrap();
            let mut scan = t.scan_by_snapshot("age", 0, 9, 7).unwrap();
            let first = scan.next_page().unwrap();
            assert_eq!(first.len(), 7, "{name}");
            // Churn after the pin: a new row, a bucket move, a delete.
            t.insert(&[99, 5, 5]).unwrap();
            t.update_column(before[0].0, "age", 9).unwrap();
            t.delete(before[1].0).unwrap();
            let mut seen = first;
            while let Some(page) = scan.next_page() {
                assert!(page.len() <= 7, "{name}");
                seen.extend(page);
            }
            assert_eq!(seen, before, "{name}: the whole scan is one snapshot");
            // A fresh scan pins a new timestamp and observes the churn.
            let now: Vec<_> = t
                .scan_by_snapshot("age", 0, 9, 64)
                .unwrap()
                .flatten()
                .collect();
            assert_eq!(now, t.scan_by("age", 0, 9).unwrap(), "{name}");
        }
    }

    /// Snapshot pages tile the index exactly like a one-shot scan at any
    /// page size, the pinned timestamp is monotone across scans, and the
    /// usual index-resolution errors apply.
    #[test]
    fn snapshot_scan_reports_ts_and_tiles_the_index() {
        for (name, t) in backends() {
            for i in 0..40u64 {
                t.insert(&[i, i % 8, i]).unwrap();
            }
            let whole = t.scan_by("age", 2, 5).unwrap();
            let mut last_ts = 0;
            for page_size in [1usize, 3, 64] {
                let mut scan = t.scan_by_snapshot("age", 2, 5, page_size).unwrap();
                assert!(scan.ts() >= last_ts, "{name}: the pin is monotone");
                last_ts = scan.ts();
                let mut seen = Vec::new();
                while let Some(page) = scan.next_page() {
                    assert!(!page.is_empty() && page.len() <= page_size, "{name}");
                    seen.extend(page);
                }
                assert_eq!(seen, whole, "{name} page_size {page_size}");
            }
            assert!(t.scan_by_snapshot("user", 0, 1, 4).is_err(), "{name}");
            assert!(
                matches!(
                    t.scan_by_snapshot("age", t.max_indexed_value() + 1, u64::MAX, 4),
                    Err(DbError::ValueOutOfRange { .. })
                ),
                "{name}"
            );
            // An empty range still pins a timestamp, yields no pages.
            let mut empty = t.scan_by_snapshot("score", 1000, 2000, 4).unwrap();
            assert!(empty.ts() > 0, "{name}");
            assert!(empty.next_page().is_none(), "{name}");
            // The snapshot pages fed their own latency histogram.
            let snap = t.obs().snapshot();
            let count = snap
                .op_latency
                .iter()
                .find(|(k, _)| *k == "snapshot_page")
                .map(|(_, h)| h.count)
                .unwrap();
            assert!(count >= 3, "{name}: {count}");
        }
    }

    /// Sharded backend: the snapshot scan stays coherent while the store
    /// splits and drains the scanned index's shard between pages.
    #[test]
    fn sharded_snapshot_scan_survives_resharding() {
        let t = Table::sharded(people_schema());
        for i in 0..60u64 {
            t.insert(&[i, i % 4, i]).unwrap();
        }
        let before = t.scan_by("score", 0, 59).unwrap();
        let mut scan = t.scan_by_snapshot("score", 0, 59, 10).unwrap();
        let first = scan.next_page().unwrap();

        // Split the score subspace's shard (subspace tag 2, one shard per
        // subspace initially) in the middle of its key range and drain
        // the migration while the scan is parked, then overwrite every
        // row so the moved keys also carry post-pin versions.
        let store = t.store().unwrap();
        let ss = leap_store::Subspace::new(2);
        let shard = t.subspace_stats().unwrap()[2].shards[0];
        store.split_shard(shard, ss.key(30 << 28)).unwrap();
        store.rebalance_until_idle();
        for (id, _) in &before {
            t.update_column(*id, "user", 7777).unwrap();
        }

        let mut seen = first;
        while let Some(page) = scan.next_page() {
            seen.extend(page);
        }
        assert_eq!(seen, before, "snapshot holds across the migration");
        // A fresh scan sees the rewritten rows on the new shard layout.
        let now: Vec<_> = t
            .scan_by_snapshot("score", 0, 59, 16)
            .unwrap()
            .flatten()
            .collect();
        assert!(now.iter().all(|(_, row)| row.get(0) == Some(7777)));
        assert_eq!(now.len(), before.len());
    }

    #[test]
    fn delete_removes_from_every_index() {
        for (name, t) in backends() {
            let id = t.insert(&[1, 40, 70]).unwrap();
            t.insert(&[2, 40, 71]).unwrap();
            assert_eq!(t.count_by("age", 40, 40).unwrap(), 2, "{name}");
            t.delete(id).unwrap();
            assert_eq!(t.count_by("age", 40, 40).unwrap(), 1, "{name}");
            assert_eq!(t.count_by("score", 70, 70).unwrap(), 0, "{name}");
        }
    }

    #[test]
    fn update_nonindexed_column_is_visible_everywhere() {
        for (name, t) in backends() {
            let id = t.insert(&[5, 20, 30]).unwrap();
            let row = t.update_column(id, "user", 999).unwrap();
            assert_eq!(row.columns(), &[999, 20, 30], "{name}");
            assert_eq!(t.get(id).unwrap().get(0), Some(999), "{name}");
            // The covering index entries must carry the new row too.
            let hits = t.scan_by("age", 20, 20).unwrap();
            assert_eq!(hits[0].1.get(0), Some(999), "{name}");
        }
    }

    #[test]
    fn update_indexed_column_moves_between_buckets() {
        for (name, t) in backends() {
            let id = t.insert(&[5, 20, 30]).unwrap();
            t.update_column(id, "age", 60).unwrap();
            assert_eq!(t.count_by("age", 20, 20).unwrap(), 0, "{name}");
            assert_eq!(t.count_by("age", 60, 60).unwrap(), 1, "{name}");
            assert_eq!(t.get(id).unwrap().get(1), Some(60), "{name}");
            // Score index entry must also carry the updated row.
            let hits = t.scan_by("score", 30, 30).unwrap();
            assert_eq!(hits[0].1.get(1), Some(60), "{name}");
            // Same-value "move": remove and re-put of one key stays put.
            t.update_column(id, "age", 60).unwrap();
            assert_eq!(t.count_by("age", 60, 60).unwrap(), 1, "{name}");
        }
    }

    #[test]
    fn update_column_errors() {
        for (name, t) in backends() {
            let id = t.insert(&[1, 2, 3]).unwrap();
            assert!(t.update_column(id, "ghost", 1).is_err(), "{name}");
            assert!(t.update_column(RowId(999), "age", 1).is_err(), "{name}");
            assert!(
                matches!(
                    t.update_column(id, "age", u64::MAX),
                    Err(DbError::ValueOutOfRange { .. })
                ),
                "{name}"
            );
        }
    }

    #[test]
    fn row_ids_are_unique_and_monotone() {
        for (_, t) in backends() {
            let a = t.insert(&[1, 1, 1]).unwrap();
            let b = t.insert(&[2, 2, 2]).unwrap();
            assert!(b.0 > a.0);
        }
    }

    #[test]
    fn sharded_backend_exposes_its_store() {
        let raw = Table::new(people_schema());
        assert!(raw.store().is_none());
        assert!(raw.subspace_stats().is_none());

        let t = Table::sharded(people_schema());
        let store = t.store().expect("sharded backend has a store");
        // One shard per subspace: primary + two indexes.
        assert_eq!(store.shards(), 3);
        for i in 0..20u64 {
            t.insert(&[i, i % 4, i % 7]).unwrap();
        }
        let ss = t.subspace_stats().expect("sharded stats");
        assert_eq!(ss.len(), 3);
        assert_eq!(ss[0].keys, 20, "primary holds every row");
        assert_eq!(ss[1].keys, 20, "age index covers every row");
        assert_eq!(ss[2].keys, 20, "score index covers every row");
        assert!(ss.iter().all(|s| !s.shards.is_empty()));
        assert_eq!(store.len(), 60, "3 subspaces x 20 rows");
    }

    /// Each op kind feeds its own latency histogram, counts match the
    /// calls made, and the snapshot renders through the shared JSON /
    /// Prometheus emitters.
    #[test]
    fn op_histograms_track_every_surface() {
        for (name, t) in backends() {
            for i in 0..10u64 {
                t.insert(&[i, i % 3, i]).unwrap();
            }
            let id = t.insert(&[99, 1, 1]).unwrap();
            t.get(id).unwrap();
            t.update_column(id, "score", 7).unwrap();
            t.delete(id).unwrap();
            t.scan_by("age", 0, 2).unwrap();
            t.count_by("age", 0, 2).unwrap();
            let pages: usize = t.scan_by_pages("age", 0, 2, 4).unwrap().count();
            assert!(pages >= 1, "{name}");
            let snap = t.obs().snapshot();
            let count_of = |kind: &str| {
                snap.op_latency
                    .iter()
                    .find(|(k, _)| *k == kind)
                    .map(|(_, h)| h.count)
                    .unwrap()
            };
            assert_eq!(count_of("insert"), 11, "{name}");
            assert_eq!(count_of("get"), 1, "{name}");
            assert_eq!(count_of("update"), 1, "{name}");
            assert_eq!(count_of("delete"), 1, "{name}");
            assert_eq!(count_of("scan"), 1, "{name}");
            // next_page keeps probing until the range is exhausted, so
            // the page count is a floor, not an exact match.
            assert!(count_of("scan_page") >= pages as u64, "{name}");
            assert!(count_of("count") >= 1, "{name}");
            let json = t.obs().snapshot().to_json();
            assert!(
                json.contains("\"op_latency\":{\"insert\":{\"count\":11"),
                "{name}: {json}"
            );
            assert!(json.contains("\"p999_ns\":"), "{name}: {json}");
            let prom = t.obs().registry().to_prometheus();
            assert!(
                prom.contains("table_op_insert_ns_count 11"),
                "{name}: {prom}"
            );
        }
    }

    #[test]
    fn sharded_indexed_update_is_one_store_transaction() {
        let t = Table::sharded(people_schema());
        let id = t.insert(&[1, 10, 20]).unwrap();
        let store = t.store().unwrap();
        let before = store.stats();
        // Touches 4 keys (primary rewrite, score rewrite, age remove+put,
        // with the age pair colliding on one subspace) — still ONE txn.
        t.update_column(id, "age", 11).unwrap();
        let after = store.stats();
        assert_eq!(
            after.stm.total_commits(),
            before.stm.total_commits() + 1,
            "an indexed-column update must be exactly one transaction"
        );
        assert!(
            after.collision_batches > before.collision_batches,
            "the remove+put pair collides on the age subspace's shard"
        );
    }
}
