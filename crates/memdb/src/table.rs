//! A concurrent table whose primary and secondary indexes are Leap-Lists
//! sharing one transactional domain.
//!
//! # Index layout
//!
//! * List 0 — **primary index**: `row id -> Row`.
//! * One list per indexed column — **covering secondary index**:
//!   `(column value << 32 | row id) -> Row`. Storing the full (cheaply
//!   cloned, `Arc`-backed) row makes every range scan self-contained and
//!   therefore a single linearizable Leap-List range query.
//!
//! # Atomicity
//!
//! `insert` and `delete` maintain the primary and *all* secondary indexes
//! in **one** linearizable action (`LeapListLt::apply_batch` — one locking
//! transaction across all lists). `update_column` on a non-indexed column
//! is likewise one atomic action (it rewrites the stored row under the
//! same keys everywhere). Updating an *indexed* column must move an entry
//! between two keys of the same list, which the batch primitive cannot
//! express; it executes as an atomic delete followed by an atomic
//! re-insert of the same row id (serialized per row), so a concurrent scan
//! can miss the row in that window — the one documented non-snapshot
//! operation.

use crate::{DbError, Row, RowId, Schema};
use leaplist::{BatchOp, LeapListLt, Params};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

const STRIPES: usize = 64;

/// Maximum value storable in an indexed column (the composite index key
/// packs `(value, row id)` into one word).
pub const MAX_INDEXED_VALUE: u64 = (1 << 32) - 1;

fn composite(value: u64, id: u64) -> u64 {
    debug_assert!(value <= MAX_INDEXED_VALUE);
    (value << 32) | (id & 0xFFFF_FFFF)
}

/// A table with Leap-List indexes (see module docs).
pub struct Table {
    schema: Schema,
    /// `lists[0]` is the primary; `lists[1 + i]` serves
    /// `schema.indexed_columns()[i]`.
    lists: Vec<LeapListLt<Row>>,
    /// Column position -> slot in `lists` (secondary indexes only).
    slot_of_column: Vec<Option<usize>>,
    next_row: AtomicU64,
    /// Per-row mutation serialization (delete / update_column).
    stripes: Vec<Mutex<()>>,
}

impl Table {
    /// Creates an empty table with the paper's default Leap-List
    /// parameters.
    pub fn new(schema: Schema) -> Self {
        Self::with_params(schema, Params::default())
    }

    /// Creates an empty table with explicit Leap-List parameters.
    pub fn with_params(schema: Schema, params: Params) -> Self {
        let indexed = schema.indexed_columns();
        let lists = LeapListLt::group(1 + indexed.len(), params);
        let mut slot_of_column = vec![None; schema.arity()];
        for (slot, col) in indexed.iter().enumerate() {
            slot_of_column[*col] = Some(1 + slot);
        }
        Table {
            schema,
            lists,
            slot_of_column,
            next_row: AtomicU64::new(1),
            stripes: (0..STRIPES).map(|_| Mutex::new(())).collect(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.lists[0].len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check_row(&self, values: &[u64]) -> Result<(), DbError> {
        if values.len() != self.schema.arity() {
            return Err(DbError::WrongArity {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for col in self.schema.indexed_columns() {
            if values[col] > MAX_INDEXED_VALUE {
                return Err(DbError::ValueOutOfRange {
                    column: self.schema.column_name(col).to_string(),
                    value: values[col],
                });
            }
        }
        Ok(())
    }

    fn stripe(&self, id: RowId) -> &Mutex<()> {
        &self.stripes[(id.0 as usize) % STRIPES]
    }

    /// Batch refs in list order: primary plus every secondary.
    fn all_lists(&self) -> Vec<&LeapListLt<Row>> {
        self.lists.iter().collect()
    }

    /// Inserts a row, updating the primary and every secondary index as
    /// one linearizable action. Returns the new row id.
    ///
    /// # Errors
    ///
    /// [`DbError::WrongArity`] or [`DbError::ValueOutOfRange`].
    pub fn insert(&self, values: &[u64]) -> Result<RowId, DbError> {
        self.check_row(values)?;
        let id = RowId(self.next_row.fetch_add(1, Ordering::Relaxed));
        assert!(id.0 <= 0xFFFF_FFFF, "row id space exhausted");
        let row = Row::new(values);
        self.write_row(id, &row);
        Ok(id)
    }

    /// Writes `row` under `id` into every index atomically.
    fn write_row(&self, id: RowId, row: &Row) {
        let mut ops = Vec::with_capacity(self.lists.len());
        ops.push(BatchOp::Update(id.0, row.clone()));
        for col in self.schema.indexed_columns() {
            ops.push(BatchOp::Update(
                composite(row.get(col).expect("arity checked"), id.0),
                row.clone(),
            ));
        }
        LeapListLt::apply_batch(&self.all_lists(), &ops);
    }

    /// Deletes a row from every index as one linearizable action.
    ///
    /// # Errors
    ///
    /// [`DbError::NoSuchRow`] if the row does not exist.
    pub fn delete(&self, id: RowId) -> Result<Row, DbError> {
        let _guard = self.stripe(id).lock();
        self.delete_locked(id)
    }

    fn delete_locked(&self, id: RowId) -> Result<Row, DbError> {
        let row = self.lists[0].lookup(id.0).ok_or(DbError::NoSuchRow(id))?;
        let mut ops = Vec::with_capacity(self.lists.len());
        ops.push(BatchOp::Remove(id.0));
        for col in self.schema.indexed_columns() {
            ops.push(BatchOp::Remove(composite(
                row.get(col).expect("stored rows match arity"),
                id.0,
            )));
        }
        LeapListLt::apply_batch(&self.all_lists(), &ops);
        Ok(row)
    }

    /// Point lookup by row id (linearizable, transaction-free).
    pub fn get(&self, id: RowId) -> Option<Row> {
        self.lists[0].lookup(id.0)
    }

    /// Sets one column of an existing row.
    ///
    /// Non-indexed columns are updated atomically across all indexes.
    /// Indexed columns execute as delete + re-insert of the same row id
    /// (see module docs).
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`], [`DbError::ValueOutOfRange`] or
    /// [`DbError::NoSuchRow`].
    pub fn update_column(&self, id: RowId, column: &str, value: u64) -> Result<(), DbError> {
        let col = self.schema.resolve(column)?;
        if self.schema.is_indexed(col) && value > MAX_INDEXED_VALUE {
            return Err(DbError::ValueOutOfRange {
                column: column.to_string(),
                value,
            });
        }
        let _guard = self.stripe(id).lock();
        let old = self.lists[0].lookup(id.0).ok_or(DbError::NoSuchRow(id))?;
        let new_row = old.with_column(col, value);
        if !self.schema.is_indexed(col) {
            // Keys are unchanged everywhere: rewrite the stored row under
            // the same keys in one atomic batch.
            self.write_row(id, &new_row);
            return Ok(());
        }
        // Indexed column: the entry moves between keys of ONE list, which
        // a single batch cannot express — atomic delete, atomic re-insert.
        self.delete_locked(id)?;
        self.write_row(id, &new_row);
        Ok(())
    }

    /// Linearizable range scan over the index on `column`: every row with
    /// `column value` in `[lo, hi]`, as one consistent snapshot, ordered
    /// by `(value, row id)`.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`] or [`DbError::NotIndexed`].
    pub fn scan_by(&self, column: &str, lo: u64, hi: u64) -> Result<Vec<(RowId, Row)>, DbError> {
        let col = self.schema.resolve_indexed(column)?;
        let slot = self.slot_of_column[col].expect("indexed column has a slot");
        let lo_key = composite(lo.min(MAX_INDEXED_VALUE), 0);
        let hi_key = composite(hi.min(MAX_INDEXED_VALUE), 0xFFFF_FFFF);
        Ok(self.lists[slot]
            .range_query(lo_key, hi_key)
            .into_iter()
            .map(|(k, row)| (RowId(k & 0xFFFF_FFFF), row))
            .collect())
    }

    /// Number of rows whose `column` value lies in `[lo, hi]` (consistent
    /// snapshot).
    ///
    /// # Errors
    ///
    /// As for [`Table::scan_by`].
    pub fn count_by(&self, column: &str, lo: u64, hi: u64) -> Result<usize, DbError> {
        Ok(self.scan_by(column, lo, hi)?.len())
    }

    /// Starts building a [`Query`](crate::Query) over this table.
    pub fn query(&self) -> crate::Query<'_> {
        crate::Query::new(self)
    }

    /// Inserts several rows; each insert is individually atomic across all
    /// indexes. Returns the new row ids.
    ///
    /// # Errors
    ///
    /// Fails fast on the first invalid row; earlier rows remain inserted.
    pub fn insert_many(&self, rows: &[&[u64]]) -> Result<Vec<RowId>, DbError> {
        rows.iter().map(|r| self.insert(r)).collect()
    }

    /// All rows, ordered by row id (consistent snapshot).
    pub fn scan_all(&self) -> Vec<(RowId, Row)> {
        self.lists[0]
            .range_query(0, 0xFFFF_FFFF)
            .into_iter()
            .map(|(k, row)| (RowId(k), row))
            .collect()
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("arity", &self.schema.arity())
            .field("indexes", &self.schema.indexed_columns().len())
            .field("rows", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        Table::new(
            Schema::new(&["user", "age", "score"])
                .with_index("age")
                .with_index("score"),
        )
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let t = people();
        let id = t.insert(&[7, 30, 99]).unwrap();
        assert_eq!(t.get(id).unwrap().columns(), &[7, 30, 99]);
        assert_eq!(t.len(), 1);
        let old = t.delete(id).unwrap();
        assert_eq!(old.columns(), &[7, 30, 99]);
        assert!(t.get(id).is_none());
        assert!(t.is_empty());
        assert_eq!(t.delete(id), Err(DbError::NoSuchRow(id)));
    }

    #[test]
    fn arity_and_range_validation() {
        let t = people();
        assert_eq!(
            t.insert(&[1, 2]),
            Err(DbError::WrongArity {
                expected: 3,
                got: 2
            })
        );
        assert!(matches!(
            t.insert(&[1, u64::MAX, 3]),
            Err(DbError::ValueOutOfRange { .. })
        ));
        // Non-indexed columns may hold any u64.
        t.insert(&[u64::MAX, 2, 3]).unwrap();
    }

    #[test]
    fn scans_cover_all_indexes() {
        let t = people();
        for i in 0..50u64 {
            t.insert(&[i, i % 10, 100 - i]).unwrap();
        }
        let teens = t.scan_by("age", 3, 5).unwrap();
        assert_eq!(teens.len(), 15);
        for (_, row) in &teens {
            assert!((3..=5).contains(&row.get(1).unwrap()));
        }
        // scores are 100 - i for i in 0..50, so [90, 100] covers i = 0..=10.
        assert_eq!(t.count_by("score", 90, 100).unwrap(), 11);
        assert!(t.scan_by("user", 0, 10).is_err(), "user is not indexed");
        assert!(t.scan_by("nope", 0, 10).is_err());
        assert_eq!(t.scan_all().len(), 50);
    }

    #[test]
    fn delete_removes_from_every_index() {
        let t = people();
        let id = t.insert(&[1, 40, 70]).unwrap();
        t.insert(&[2, 40, 71]).unwrap();
        assert_eq!(t.count_by("age", 40, 40).unwrap(), 2);
        t.delete(id).unwrap();
        assert_eq!(t.count_by("age", 40, 40).unwrap(), 1);
        assert_eq!(t.count_by("score", 70, 70).unwrap(), 0);
    }

    #[test]
    fn update_nonindexed_column_is_visible_everywhere() {
        let t = people();
        let id = t.insert(&[5, 20, 30]).unwrap();
        t.update_column(id, "user", 999).unwrap();
        assert_eq!(t.get(id).unwrap().get(0), Some(999));
        // The covering index entries must carry the new row too.
        let hits = t.scan_by("age", 20, 20).unwrap();
        assert_eq!(hits[0].1.get(0), Some(999));
    }

    #[test]
    fn update_indexed_column_moves_between_buckets() {
        let t = people();
        let id = t.insert(&[5, 20, 30]).unwrap();
        t.update_column(id, "age", 60).unwrap();
        assert_eq!(t.count_by("age", 20, 20).unwrap(), 0);
        assert_eq!(t.count_by("age", 60, 60).unwrap(), 1);
        assert_eq!(t.get(id).unwrap().get(1), Some(60));
        // Score index entry must also carry the updated row.
        let hits = t.scan_by("score", 30, 30).unwrap();
        assert_eq!(hits[0].1.get(1), Some(60));
    }

    #[test]
    fn update_column_errors() {
        let t = people();
        let id = t.insert(&[1, 2, 3]).unwrap();
        assert!(t.update_column(id, "ghost", 1).is_err());
        assert!(t.update_column(RowId(999), "age", 1).is_err());
        assert!(matches!(
            t.update_column(id, "age", u64::MAX),
            Err(DbError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn row_ids_are_unique_and_monotone() {
        let t = people();
        let a = t.insert(&[1, 1, 1]).unwrap();
        let b = t.insert(&[2, 2, 2]).unwrap();
        assert!(b.0 > a.0);
    }
}
