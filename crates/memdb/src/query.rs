//! A small query layer over [`Table`]: conjunctive filters with index
//! selection, projections into aggregates.
//!
//! The execution model is exactly what the paper's database pitch implies:
//! pick one indexed predicate as the *driving* Leap-List range query
//! (a single consistent snapshot), then evaluate the remaining predicates
//! against the row copies carried by that snapshot — so the whole result
//! set is consistent without any further synchronization.

use crate::{DbError, Row, RowId, Table};

/// One conjunct of a query's predicate.
#[derive(Debug, Clone)]
enum Filter {
    /// `lo <= column <= hi`
    Range { col: usize, lo: u64, hi: u64 },
    /// `column == value`
    Eq { col: usize, value: u64 },
}

impl Filter {
    fn col(&self) -> usize {
        match self {
            Filter::Range { col, .. } | Filter::Eq { col, .. } => *col,
        }
    }

    fn matches(&self, row: &Row) -> bool {
        match *self {
            Filter::Range { col, lo, hi } => row.get(col).is_some_and(|v| (lo..=hi).contains(&v)),
            Filter::Eq { col, value } => row.get(col) == Some(value),
        }
    }

    fn bounds(&self) -> (u64, u64) {
        match *self {
            Filter::Range { lo, hi, .. } => (lo, hi),
            Filter::Eq { value, .. } => (value, value),
        }
    }
}

/// A conjunctive query under construction. Build with [`Table::query`],
/// add filters, then execute with [`Query::rows`], [`Query::count`] or an
/// aggregate.
///
/// # Example
///
/// ```
/// use leap_memdb::{Schema, Table};
/// let t = Table::new(Schema::new(&["dept", "age", "salary"]).with_index("age"));
/// t.insert(&[1, 30, 5000]).unwrap();
/// t.insert(&[1, 45, 9000]).unwrap();
/// t.insert(&[2, 31, 6500]).unwrap();
///
/// let rows = t.query()
///     .filter_range("age", 25, 40).unwrap()
///     .filter_eq("dept", 1).unwrap()
///     .rows().unwrap();
/// assert_eq!(rows.len(), 1);
///
/// let payroll = t.query().filter_eq("dept", 1).unwrap().sum("salary").unwrap();
/// assert_eq!(payroll, 14_000);
/// ```
#[derive(Debug)]
pub struct Query<'t> {
    table: &'t Table,
    filters: Vec<Filter>,
    limit: Option<usize>,
    descending: bool,
}

impl<'t> Query<'t> {
    pub(crate) fn new(table: &'t Table) -> Self {
        Query {
            table,
            filters: Vec::new(),
            limit: None,
            descending: false,
        }
    }

    /// Caps the number of returned rows (applied after filtering, in the
    /// result order).
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Reverses the result order (descending by the driving index, or by
    /// row id on a full scan). Combined with [`Query::limit`] this gives
    /// "top-N" queries.
    pub fn descending(mut self) -> Self {
        self.descending = true;
        self
    }

    /// Adds a `lo <= column <= hi` conjunct.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`].
    pub fn filter_range(mut self, column: &str, lo: u64, hi: u64) -> Result<Self, DbError> {
        let col = self.table.schema().resolve(column)?;
        self.filters.push(Filter::Range { col, lo, hi });
        Ok(self)
    }

    /// Adds a `column == value` conjunct.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`].
    pub fn filter_eq(mut self, column: &str, value: u64) -> Result<Self, DbError> {
        let col = self.table.schema().resolve(column)?;
        self.filters.push(Filter::Eq { col, value });
        Ok(self)
    }

    /// Executes the query: one consistent driving scan plus residual
    /// filtering. Rows come back ordered by the driving index (or by row
    /// id when no filter is indexed).
    ///
    /// # Errors
    ///
    /// Propagates schema errors from execution.
    pub fn rows(self) -> Result<Vec<(RowId, Row)>, DbError> {
        // Index selection: the first conjunct on an indexed column drives.
        let schema = self.table.schema();
        let driver = self.filters.iter().position(|f| schema.is_indexed(f.col()));
        let candidates = match driver {
            Some(i) => {
                let f = &self.filters[i];
                let (lo, hi) = f.bounds();
                self.table.scan_by(schema.column_name(f.col()), lo, hi)?
            }
            None => self.table.scan_all(),
        };
        let residual: Vec<&Filter> = self
            .filters
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != driver)
            .map(|(_, f)| f)
            .collect();
        let filtered = candidates
            .into_iter()
            .filter(|(_, row)| residual.iter().all(|f| f.matches(row)));
        let mut rows: Vec<(RowId, Row)> = match (self.descending, self.limit) {
            (false, None) => filtered.collect(),
            (false, Some(n)) => filtered.take(n).collect(),
            (true, _) => filtered.collect(),
        };
        if self.descending {
            rows.reverse();
            if let Some(n) = self.limit {
                rows.truncate(n);
            }
        }
        Ok(rows)
    }

    /// Number of matching rows.
    ///
    /// # Errors
    ///
    /// As for [`Query::rows`].
    pub fn count(self) -> Result<usize, DbError> {
        Ok(self.rows()?.len())
    }

    /// Sum of `column` over matching rows (wrapping arithmetic).
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownColumn`] plus execution errors.
    pub fn sum(self, column: &str) -> Result<u64, DbError> {
        let col = self.table.schema().resolve(column)?;
        Ok(self
            .rows()?
            .iter()
            // INVARIANT: every stored row passed the arity check on insert,
            // and `resolve` proved `col` is within that arity.
            .map(|(_, r)| r.get(col).expect("arity checked on insert"))
            .fold(0u64, u64::wrapping_add))
    }

    /// Minimum of `column` over matching rows.
    ///
    /// # Errors
    ///
    /// As for [`Query::sum`].
    pub fn min(self, column: &str) -> Result<Option<u64>, DbError> {
        let col = self.table.schema().resolve(column)?;
        // INVARIANT: arity checked on insert; `col` resolved against it.
        Ok(self.rows()?.iter().map(|(_, r)| r.get(col).unwrap()).min())
    }

    /// Maximum of `column` over matching rows.
    ///
    /// # Errors
    ///
    /// As for [`Query::sum`].
    pub fn max(self, column: &str) -> Result<Option<u64>, DbError> {
        let col = self.table.schema().resolve(column)?;
        // INVARIANT: arity checked on insert; `col` resolved against it.
        Ok(self.rows()?.iter().map(|(_, r)| r.get(col).unwrap()).max())
    }
}

#[cfg(test)]
mod tests {
    use crate::{Schema, Table};

    fn staff() -> Table {
        let t = Table::new(
            Schema::new(&["dept", "age", "salary"])
                .with_index("age")
                .with_index("salary"),
        );
        // (dept, age, salary)
        t.insert(&[1, 25, 4000]).unwrap();
        t.insert(&[1, 35, 6000]).unwrap();
        t.insert(&[2, 45, 8000]).unwrap();
        t.insert(&[2, 30, 5000]).unwrap();
        t.insert(&[3, 35, 7000]).unwrap();
        t
    }

    #[test]
    fn indexed_range_drives_the_scan() {
        let t = staff();
        let rows = t
            .query()
            .filter_range("age", 30, 40)
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 3);
        // Ordered by the driving index (age, then row id).
        let ages: Vec<u64> = rows.iter().map(|(_, r)| r.get(1).unwrap()).collect();
        assert_eq!(ages, vec![30, 35, 35]);
    }

    #[test]
    fn residual_filters_apply() {
        let t = staff();
        let rows = t
            .query()
            .filter_range("age", 30, 40)
            .unwrap()
            .filter_eq("dept", 1)
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.columns(), &[1, 35, 6000]);
    }

    #[test]
    fn unindexed_only_falls_back_to_full_scan() {
        let t = staff();
        let rows = t.query().filter_eq("dept", 2).unwrap().rows().unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn aggregates() {
        let t = staff();
        assert_eq!(t.query().count().unwrap(), 5);
        assert_eq!(
            t.query()
                .filter_eq("dept", 2)
                .unwrap()
                .sum("salary")
                .unwrap(),
            13_000
        );
        assert_eq!(
            t.query()
                .filter_range("age", 0, 34)
                .unwrap()
                .min("salary")
                .unwrap(),
            Some(4000)
        );
        assert_eq!(t.query().max("age").unwrap(), Some(45));
        assert_eq!(
            t.query().filter_eq("dept", 9).unwrap().max("age").unwrap(),
            None
        );
    }

    #[test]
    fn limit_and_descending() {
        let t = staff();
        let top2 = t
            .query()
            .filter_range("salary", 0, 10_000)
            .unwrap()
            .descending()
            .limit(2)
            .rows()
            .unwrap();
        let salaries: Vec<u64> = top2.iter().map(|(_, r)| r.get(2).unwrap()).collect();
        assert_eq!(salaries, vec![8000, 7000], "top-2 by salary");
        let first2 = t
            .query()
            .filter_range("age", 0, 100)
            .unwrap()
            .limit(2)
            .rows()
            .unwrap();
        assert_eq!(first2.len(), 2);
        assert!(first2[0].1.get(1).unwrap() <= first2[1].1.get(1).unwrap());
    }

    #[test]
    fn unknown_columns_error() {
        let t = staff();
        assert!(t.query().filter_eq("ghost", 1).is_err());
        assert!(t.query().sum("ghost").is_err());
    }

    #[test]
    fn eq_on_indexed_column_uses_point_range() {
        let t = staff();
        let rows = t.query().filter_eq("salary", 7000).unwrap().rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1.get(0), Some(3));
    }
}
