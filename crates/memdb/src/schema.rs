//! Table schemas: named columns, a subset of which carry indexes.

use crate::DbError;

/// A table schema: ordered column names plus the set of indexed columns.
///
/// # Example
///
/// ```
/// use leap_memdb::Schema;
/// let s = Schema::new(&["id", "age"]).with_index("age");
/// assert_eq!(s.column_index("age"), Some(1));
/// assert!(s.is_indexed(1));
/// assert!(!s.is_indexed(0));
/// ```
#[derive(Debug, Clone)]
pub struct Schema {
    columns: Vec<String>,
    indexed: Vec<bool>,
}

impl Schema {
    /// Creates a schema with the given column names and no indexes.
    ///
    /// # Panics
    ///
    /// Panics on duplicate or empty column names, or an empty column list.
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "schema needs at least one column");
        for (i, c) in columns.iter().enumerate() {
            assert!(!c.is_empty(), "empty column name");
            assert!(!columns[..i].contains(c), "duplicate column name '{c}'");
        }
        Schema {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            indexed: vec![false; columns.len()],
        }
    }

    /// Declares a secondary index on `column` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the column does not exist.
    pub fn with_index(mut self, column: &str) -> Self {
        let i = self
            .column_index(column)
            // INVARIANT: documented builder panic — a typo'd index column
            // must fail at schema definition, not at first query.
            .unwrap_or_else(|| panic!("unknown column '{column}'"));
        self.indexed[i] = true;
        self
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Position of a named column.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == column)
    }

    /// Whether the column at `idx` is indexed.
    pub fn is_indexed(&self, idx: usize) -> bool {
        self.indexed.get(idx).copied().unwrap_or(false)
    }

    /// Positions of all indexed columns, in declaration order.
    pub fn indexed_columns(&self) -> Vec<usize> {
        (0..self.columns.len())
            .filter(|&i| self.indexed[i])
            .collect()
    }

    /// Column name at `idx`.
    pub fn column_name(&self, idx: usize) -> &str {
        &self.columns[idx]
    }

    /// Resolves a column name, erroring helpfully.
    pub(crate) fn resolve(&self, column: &str) -> Result<usize, DbError> {
        self.column_index(column)
            .ok_or_else(|| DbError::UnknownColumn(column.to_string()))
    }

    /// Resolves a column that must be indexed.
    pub(crate) fn resolve_indexed(&self, column: &str) -> Result<usize, DbError> {
        let i = self.resolve(column)?;
        if !self.is_indexed(i) {
            return Err(DbError::NotIndexed(column.to_string()));
        }
        Ok(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_roundtrip() {
        let s = Schema::new(&["a", "b", "c"])
            .with_index("b")
            .with_index("c");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.indexed_columns(), vec![1, 2]);
        assert_eq!(s.column_name(0), "a");
        assert_eq!(s.resolve("c").unwrap(), 2);
        assert!(s.resolve("zz").is_err());
        assert!(s.resolve_indexed("a").is_err());
        assert_eq!(s.resolve_indexed("b").unwrap(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_columns() {
        Schema::new(&["x", "x"]);
    }

    #[test]
    #[should_panic(expected = "unknown column")]
    fn rejects_index_on_missing_column() {
        Schema::new(&["a"]).with_index("b");
    }
}
