//! Property test for the core EBR guarantee: a deferred destructor never
//! runs while any guard that was live at defer time is still held.
//!
//! Single-threaded simulation: random interleavings of pin/unpin/defer/
//! collect across several handles, with each deferral recording the set of
//! guards live when it was queued and asserting at execution time that all
//! of them have since been dropped.

use leap_ebr::{Collector, Guard};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const HANDLES: usize = 3;

#[derive(Debug, Clone)]
enum Step {
    Pin(usize),
    Unpin(usize),
    Defer(usize),
    Collect(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..HANDLES).prop_map(Step::Pin),
        (0..HANDLES).prop_map(Step::Unpin),
        (0..HANDLES).prop_map(Step::Defer),
        (0..HANDLES).prop_map(Step::Collect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn deferred_never_runs_under_a_live_pin(steps in prop::collection::vec(step_strategy(), 1..80)) {
        let collector = Collector::new();
        let handles: Vec<_> = (0..HANDLES).map(|_| collector.register()).collect();
        // One guard slot per handle (re-pinning replaces the guard).
        let mut guards: Vec<Option<Guard>> = (0..HANDLES).map(|_| None).collect();
        // Epoch-of-guard bookkeeping: guard generation counters.
        let live_gen: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
        let mut gen_of_guard: HashMap<usize, u64> = HashMap::new();
        // dropped_gens[bit g] set when guard generation g has been dropped.
        let dropped: Arc<std::sync::Mutex<Vec<u64>>> = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut next_gen = 1u64;

        for step in steps {
            match step {
                Step::Pin(h) => {
                    if guards[h].is_none() {
                        guards[h] = Some(handles[h].pin());
                        gen_of_guard.insert(h, next_gen);
                        live_gen.fetch_add(1, Ordering::SeqCst);
                        next_gen += 1;
                    }
                }
                Step::Unpin(h) => {
                    if let Some(g) = guards[h].take() {
                        drop(g);
                        let gen = gen_of_guard.remove(&h).unwrap();
                        dropped.lock().unwrap().push(gen);
                        live_gen.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                Step::Defer(h) => {
                    if let Some(g) = &guards[h] {
                        // Record the guards live right now.
                        let live_now: Vec<u64> = gen_of_guard.values().copied().collect();
                        let dropped = dropped.clone();
                        g.defer(move || {
                            let d = dropped.lock().unwrap();
                            for gen in &live_now {
                                assert!(
                                    d.contains(gen),
                                    "deferral ran while guard generation {gen} still live"
                                );
                            }
                        });
                    }
                }
                Step::Collect(h) => {
                    handles[h].collect();
                }
            }
        }
        // Drain: drop all guards, then collect until quiescent.
        for (h, g) in guards.iter_mut().enumerate() {
            if let Some(g) = g.take() {
                drop(g);
                if let Some(gen) = gen_of_guard.remove(&h) {
                    dropped.lock().unwrap().push(gen);
                }
            }
        }
        handles[0].advance_until_quiescent();
        for h in &handles {
            h.collect();
        }
    }
}
