//! Multi-threaded stress tests for epoch reclamation: a shared atomic "slot"
//! whose boxed payload is swapped and retired under load, checked for
//! use-after-free (via payload canaries) and for leak-freedom (via drop
//! counting).

use leap_ebr::Collector;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

const CANARY: u64 = 0xFEED_FACE_CAFE_BEEF;

struct Payload {
    canary: u64,
    value: u64,
    drops: Arc<AtomicUsize>,
}

impl Drop for Payload {
    fn drop(&mut self) {
        assert_eq!(self.canary, CANARY, "double free or corruption");
        self.canary = 0;
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn swap_and_retire_under_load() {
    let collector = Collector::new();
    let drops = Arc::new(AtomicUsize::new(0));
    let allocs = Arc::new(AtomicUsize::new(1));
    let slot = Arc::new(AtomicPtr::new(Box::into_raw(Box::new(Payload {
        canary: CANARY,
        value: 0,
        drops: drops.clone(),
    }))));

    let n_threads = 4;
    let iters = 3_000;
    let mut handles = Vec::new();
    for t in 0..n_threads {
        let collector = collector.clone();
        let slot = slot.clone();
        let drops = drops.clone();
        let allocs = allocs.clone();
        handles.push(std::thread::spawn(move || {
            let local = collector.register();
            for i in 0..iters {
                let guard = local.pin();
                if (i + t) % 3 == 0 {
                    // Writer: swap in a fresh payload, retire the old one.
                    let fresh = Box::into_raw(Box::new(Payload {
                        canary: CANARY,
                        value: (t * iters + i) as u64,
                        drops: drops.clone(),
                    }));
                    allocs.fetch_add(1, Ordering::SeqCst);
                    let old = slot.swap(fresh, Ordering::AcqRel);
                    // SAFETY: the swap unlinked `old`; the grace period
                    // covers pinned readers.
                    unsafe { guard.defer_drop_box(old) };
                } else {
                    // Reader: the payload must still be intact while pinned.
                    // SAFETY: the pin precedes the load, so the payload
                    // cannot be reclaimed while we hold `p`.
                    let p = unsafe { &*slot.load(Ordering::Acquire) };
                    assert_eq!(p.canary, CANARY, "reader observed freed payload");
                    std::hint::black_box(p.value);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Drain all garbage, then free the final payload.
    let local = collector.register();
    local.advance_until_quiescent();
    // SAFETY: all threads joined; the final payload is exclusively ours.
    drop(unsafe { Box::from_raw(slot.load(Ordering::Acquire)) });

    assert_eq!(
        drops.load(Ordering::SeqCst),
        allocs.load(Ordering::SeqCst),
        "every allocated payload must be dropped exactly once"
    );
}

#[test]
fn many_short_lived_threads_reuse_participants() {
    let collector = Collector::new();
    for round in 0..50 {
        let collector = collector.clone();
        std::thread::spawn(move || {
            let local = collector.register();
            let guard = local.pin();
            guard.defer(move || {
                std::hint::black_box(round);
            });
        })
        .join()
        .unwrap();
    }
    let local = collector.register();
    local.advance_until_quiescent();
}

#[test]
fn epoch_advances_under_concurrent_pinning() {
    let collector = Collector::new();
    let start = collector.epoch();
    let mut handles = Vec::new();
    for _ in 0..4 {
        let collector = collector.clone();
        handles.push(std::thread::spawn(move || {
            let local = collector.register();
            for _ in 0..2_000 {
                let g = local.pin();
                drop(g);
            }
            local.collect();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        collector.epoch() > start,
        "epoch should advance when threads keep re-pinning"
    );
}
