//! The shared collector: global epoch, registry and orphaned garbage.

use crate::local::{Deferred, LocalHandle};
use crate::participant::Registry;
use crate::SAFE_EPOCH_DISTANCE;
use std::sync::{Arc, Mutex};

pub(crate) struct Inner {
    pub(crate) registry: Registry,
    /// Garbage abandoned by unregistered threads, adopted by whichever
    /// handle collects next.
    pub(crate) orphans: Mutex<Vec<(u64, Deferred)>>,
}

impl Inner {
    /// Runs every orphaned deferral whose epoch is old enough.
    pub(crate) fn drain_orphans(&self, global: u64) {
        // try_lock: reclamation is best-effort; a contended lock just means
        // another thread is already draining.
        let Ok(mut orphans) = self.orphans.try_lock() else {
            return;
        };
        let mut ready = Vec::new();
        orphans.retain_mut(|(epoch, d)| {
            if *epoch + SAFE_EPOCH_DISTANCE <= global {
                ready.push(d.take());
                false
            } else {
                true
            }
        });
        drop(orphans);
        for d in ready {
            d.call();
        }
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // No handles remain (they hold Arcs), so everything is reclaimable.
        // INVARIANT: no code path panics while holding this lock.
        let orphans = std::mem::take(self.orphans.get_mut().unwrap());
        for (_, d) in orphans {
            d.call();
        }
    }
}

/// An epoch-based garbage collector domain.
///
/// Structures that share a `Collector` share grace periods. Cloning is cheap
/// (reference counted). Threads participate by calling [`Collector::register`]
/// and pinning the returned [`LocalHandle`].
///
/// # Example
///
/// ```
/// let collector = leap_ebr::Collector::new();
/// let handle = collector.register();
/// let guard = handle.pin();
/// guard.defer(|| { /* free something */ });
/// ```
#[derive(Clone)]
pub struct Collector {
    pub(crate) inner: Arc<Inner>,
}

impl Collector {
    /// Creates a new, independent collector domain.
    pub fn new() -> Self {
        Collector {
            inner: Arc::new(Inner {
                registry: Registry::new(),
                orphans: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Registers the calling thread and returns its local handle.
    pub fn register(&self) -> LocalHandle {
        LocalHandle::new(self.inner.clone())
    }

    /// Current global epoch (monotonic). Mostly useful for diagnostics and
    /// tests.
    pub fn epoch(&self) -> u64 {
        self.inner.registry.epoch()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_clone_shares_epoch() {
        let a = Collector::new();
        let b = a.clone();
        let h = a.register();
        h.advance_until_quiescent();
        assert_eq!(a.epoch(), b.epoch());
        assert!(a.epoch() > 0);
    }

    #[test]
    fn independent_collectors_have_independent_epochs() {
        let a = Collector::new();
        let b = Collector::new();
        let h = a.register();
        h.advance_until_quiescent();
        assert!(a.epoch() > 0);
        assert_eq!(b.epoch(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        let c = Collector::new();
        assert!(!format!("{c:?}").is_empty());
    }
}
