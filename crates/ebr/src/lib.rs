//! # leap-ebr — epoch-based memory reclamation
//!
//! Substrate crate for the Leap-List reproduction. The PODC 2013 paper uses
//! Keir Fraser's "linearizable memory allocation manager" so that nodes
//! unlinked from a lock-free or lock-based structure are not freed while a
//! concurrent traversal may still hold a raw reference to them. This crate
//! provides the same guarantee through classic three-epoch reclamation:
//!
//! * Threads **pin** the current global epoch before touching shared nodes
//!   and unpin when done ([`LocalHandle::pin`], [`pin`]).
//! * Retired objects are **deferred** with the global epoch observed at
//!   retirement time ([`Guard::defer`]).
//! * The global epoch only advances when every pinned thread has observed
//!   the current epoch, so garbage tagged with epoch `e` can be reclaimed
//!   once the global epoch reaches `e + 2`.
//!
//! # Example
//!
//! ```
//! use leap_ebr::Collector;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let collector = Collector::new();
//! let handle = collector.register();
//! let dropped = Arc::new(AtomicUsize::new(0));
//!
//! {
//!     let guard = handle.pin();
//!     let d = dropped.clone();
//!     guard.defer(move || {
//!         d.fetch_add(1, Ordering::SeqCst);
//!     });
//! } // guard dropped; the deferred closure runs once two epochs have passed
//!
//! handle.advance_until_quiescent();
//! assert_eq!(dropped.load(Ordering::SeqCst), 1);
//! ```
//!
//! A process-wide default collector is available through [`pin`], which is
//! what the `leaplist` and `leap-skiplist` crates use.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod collector;
mod default;
mod guard;
mod local;
mod participant;

pub use collector::Collector;
pub use default::{default_collector, pin};
pub use guard::Guard;
pub use local::LocalHandle;

/// Number of pins between opportunistic collection attempts.
pub(crate) const PINS_BETWEEN_COLLECT: u32 = 32;

/// Local garbage size that forces a collection attempt on the next defer.
pub(crate) const COLLECT_THRESHOLD: usize = 128;

/// Epoch distance after which deferred garbage is safe to reclaim.
pub(crate) const SAFE_EPOCH_DISTANCE: u64 = 2;
