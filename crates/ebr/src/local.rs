//! Thread-local participation: handles, pin bookkeeping and garbage bags.

use crate::collector::Inner;
use crate::guard::Guard;
use crate::participant::Participant;
use crate::{COLLECT_THRESHOLD, PINS_BETWEEN_COLLECT, SAFE_EPOCH_DISTANCE};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::Arc;

/// A type-erased deferred destructor.
///
/// Wrapped in an `Option` so it can be moved out of collections in place
/// (`take`) without unsafe code.
pub(crate) struct Deferred(Option<Box<dyn FnOnce() + Send>>);

impl Deferred {
    pub(crate) fn new<F: FnOnce() + Send + 'static>(f: F) -> Self {
        Deferred(Some(Box::new(f)))
    }

    /// Extracts the closure, leaving an inert shell behind.
    pub(crate) fn take(&mut self) -> Deferred {
        Deferred(self.0.take())
    }

    pub(crate) fn call(mut self) {
        if let Some(f) = self.0.take() {
            f();
        }
    }
}

pub(crate) struct LocalInner {
    pub(crate) collector: Arc<Inner>,
    participant: &'static Participant,
    pin_depth: Cell<u32>,
    pins_since_collect: Cell<u32>,
    garbage: RefCell<Vec<(u64, Deferred)>>,
}

impl LocalInner {
    pub(crate) fn pin(self: &Rc<Self>) -> Guard {
        let depth = self.pin_depth.get();
        self.pin_depth.set(depth + 1);
        if depth == 0 {
            let epoch = self.collector.registry.epoch();
            self.participant.set_pinned(epoch);
            let pins = self.pins_since_collect.get() + 1;
            self.pins_since_collect.set(pins);
            if pins >= PINS_BETWEEN_COLLECT {
                self.pins_since_collect.set(0);
                self.collect();
            }
        }
        Guard::new(self.clone())
    }

    pub(crate) fn unpin(&self) {
        let depth = self.pin_depth.get();
        debug_assert!(depth > 0, "unpin without matching pin");
        self.pin_depth.set(depth - 1);
        if depth == 1 {
            self.participant.set_unpinned();
        }
    }

    pub(crate) fn is_pinned(&self) -> bool {
        self.pin_depth.get() > 0
    }

    pub(crate) fn defer(&self, d: Deferred) {
        // SeqCst fence so that the unlink preceding this defer is ordered
        // before our read of the global epoch (see crate-level safety note).
        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
        let epoch = self.collector.registry.epoch();
        let len = {
            let mut g = self.garbage.borrow_mut();
            g.push((epoch, d));
            g.len()
        };
        if len >= COLLECT_THRESHOLD {
            self.collect();
        }
    }

    /// Tries to advance the epoch, then reclaims everything old enough.
    ///
    /// Note this may run destructors while the owner is pinned; destructors
    /// must not pin/defer on this same handle re-entrantly at `collect` time
    /// (they may defer onto *other* handles). Plain `drop(Box)` deferrals,
    /// which is all the data-structure crates use, are always fine.
    pub(crate) fn collect(&self) {
        let global = self.collector.registry.try_advance();
        let mut ready = Vec::new();
        {
            let mut g = self.garbage.borrow_mut();
            g.retain_mut(|(epoch, d)| {
                if *epoch + SAFE_EPOCH_DISTANCE <= global {
                    ready.push(d.take());
                    false
                } else {
                    true
                }
            });
        }
        for d in ready {
            d.call();
        }
        self.collector.drain_orphans(global);
    }

    fn garbage_len(&self) -> usize {
        self.garbage.borrow().len()
    }
}

impl Drop for LocalInner {
    fn drop(&mut self) {
        debug_assert_eq!(self.pin_depth.get(), 0, "handle dropped while pinned");
        // Orphan leftover garbage so another handle (or the collector's own
        // drop) reclaims it later.
        let garbage = std::mem::take(&mut *self.garbage.borrow_mut());
        if !garbage.is_empty() {
            self.collector
                .orphans
                .lock()
                // INVARIANT: no code path panics while holding this lock.
                .expect("orphan list poisoned")
                .extend(garbage);
        }
        self.participant.release();
    }
}

/// A per-thread handle onto a [`Collector`](crate::Collector).
///
/// Handles are cheap to pin and are **not** `Send`: each thread registers its
/// own. Dropping the handle unregisters the thread; any garbage it still
/// holds is handed to the collector for later reclamation.
///
/// # Example
///
/// ```
/// let collector = leap_ebr::Collector::new();
/// let handle = collector.register();
/// {
///     let guard = handle.pin();
///     assert!(handle.is_pinned());
///     guard.defer(|| ());
/// }
/// assert!(!handle.is_pinned());
/// ```
pub struct LocalHandle {
    pub(crate) inner: Rc<LocalInner>,
}

impl LocalHandle {
    pub(crate) fn new(collector: Arc<Inner>) -> Self {
        // The registry leaks participant records, so extending the reference
        // to 'static is sound: the referent is never deallocated.
        let participant: &'static Participant =
            // SAFETY: registry records are intentionally leaked (never
            // freed), so extending the reference to 'static is sound.
            unsafe { &*(collector.registry.acquire() as *const Participant) };
        LocalHandle {
            inner: Rc::new(LocalInner {
                collector,
                participant,
                pin_depth: Cell::new(0),
                pins_since_collect: Cell::new(0),
                garbage: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Pins the current epoch. Shared objects read while the returned
    /// [`Guard`] is alive will not be reclaimed underneath the caller.
    /// Nested pins are permitted and cheap.
    pub fn pin(&self) -> Guard {
        self.inner.pin()
    }

    /// Whether the thread currently holds at least one guard from this
    /// handle.
    pub fn is_pinned(&self) -> bool {
        self.inner.is_pinned()
    }

    /// Eagerly attempts epoch advancement and reclamation.
    pub fn collect(&self) {
        self.inner.collect()
    }

    /// Number of deferrals queued locally (diagnostics / tests).
    pub fn garbage_len(&self) -> usize {
        self.inner.garbage_len()
    }

    /// Repeatedly advances the epoch and collects until this handle holds no
    /// garbage. Only meaningful when no other thread is pinned indefinitely;
    /// intended for tests and teardown paths.
    pub fn advance_until_quiescent(&self) {
        for _ in 0..64 {
            self.collect();
            if self.inner.garbage_len() == 0 {
                // One extra round so orphans two epochs back drain too.
                self.collect();
                return;
            }
        }
        // INVARIANT: diagnostic API — documented to panic when a foreign
        // pin blocks the epoch; deadlocking silently would hide the bug.
        panic!("epoch cannot advance: another participant is pinned");
    }
}

impl std::fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHandle")
            .field("pinned", &self.is_pinned())
            .field("garbage", &self.garbage_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::Collector;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn nested_pins_unpin_once() {
        let c = Collector::new();
        let h = c.register();
        let g1 = h.pin();
        let g2 = h.pin();
        drop(g1);
        assert!(h.is_pinned());
        drop(g2);
        assert!(!h.is_pinned());
    }

    #[test]
    fn deferred_not_run_while_epoch_held_back() {
        let c = Collector::new();
        let h1 = c.register();
        let h2 = c.register();
        let ran = Arc::new(AtomicUsize::new(0));

        let _blocker = h2.pin(); // pins epoch 0 and never refreshes

        {
            let g = h1.pin();
            let r = ran.clone();
            g.defer(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..16 {
            h1.collect();
        }
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "garbage freed under a live pin"
        );
    }

    #[test]
    fn deferred_runs_after_grace_period() {
        let c = Collector::new();
        let h = c.register();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let g = h.pin();
            let r = ran.clone();
            g.defer(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
        }
        h.advance_until_quiescent();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn orphaned_garbage_is_reclaimed_by_other_handles() {
        let c = Collector::new();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let h = c.register();
            let g = h.pin();
            let r = ran.clone();
            g.defer(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
            drop(g);
            // Handle dropped with garbage still queued -> orphaned.
        }
        let h2 = c.register();
        h2.advance_until_quiescent();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn orphaned_garbage_reclaimed_on_collector_drop() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let c = Collector::new();
            let h = c.register();
            let g = h.pin();
            let r = ran.clone();
            g.defer(move || {
                r.fetch_add(1, Ordering::SeqCst);
            });
            drop(g);
            drop(h);
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn garbage_len_reports_queue() {
        let c = Collector::new();
        let h = c.register();
        let g = h.pin();
        assert_eq!(h.garbage_len(), 0);
        g.defer(|| ());
        g.defer(|| ());
        assert_eq!(h.garbage_len(), 2);
    }
}
