//! Per-thread participant records and the global registry.
//!
//! Records are pushed onto a lock-free stack once and never freed; when a
//! thread unregisters, its record is marked unowned and may be adopted by a
//! later thread, so the registry size is bounded by the peak number of
//! simultaneously registered threads.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};

/// State encoding: bit 0 = active (pinned), bits 1.. = epoch at pin time.
pub(crate) struct Participant {
    state: AtomicU64,
    owned: AtomicBool,
    next: AtomicPtr<Participant>,
}

impl Participant {
    fn new() -> Self {
        Participant {
            state: AtomicU64::new(0),
            owned: AtomicBool::new(true),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Marks this participant as pinned at `epoch`.
    pub(crate) fn set_pinned(&self, epoch: u64) {
        // ORDERING: the SeqCst fence right below globally orders this store
        // against other threads' epoch reads; Relaxed is enough here.
        self.state.store((epoch << 1) | 1, Ordering::Relaxed);
        // Make the pin visible before any subsequent structure loads, and
        // order it against epoch reads by other threads (SC fence pairing
        // with the fences in `Registry::try_advance` and `Guard::defer`).
        std::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Marks this participant as no longer pinned.
    pub(crate) fn set_unpinned(&self) {
        // ORDERING: only this thread writes its own state; the Release
        // store below publishes the cleared active bit.
        let epoch = self.state.load(Ordering::Relaxed) >> 1;
        self.state.store(epoch << 1, Ordering::Release);
    }

    /// Returns `(active, epoch)`.
    pub(crate) fn load_state(&self) -> (bool, u64) {
        let s = self.state.load(Ordering::SeqCst);
        (s & 1 == 1, s >> 1)
    }

    /// Releases ownership so another thread may adopt this record.
    pub(crate) fn release(&self) {
        // ORDERING: debug-only self-read of a thread-local state word.
        debug_assert_eq!(self.state.load(Ordering::Relaxed) & 1, 0);
        self.owned.store(false, Ordering::Release);
    }
}

/// Lock-free, grow-only registry of participants.
pub(crate) struct Registry {
    head: AtomicPtr<Participant>,
    /// Global epoch counter (monotonically increasing, never wraps in
    /// practice: 2^63 pins would take centuries).
    epoch: AtomicU64,
}

impl Registry {
    pub(crate) fn new() -> Self {
        Registry {
            head: AtomicPtr::new(std::ptr::null_mut()),
            epoch: AtomicU64::new(0),
        }
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Registers the calling thread, reusing an unowned record if possible.
    pub(crate) fn acquire(&self) -> &Participant {
        // Try to adopt an abandoned record first.
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records are pushed once and never freed (leaked).
            let p = unsafe { &*cur };
            if p.owned
                // ORDERING: the failure load carries no data we act on;
                // success is AcqRel, pairing with `release()`.
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return p;
            }
            cur = p.next.load(Ordering::Acquire);
        }
        // None available: allocate a fresh record and push it. Records are
        // intentionally leaked; the registry is bounded by peak thread count.
        let boxed = Box::leak(Box::new(Participant::new()));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // ORDERING: the AcqRel CAS below publishes `next` together with
            // the new head.
            boxed.next.store(head, Ordering::Relaxed);
            match self.head.compare_exchange_weak(
                head,
                boxed as *mut _,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return boxed,
                Err(h) => head = h,
            }
        }
    }

    /// Attempts to advance the global epoch. Succeeds only when every owned,
    /// active participant is pinned at the current epoch. Returns the epoch
    /// after the attempt.
    pub(crate) fn try_advance(&self) -> u64 {
        let global = self.epoch.load(Ordering::SeqCst);
        std::sync::atomic::fence(Ordering::SeqCst);
        let mut cur = self.head.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records are pushed once and never freed (leaked).
            let p = unsafe { &*cur };
            if p.owned.load(Ordering::Acquire) {
                let (active, epoch) = p.load_state();
                if active && epoch != global {
                    // A straggler is still in the previous epoch.
                    return global;
                }
            }
            cur = p.next.load(Ordering::Acquire);
        }
        // Everyone has caught up; move the epoch forward. A failed CAS means
        // someone else advanced concurrently, which is just as good.
        let _ = self
            .epoch
            .compare_exchange(global, global + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn participant_state_roundtrip() {
        let p = Participant::new();
        assert_eq!(p.load_state(), (false, 0));
        p.set_pinned(7);
        assert_eq!(p.load_state(), (true, 7));
        p.set_unpinned();
        assert_eq!(p.load_state(), (false, 7));
    }

    #[test]
    fn registry_reuses_released_records() {
        let reg = Registry::new();
        let a = reg.acquire() as *const Participant;
        // SAFETY: `a` points at a leaked, never-freed registry record.
        unsafe { (*a).release() };
        let b = reg.acquire() as *const Participant;
        assert_eq!(a, b, "released record should be adopted");
    }

    #[test]
    fn registry_allocates_when_all_owned() {
        let reg = Registry::new();
        let a = reg.acquire() as *const Participant;
        let b = reg.acquire() as *const Participant;
        assert_ne!(a, b);
    }

    #[test]
    fn advance_blocked_by_stale_active_participant() {
        let reg = Registry::new();
        let p = reg.acquire();
        p.set_pinned(0);
        // p is pinned at epoch 0 == global, so one advance succeeds...
        assert_eq!(reg.try_advance(), 1);
        // ...but a second is blocked because p is now stale (still at 0).
        assert_eq!(reg.try_advance(), 1);
        p.set_unpinned();
        assert_eq!(reg.try_advance(), 2);
    }

    #[test]
    fn advance_ignores_unowned_records() {
        let reg = Registry::new();
        let p = reg.acquire();
        p.set_pinned(0);
        assert_eq!(reg.try_advance(), 1);
        p.set_unpinned();
        p.release();
        // The released record is stale but unowned: it must not block.
        assert_eq!(reg.try_advance(), 2);
        assert_eq!(reg.try_advance(), 3);
    }
}
