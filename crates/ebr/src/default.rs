//! Process-wide default collector, mirroring `crossbeam_epoch::pin`.

use crate::collector::Collector;
use crate::guard::Guard;
use crate::local::LocalHandle;
use std::sync::OnceLock;

static DEFAULT: OnceLock<Collector> = OnceLock::new();

thread_local! {
    static HANDLE: LocalHandle = default_collector().register();
}

/// The process-wide collector shared by all structures that call [`pin`].
pub fn default_collector() -> &'static Collector {
    DEFAULT.get_or_init(Collector::new)
}

/// Pins the current thread on the default collector.
///
/// # Example
///
/// ```
/// let guard = leap_ebr::pin();
/// guard.defer(|| ());
/// ```
pub fn pin() -> Guard {
    HANDLE.with(|h| h.pin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pin_works_and_nests() {
        let g1 = pin();
        let g2 = pin();
        g1.defer(|| ());
        drop(g2);
        drop(g1);
    }

    #[test]
    fn default_collector_is_singleton() {
        let a = default_collector() as *const _;
        let b = default_collector() as *const _;
        assert_eq!(a, b);
    }

    #[test]
    fn pin_from_multiple_threads() {
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        let g = pin();
                        g.defer(|| ());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
