//! RAII pin guards.

use crate::local::{Deferred, LocalInner};
use std::rc::Rc;

/// Witness that the current thread is pinned.
///
/// While a `Guard` is alive, objects reachable from the shared structure at
/// pin time will not be reclaimed. Obtain one from
/// [`LocalHandle::pin`](crate::LocalHandle::pin) or the process-wide
/// [`pin`](crate::pin).
///
/// # Example
///
/// ```
/// let guard = leap_ebr::pin();
/// // ... traverse shared nodes ...
/// guard.defer(|| { /* destructor for an unlinked node */ });
/// ```
pub struct Guard {
    local: Rc<LocalInner>,
}

impl Guard {
    pub(crate) fn new(local: Rc<LocalInner>) -> Self {
        Guard { local }
    }

    /// Schedules `f` to run after all currently-pinned threads unpin.
    ///
    /// The closure runs at an unspecified later time on an unspecified
    /// thread participating in the same collector.
    pub fn defer<F: FnOnce() + Send + 'static>(&self, f: F) {
        self.local.defer(Deferred::new(f));
    }

    /// Schedules the boxed value behind `ptr` to be dropped after the grace
    /// period.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by [`Box::into_raw`] (or
    /// `Box::leak`) with the same `T`, must not be used to create another
    /// `Box`, and no new references to it may be created after this call
    /// (it must already be unreachable from the shared structure for
    /// threads that pin later).
    pub unsafe fn defer_drop_box<T: Send + 'static>(&self, ptr: *mut T) {
        let addr = ptr as usize;
        self.local.defer(Deferred::new(move || {
            // SAFETY: contract forwarded from `defer_drop_box`.
            drop(unsafe { Box::from_raw(addr as *mut T) });
        }));
    }

    /// Eagerly attempts epoch advancement and reclamation (of *older*
    /// garbage; anything deferred under this guard stays queued).
    pub fn flush(&self) {
        self.local.collect();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        self.local.unpin();
    }
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use crate::Collector;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn defer_drop_box_frees_exactly_once() {
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let c = Collector::new();
        let h = c.register();
        {
            let g = h.pin();
            let ptr = Box::into_raw(Box::new(Counted(drops.clone())));
            // SAFETY: `ptr` was never shared; the deferral is its only owner.
            unsafe { g.defer_drop_box(ptr) };
        }
        h.advance_until_quiescent();
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn flush_does_not_free_own_epoch_garbage() {
        let c = Collector::new();
        let h = c.register();
        let ran = Arc::new(AtomicUsize::new(0));
        let g = h.pin();
        let r = ran.clone();
        g.defer(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        g.flush();
        g.flush();
        assert_eq!(
            ran.load(Ordering::SeqCst),
            0,
            "own-epoch garbage must survive while pinned"
        );
    }
}
