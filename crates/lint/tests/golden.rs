//! Golden tests for the five lint passes: for each, a fixture that must
//! fire, a correctly-annotated twin that must not, and a suppressed twin
//! that must count as suppressed. Fixtures are embedded strings (never
//! files on disk) so the workspace walk in `main.rs` can't see them.

use leap_lint::lexer::lex;
use leap_lint::lints::{lint_file, registry_drift, Enabled, FileReport, RegistryDocs, SourceFile};

/// Lint `src` as if it lived at `path` (path picks scoping rules).
fn run(path: &str, src: &str) -> FileReport {
    let file = SourceFile {
        path: path.to_string(),
        lex: lex(src),
    };
    lint_file(&file, &Enabled::all())
}

fn lints_fired(rep: &FileReport) -> Vec<&'static str> {
    rep.findings.iter().map(|f| f.lint).collect()
}

/// Assert exactly one finding of `lint` at `line`.
fn assert_fires(path: &str, src: &str, lint: &str, line: u32) {
    let rep = run(path, src);
    assert_eq!(
        lints_fired(&rep),
        vec![lint],
        "expected exactly one `{lint}` finding, got {:?}",
        rep.findings
    );
    assert_eq!(rep.findings[0].line, line, "finding on wrong line");
}

fn assert_clean(path: &str, src: &str) {
    let rep = run(path, src);
    assert!(
        rep.findings.is_empty(),
        "expected clean, got {:?}",
        rep.findings
    );
}

fn assert_suppressed(path: &str, src: &str) {
    let rep = run(path, src);
    assert!(
        rep.findings.is_empty(),
        "expected suppressed, got {:?}",
        rep.findings
    );
    assert_eq!(rep.suppressed, 1, "expected one suppressed site");
}

const P: &str = "crates/store/src/demo.rs";

// -- unsafe-justification ---------------------------------------------------

#[test]
fn unsafe_justification_fires() {
    assert_fires(
        P,
        "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        "unsafe-justification",
        2,
    );
}

#[test]
fn unsafe_justification_accepts_safety_comment() {
    assert_clean(
        P,
        "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller contract.\n    unsafe { *p }\n}\n",
    );
    // Trailing placement works too.
    assert_clean(
        P,
        "fn f(p: *const u8) -> u8 {\n    unsafe { *p } // SAFETY: caller contract.\n}\n",
    );
}

#[test]
fn unsafe_justification_applies_inside_tests() {
    // Unlike the panic/ordering lints, unsafe needs a SAFETY argument
    // even in test code.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        unsafe { core::ptr::null::<u8>().read() };\n    }\n}\n";
    assert_fires(P, src, "unsafe-justification", 5);
}

#[test]
fn unsafe_fn_decl_accepts_safety_rustdoc() {
    // `# Safety` rustdoc covers the declaration…
    assert_clean(P, "/// Does things.\n///\n/// # Safety\n///\n/// Caller must own `p`.\npub unsafe fn f(p: *mut u8) {\n    let _ = p;\n}\n");
    // …but not an unsafe *block*.
    assert_fires(
        P,
        "/// # Safety\n/// Caller beware.\nfn g(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        "unsafe-justification",
        4,
    );
}

#[test]
fn unsafe_justification_suppressible() {
    assert_suppressed(P, "fn f(p: *const u8) -> u8 {\n    // lint:allow(unsafe-justification): demo fixture.\n    unsafe { *p }\n}\n");
}

#[test]
fn comment_must_be_adjacent() {
    // A code line between the comment and the site breaks adjacency.
    let src = "fn f(p: *const u8) -> u8 {\n    // SAFETY: too far away.\n    let q = p;\n    unsafe { *q }\n}\n";
    assert_fires(P, src, "unsafe-justification", 4);
}

// -- atomic-ordering --------------------------------------------------------

#[test]
fn atomic_ordering_fires() {
    assert_fires(
        P,
        "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    c.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
        "atomic-ordering",
        2,
    );
}

#[test]
fn atomic_ordering_accepts_note_and_skips_tests() {
    assert_clean(
        P,
        "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    // ORDERING: stat counter.\n    c.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    );
    assert_clean(
        P,
        "#[cfg(test)]\nmod tests {\n    fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n        c.load(std::sync::atomic::Ordering::Relaxed)\n    }\n}\n",
    );
    // Non-Relaxed orderings need no note: the lint targets the one
    // ordering that silently means "no ordering at all".
    assert_clean(
        P,
        "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    c.load(std::sync::atomic::Ordering::Acquire)\n}\n",
    );
}

#[test]
fn atomic_ordering_suppressible() {
    assert_suppressed(
        P,
        "fn f(c: &std::sync::atomic::AtomicU64) -> u64 {\n    // lint:allow(atomic-ordering): demo fixture.\n    c.load(std::sync::atomic::Ordering::Relaxed)\n}\n",
    );
}

// -- panic-path -------------------------------------------------------------

#[test]
fn panic_path_fires_on_unwrap_expect_panic() {
    assert_fires(
        P,
        "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
        "panic-path",
        2,
    );
    assert_fires(
        P,
        "fn f(x: Option<u8>) -> u8 {\n    x.expect(\"present\")\n}\n",
        "panic-path",
        2,
    );
    assert_fires(P, "fn f() {\n    panic!(\"boom\");\n}\n", "panic-path", 2);
}

#[test]
fn panic_path_accepts_invariant_and_skips_tests() {
    assert_clean(P, "fn f(x: Option<u8>) -> u8 {\n    // INVARIANT: caller checked is_some.\n    x.unwrap()\n}\n");
    assert_clean(P, "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        None::<u8>.unwrap();\n    }\n}\n");
    // `unwrap_or` / `unwrap_or_else` never panic; the lint must not
    // pattern-match them as `unwrap`.
    assert_clean(P, "fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0)\n}\n");
}

#[test]
fn panic_path_suppressible() {
    assert_suppressed(P, "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic-path): demo fixture.\n    x.unwrap()\n}\n");
}

// -- reclamation-discipline -------------------------------------------------

const LEAP: &str = "crates/leaplist/src/demo.rs";
const RECLAIM_SRC: &str = "fn f(g: &Guard, n: *mut Node) {\n    // SAFETY: demo fixture.\n    unsafe { g.defer_drop_box(n) };\n}\n";

#[test]
fn reclamation_fires_in_scope_only() {
    // In leaplist (outside bundle.rs) the SAFETY comment is not enough:
    // direct deferral is an error there regardless.
    let rep = run(LEAP, RECLAIM_SRC);
    assert_eq!(lints_fired(&rep), vec!["reclamation-discipline"]);
    // The same code outside the leaplist/ebr scope is fine.
    assert_clean(P, RECLAIM_SRC);
    // bundle.rs owns the two-stage path; it is allowed.
    assert_clean("crates/leaplist/src/bundle.rs", RECLAIM_SRC);
}

#[test]
fn reclamation_suppressible_with_reason() {
    let src = "fn f(g: &Guard, n: *mut Node) {\n    // SAFETY: demo fixture.\n    // lint:allow(reclamation-discipline): no snapshot pins in this variant.\n    unsafe { g.defer_drop_box(n) };\n}\n";
    assert_suppressed(LEAP, src);
}

// -- suppression grammar ----------------------------------------------------

#[test]
fn bad_suppression_is_itself_a_finding() {
    // Unknown lint name.
    let rep = run(P, "// lint:allow(no-such-lint): whatever.\nfn f() {}\n");
    assert_eq!(lints_fired(&rep), vec!["bad-suppression"]);
    // Missing reason.
    let rep = run(
        P,
        "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic-path)\n    x.unwrap()\n}\n",
    );
    assert!(
        lints_fired(&rep).contains(&"bad-suppression"),
        "{:?}",
        rep.findings
    );
}

// -- registry-drift ---------------------------------------------------------

fn drift(files: &[(&str, &str)], ci: &str, readme: &str) -> Vec<&'static str> {
    let files: Vec<SourceFile> = files
        .iter()
        .map(|(p, s)| SourceFile {
            path: p.to_string(),
            lex: lex(s),
        })
        .collect();
    let docs = RegistryDocs {
        ci_yml: Some(ci.to_string()),
        readme: Some(readme.to_string()),
    };
    registry_drift(&files, &docs)
        .iter()
        .map(|f| f.lint)
        .collect()
}

#[test]
fn registry_drift_catches_undocumented_metric() {
    let src = r#"fn name() -> &'static str { "store_op_frob_ns" }"#;
    // Documented (brace-group expansion): clean.
    assert_eq!(
        drift(&[(P, src)], "", "metrics: `store_op_{get,frob}_ns` series"),
        Vec::<&str>::new()
    );
    // Absent from the README: drift.
    assert_eq!(
        drift(&[(P, src)], "", "metrics: `store_op_get_ns` only"),
        vec!["registry-drift"]
    );
}

#[test]
fn registry_drift_catches_stale_ci_require() {
    let ci = "run: cargo run -- collect --require store_op_get_ns\n";
    let src = r#"fn k() -> &'static str { "store_op_get_ns" }"#;
    let readme = "`store_op_get_ns`";
    assert_eq!(drift(&[(P, src)], ci, readme), Vec::<&str>::new());
    // The key vanished from source (renamed): the --require list is stale.
    let renamed = r#"fn k() -> &'static str { "store_op_fetch_ns" }"#;
    assert_eq!(
        drift(&[(P, renamed)], ci, "`store_op_fetch_ns`"),
        vec!["registry-drift"]
    );
}
