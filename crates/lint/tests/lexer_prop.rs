//! Property tests for the lint lexer: whatever the source shape, tokens
//! and comments must land where the adjacency engine expects them — a
//! misclassified `unsafe` inside a string would seed false findings, a
//! missed one inside real code would hide real ones.
//!
//! The vendored proptest shim has no regex string strategies, so strings
//! are built from integer strategies mapped through small alphabets.

use leap_lint::lexer::{lex, TokKind};
use proptest::prelude::*;

/// Fuzz alphabet biased toward lexer state machinery: quotes, comment
/// openers/closers, escapes, raw-string hashes, newlines.
const FUZZ: &[char] = &[
    'a', 'b', 'z', '_', '0', '9', ' ', '\n', '"', '\'', '/', '*', '#', 'r', 'b', '\\', '{', '}',
    '(', ')', ';', ':', '.', '!', '=', '<', '>',
];

fn fuzz_src() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..200).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| FUZZ[b as usize % FUZZ.len()])
            .collect()
    })
}

/// A lowercase identifier, `len` in 1..=8.
fn word() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..26, 1..8)
        .prop_map(|v| v.into_iter().map(|b| (b'a' + b) as char).collect())
}

/// The lexer's idea of "the word appears as code" — an `Ident` token with
/// exactly that text.
fn has_ident(src: &str, word: &str) -> bool {
    lex(src)
        .tokens
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == word)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Never panics, whatever characters arrive (unterminated strings,
    /// stray quotes, half a block comment — broken trees must still scan).
    #[test]
    fn lex_total(src in fuzz_src()) {
        let _ = lex(&src);
    }

    /// Line numbers are 1-based, within the file, and nondecreasing in
    /// source order for tokens and comments alike (the adjacency engine
    /// reasons line-by-line).
    #[test]
    fn lines_monotone(src in fuzz_src()) {
        let f = lex(&src);
        // `\n`-count + 1, not `lines()`: an unterminated block comment
        // swallowing a trailing newline legitimately ends on the EOF line.
        let total = src.matches('\n').count() as u32 + 1;
        let mut prev = 1;
        for t in &f.tokens {
            prop_assert!(t.line >= prev && t.line <= total);
            prev = t.line;
        }
        let mut prev = 1;
        for c in &f.comments {
            prop_assert!(c.line >= prev && c.line <= c.end_line && c.end_line <= total);
            prev = c.line;
        }
    }

    /// `unsafe` inside any string literal flavor is data, not code, and
    /// raw strings only close on a quote with matching hashes — the inner
    /// `"` and `//` stay inside the literal.
    #[test]
    fn unsafe_in_strings_is_data(hashes in 1usize..4, pad in word()) {
        let h = "#".repeat(hashes);
        let src = format!(
            "let a = \"{pad} unsafe {pad}\";\nlet b = r{h}\"unsafe // \" inner quote\"{h};\nlet c = b\"unsafe\";"
        );
        let f = lex(&src);
        prop_assert!(!f.tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == "unsafe"));
        prop_assert!(f.comments.is_empty());
        prop_assert!(f.tokens.iter().filter(|t| t.kind == TokKind::Str).count() >= 3);
    }

    /// `unsafe` inside line or (arbitrarily nested) block comments is
    /// comment text, and code resumes correctly after the comment closes.
    #[test]
    fn unsafe_in_comments_is_text(depth in 1usize..5, tail in word()) {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("// unsafe here\n{open} unsafe {close} fn {tail}() {{}}");
        let f = lex(&src);
        prop_assert!(!has_ident(&src, "unsafe"));
        // The code after the nested comment still lexes.
        prop_assert!(f.tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == tail));
        prop_assert_eq!(f.comments.len(), 2);
    }

    /// A block comment one level deeper than its closers never closes; an
    /// exactly balanced one does.
    #[test]
    fn nesting_balance(depth in 1usize..5) {
        let src = |open: usize, close: usize| {
            format!("{} x {} after", "/*".repeat(open), "*/".repeat(close))
        };
        prop_assert!(!has_ident(&src(depth + 1, depth), "after")); // runs to EOF
        prop_assert!(has_ident(&src(depth, depth), "after"));
    }

    /// Char and byte literals holding `"`, `/` or an escaped `'` don't
    /// derail string or comment state; `'a` stays a lifetime, not an
    /// unterminated char literal.
    #[test]
    fn char_literals_and_lifetimes(name in word()) {
        let src = format!("let q: &'{name} u8 = f('\"', '/', b'\\'', \"s\");");
        let f = lex(&src);
        prop_assert!(f.comments.is_empty());
        let lifetimes: Vec<String> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        prop_assert_eq!(lifetimes, vec![name]);
        prop_assert_eq!(f.tokens.iter().filter(|t| t.kind == TokKind::Char).count(), 3);
        prop_assert_eq!(f.tokens.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    /// Trailing-comment detection: the same comment text is `trailing`
    /// exactly when a token precedes it on its line.
    #[test]
    fn trailing_flag(w in word()) {
        let f = lex(&format!("let x = 1; // ORDERING: {w}\n// ORDERING: {w}\nlet y = 2;"));
        prop_assert_eq!(f.comments.len(), 2);
        prop_assert!(f.comments[0].trailing);
        prop_assert!(!f.comments[1].trailing);
    }

    /// Numbers absorb suffixes and hex/underscore bodies but split on `..`
    /// so ranges stay three tokens.
    #[test]
    fn number_shapes(a in 0u64..1000, b in 0u64..1000) {
        let f = lex(&format!("for i in {a}..{b} {{}} let x = 0xFF_u64;"));
        let nums: Vec<String> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        prop_assert_eq!(nums, vec![a.to_string(), b.to_string(), "0xFF_u64".to_string()]);
    }

    /// Raw identifiers lex to their unprefixed text (`r#async` → `async`),
    /// and are not mistaken for raw strings.
    #[test]
    fn raw_identifiers(w in word()) {
        let f = lex(&format!("let r#{w} = 1;"));
        prop_assert!(f.tokens.iter().any(|t| t.kind == TokKind::Ident && t.text == w));
        prop_assert!(f.tokens.iter().all(|t| t.kind != TokKind::Str));
    }
}
