//! leap-lint CLI: walk the workspace, run the passes, report.
//!
//! ```text
//! leap-lint [--json] [--list] [--self-test] [--root DIR] [--lint NAME]... [PATH]...
//! ```
//!
//! With no PATH arguments the whole workspace is linted (everything under
//! the root except `target/`, `vendor/`, and `.git/`) including the
//! workspace-level `registry-drift` cross-check against
//! `.github/workflows/ci.yml` and `README.md`. With explicit PATHs only
//! those files/directories run (registry-drift is skipped unless requested
//! via `--lint registry-drift`, since its doc inputs live at the root).
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use leap_lint::lexer;
use leap_lint::lints::{self, Enabled, Finding, RegistryDocs, SourceFile};

struct Args {
    json: bool,
    list: bool,
    self_test: bool,
    root: Option<PathBuf>,
    lints: Vec<String>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        json: false,
        list: false,
        self_test: false,
        root: None,
        lints: Vec::new(),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => a.json = true,
            "--list" => a.list = true,
            "--self-test" => a.self_test = true,
            "--root" => a.root = Some(PathBuf::from(it.next().ok_or("--root needs a value")?)),
            "--lint" => {
                let v = it.next().ok_or("--lint needs a value")?;
                a.lints.extend(v.split(',').map(|s| s.trim().to_string()));
            }
            "--help" | "-h" => {
                println!(
                    "leap-lint [--json] [--list] [--self-test] [--root DIR] [--lint NAME]... [PATH]..."
                );
                std::process::exit(0);
            }
            p if !p.starts_with('-') => a.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(a)
}

/// Locate the workspace root: the nearest ancestor of `cwd` whose
/// `Cargo.toml` declares `[workspace]`.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect `.rs` files, skipping build output, the vendored
/// shims (offline stand-ins slated for deletion when crates.io returns),
/// and VCS metadata.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | ".git") {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit(findings: &[Finding], suppressed: usize, files: usize, json: bool) {
    if json {
        let mut s = String::from("{\"findings\":[");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.lint,
                json_escape(&f.message)
            ));
        }
        s.push_str(&format!(
            "],\"suppressed\":{suppressed},\"files\":{files},\"counts\":{{"
        ));
        let mut first = true;
        for (name, _) in lints::LINTS {
            let n = findings.iter().filter(|f| f.lint == *name).count();
            if n > 0 {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!("\"{name}\":{n}"));
            }
        }
        s.push_str("}}");
        println!("{s}");
        return;
    }
    for f in findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
    }
    if findings.is_empty() {
        println!("leap-lint: clean ({files} files, {suppressed} suppressed sites)");
    } else {
        let mut by: Vec<String> = Vec::new();
        for (name, _) in lints::LINTS {
            let n = findings.iter().filter(|f| f.lint == *name).count();
            if n > 0 {
                by.push(format!("{name}: {n}"));
            }
        }
        println!(
            "leap-lint: {} findings ({}), {} suppressed, {} files",
            findings.len(),
            by.join(", "),
            suppressed,
            files
        );
    }
}

/// Prove the pass can fail: every per-site lint must fire on a seeded
/// violation and stay silent once annotated. Run by CI next to the
/// shell-level seeded-file check (which additionally proves the *process*
/// exit code wiring).
fn self_test() -> Result<(), String> {
    let cases: &[(&str, &str, &str)] = &[
        (
            "unsafe-justification",
            "crates/x/src/a.rs",
            "fn f() { unsafe { g() } }",
        ),
        (
            "atomic-ordering",
            "crates/x/src/a.rs",
            "fn f(a: &AtomicU64) -> u64 { a.load(Ordering::Relaxed) }",
        ),
        (
            "panic-path",
            "crates/x/src/a.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }",
        ),
        (
            "reclamation-discipline",
            "crates/leaplist/src/node.rs",
            "fn f(p: *mut Node) { drop(unsafe { Box::from_raw(p) }); }",
        ),
    ];
    for (lint, path, src) in cases {
        let f = SourceFile {
            path: path.to_string(),
            lex: lexer::lex(src),
        };
        let rep = lints::lint_file(&f, &Enabled::all());
        if !rep.findings.iter().any(|f| f.lint == *lint) {
            return Err(format!(
                "self-test: `{lint}` did not fire on a seeded violation"
            ));
        }
        let allowed = format!("// lint:allow({lint}): self-test seeded allow\n{src}");
        let f = SourceFile {
            path: path.to_string(),
            lex: lexer::lex(&allowed),
        };
        let rep = lints::lint_file(&f, &Enabled::all());
        if rep.findings.iter().any(|f| f.lint == *lint) || rep.suppressed == 0 {
            return Err(format!(
                "self-test: `{lint}` ignored a well-formed lint:allow"
            ));
        }
    }
    let drift = lints::registry_drift(
        &[],
        &RegistryDocs {
            ci_yml: Some("collect --require ghost_key".into()),
            readme: Some(String::new()),
        },
    );
    if drift.is_empty() {
        return Err("self-test: registry-drift missed a ghost --require key".into());
    }
    println!(
        "leap-lint: self-test ok ({} lints verified)",
        cases.len() + 1
    );
    Ok(())
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.list {
        for (name, desc) in lints::LINTS {
            println!("{name}: {desc}");
        }
        return Ok(true);
    }
    if args.self_test {
        self_test()?;
        return Ok(true);
    }
    let enabled = if args.lints.is_empty() {
        Enabled::all()
    } else {
        Enabled::only(&args.lints)?
    };

    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root().ok_or("no workspace root found (run from the repo or pass --root)")?,
    };

    let mut paths = Vec::new();
    if args.paths.is_empty() {
        collect_rs(&root, &mut paths);
    } else {
        for p in &args.paths {
            if p.is_dir() {
                collect_rs(p, &mut paths);
            } else {
                paths.push(p.clone());
            }
        }
    }

    let mut files = Vec::new();
    for p in &paths {
        let src = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
        files.push(SourceFile {
            path: rel_path(&root, p),
            lex: lexer::lex(&src),
        });
    }

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in &files {
        let rep = lints::lint_file(f, &enabled);
        findings.extend(rep.findings);
        suppressed += rep.suppressed;
    }

    // registry-drift needs the root-level docs; in full-workspace mode it
    // always runs, with explicit PATHs only on request.
    let drift_requested = args.lints.iter().any(|l| l == "registry-drift");
    let drift_on = if args.paths.is_empty() {
        args.lints.is_empty() || drift_requested
    } else {
        drift_requested
    };
    if drift_on {
        let docs = RegistryDocs {
            ci_yml: std::fs::read_to_string(root.join(".github/workflows/ci.yml")).ok(),
            readme: std::fs::read_to_string(root.join("README.md")).ok(),
        };
        findings.extend(lints::registry_drift(&files, &docs));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    emit(&findings, suppressed, files.len(), args.json);
    Ok(findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("leap-lint: {e}");
            ExitCode::from(2)
        }
    }
}
