//! A comment/string/char-literal-aware Rust lexer.
//!
//! The environment has no crates.io, so leap-lint cannot lean on `syn` or
//! `proc-macro2`; instead this module hand-rolls the small token model the
//! lints need, in the style of `leap_bench::check::balanced_json_object`: a
//! character scanner that knows exactly which constructs can *hide* source
//! text (line comments, nested block comments, plain/raw/byte strings, char
//! literals) so that `unsafe` inside a string or a doc comment never counts
//! as an unsafe site, while `// SAFETY:` comments are captured — with their
//! line spans and whether they trail code — for the adjacency rules in
//! [`crate::lints`].
//!
//! The token model is deliberately coarse: identifiers, single-char
//! punctuation, and opaque literals. Every lint pattern the project enforces
//! (`unsafe`, `Ordering :: Relaxed`, `unwrap (`, `panic !`, match arms like
//! `EventKind :: X => "name"`) is expressible over that stream, and a coarse
//! model keeps the lexer small enough to exhaustively test (see
//! `tests/lexer_prop.rs`).

/// What a [`Token`] is. Coarse on purpose; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `r#async` → `async`).
    Ident,
    /// One punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// String literal of any flavor; `text` holds the *contents* (quotes,
    /// raw-string hashes, and `b`/`r` prefixes stripped, escapes NOT
    /// decoded).
    Str,
    /// Char or byte literal; `text` holds the contents between the quotes.
    Char,
    /// Numeric literal, suffix included, value uninterpreted.
    Num,
    /// Lifetime (`'a`, `'static`); `text` excludes the leading `'`.
    Lifetime,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text; see [`TokKind`] for what is stripped per kind.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its line span.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (== `line` for line comments).
    pub end_line: u32,
    /// True if a token precedes the comment on its starting line (a
    /// trailing comment annotates *that* line; a standalone comment
    /// annotates the code below it).
    pub trailing: bool,
}

/// A lexed file: the token stream plus every comment, both line-stamped.
#[derive(Debug, Default)]
pub struct LexFile {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

impl LexFile {
    /// True if any token starts on `line`.
    pub fn line_has_token(&self, line: u32) -> bool {
        // Tokens are in source order; a binary search would work, but files
        // are small and this is called on the cold (finding) path only.
        self.tokens.iter().any(|t| t.line == line)
    }
}

/// Lex `src` into tokens and comments. Never panics: unterminated constructs
/// (string, block comment) simply run to end-of-file, which is the most
/// useful behavior for a lint that must keep scanning a broken tree.
pub fn lex(src: &str) -> LexFile {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexFile,
    line_has_code: bool,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            out: LexFile::default(),
            line_has_code: false,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_code = false;
            }
        }
        c
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: u32) {
        self.line_has_code = true;
        self.out.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> LexFile {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let line = self.line;
                    let s = self.plain_string();
                    self.push_tok(TokKind::Str, s, line);
                }
                '\'' => self.char_or_lifetime(),
                'b' | 'r' if self.string_prefix() => {}
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_whitespace() => {
                    self.bump();
                }
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push_tok(TokKind::Punct, c.to_string(), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            end_line: line,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.line_has_code;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let end_line = self.line;
        self.out.comments.push(Comment {
            text,
            line,
            end_line,
            trailing,
        });
    }

    /// Consume a `"..."` string starting at the opening quote; returns the
    /// contents with escapes left verbatim.
    fn plain_string(&mut self) -> String {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(e) = self.bump() {
                    text.push(e);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        text
    }

    /// Consume a `r"..."` / `r#"..."#` / `b"..."` / `br##"..."##` literal if
    /// the cursor sits on one, or a raw identifier `r#ident`. Returns true
    /// if anything was consumed.
    fn string_prefix(&mut self) -> bool {
        let line = self.line;
        let c0 = self.peek(0).unwrap_or(' ');
        // Figure out the candidate shape without consuming.
        let mut idx = 1; // past the leading b/r
        let mut raw = c0 == 'r';
        if c0 == 'b' && self.peek(idx) == Some('r') {
            raw = true;
            idx += 1;
        }
        let mut hashes = 0usize;
        if raw {
            while self.peek(idx) == Some('#') {
                hashes += 1;
                idx += 1;
            }
        }
        match self.peek(idx) {
            Some('"') if raw => {
                // Raw (byte) string: consume prefix, then scan for `"` + hashes.
                for _ in 0..=idx {
                    self.bump();
                }
                let mut text = String::new();
                'scan: while let Some(c) = self.peek(0) {
                    if c == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if self.peek(1 + h) != Some('#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..=hashes {
                                self.bump();
                            }
                            break 'scan;
                        }
                    }
                    text.push(c);
                    self.bump();
                }
                self.push_tok(TokKind::Str, text, line);
                true
            }
            Some('"') if c0 == 'b' && idx == 1 => {
                // b"...": plain byte string.
                self.bump(); // the b
                let s = self.plain_string();
                self.push_tok(TokKind::Str, s, line);
                true
            }
            Some('\'') if c0 == 'b' && idx == 1 => {
                // b'x': byte char literal.
                self.bump(); // the b
                self.char_or_lifetime();
                true
            }
            _ if raw && hashes == 1 && self.peek(2).is_some_and(is_ident_char) && c0 == 'r' => {
                // r#ident raw identifier: token text is the bare ident, so
                // `r#unsafe` (hypothetically) still matches lint patterns.
                self.bump();
                self.bump();
                self.ident();
                true
            }
            _ => false, // plain identifier starting with b/r; let ident() run
        }
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Cursor is on the opening `'`. Distinguish a char literal from a
        // lifetime: `'\...'` and `'x'` are chars; `'ident` not followed by a
        // closing quote is a lifetime.
        if self.peek(1) == Some('\\') {
            // Escaped char literal: consume to the closing quote.
            self.bump(); // '
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(c);
                    self.bump();
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                } else if c == '\'' {
                    self.bump();
                    break;
                } else {
                    text.push(c);
                    self.bump();
                }
            }
            self.push_tok(TokKind::Char, text, line);
        } else if self.peek(2) == Some('\'') && self.peek(1).is_some_and(|c| c != '\'') {
            // 'x' — a one-char literal (covers '"', '/', etc.).
            self.bump();
            let c = self.bump().unwrap_or(' ');
            self.bump();
            self.push_tok(TokKind::Char, c.to_string(), line);
        } else {
            // Lifetime: 'ident (or a stray quote; emit what we can).
            self.bump();
            let mut text = String::new();
            while self.peek(0).is_some_and(is_ident_char) {
                // INVARIANT: peek(0) returned Some, so bump() must too.
                text.push(self.bump().unwrap());
            }
            self.push_tok(TokKind::Lifetime, text, line);
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_char) {
            // INVARIANT: peek(0) returned Some, so bump() must too.
            text.push(self.bump().unwrap());
        }
        self.push_tok(TokKind::Ident, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        // Digits, underscores, and letters cover decimal/hex/octal/binary
        // bodies and type suffixes (0xFFu64). A `.` joins only when followed
        // by a digit so `0..10` stays three tokens.
        while let Some(c) = self.peek(0) {
            let joins = c.is_ascii_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !joins {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push_tok(TokKind::Num, text, line);
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn unsafe_in_string_and_comment_is_invisible() {
        let src = r##"
            // this mentions unsafe code
            /* unsafe here too /* nested unsafe */ still comment */
            let s = "unsafe { }";
            let r = r#"unsafe"#;
            let c = '"'; let u = unsafe { 1 };
        "##;
        assert_eq!(idents(src).iter().filter(|t| *t == "unsafe").count(), 1);
    }

    #[test]
    fn char_literal_with_slashes_does_not_open_comment() {
        let f = lex("let a = '/'; let b = '/'; // real comment");
        assert_eq!(f.comments.len(), 1);
        assert!(f.comments[0].text.contains("real comment"));
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'static str { x }");
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            0
        );
        let lts: Vec<_> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lts, ["a", "a", "static"]);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let f = lex(r###"let s = r#"a " quote and // not a comment"#; // yes comment"###);
        assert_eq!(f.comments.len(), 1);
        let strs: Vec<_> = f.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("not a comment"));
    }

    #[test]
    fn trailing_flag_distinguishes_comment_position() {
        let f = lex("let x = 1; // trailing\n// standalone\nlet y = 2;");
        assert!(f.comments[0].trailing);
        assert!(!f.comments[1].trailing);
    }

    #[test]
    fn block_comment_line_span() {
        let f = lex("/* a\nb\nc */ let x = 1;");
        assert_eq!(f.comments[0].line, 1);
        assert_eq!(f.comments[0].end_line, 3);
        assert_eq!(f.tokens[0].line, 3);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let f = lex(r##"let a = b"unsafe"; let c = b'u'; let r = br#"unsafe"#;"##);
        assert_eq!(
            idents(r#"let a = b"unsafe"; let c = b'u';"#)
                .iter()
                .filter(|t| *t == "unsafe")
                .count(),
            0
        );
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            2
        );
    }

    #[test]
    fn raw_identifier_strips_prefix() {
        assert!(idents("let r#type = 1;").contains(&"type".to_string()));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        lex("let s = \"never closed");
        lex("/* never closed");
        lex("let s = r#\"never closed");
        lex("'");
    }
}
