//! The five project lints, the annotation grammar, and the suppression
//! mechanism.
//!
//! # Annotation grammar
//!
//! A site is *annotated* when the required marker appears in a comment
//! adjacent to it:
//!
//! * a comment on the **same line** as the site (trailing or not), or
//! * the **contiguous block of comment-only lines directly above** it
//!   (single-line attributes like `#[inline]` may sit between that block and
//!   the site; a blank line or a code line breaks contiguity).
//!
//! Markers are prefixes inside the comment text: `SAFETY:`, `ORDERING:`,
//! `INVARIANT:`. The suppression escape hatch uses the same adjacency:
//! `// lint:allow(<lint-name>): <non-empty reason>`. A malformed or
//! unknown-name suppression is itself a finding (`bad-suppression`) and
//! suppresses nothing, so a typo cannot silently disable a lint.
//!
//! # Scope rules
//!
//! `unsafe-justification` applies everywhere (tests included — an unsound
//! test can corrupt the process running every other test). `atomic-ordering`
//! and `panic-path` skip `#[cfg(test)]` / `#[test]` regions and test/bench/
//! example paths: publication hazards there are exercised through the very
//! primitives linted in `src`, and a panic in a test IS the failure report.
//! `reclamation-discipline` applies only to `crates/leaplist` and
//! `crates/ebr`, where the PR 9 lesson lives. `registry-drift` is
//! workspace-level (it cross-checks source against `ci.yml` and `README.md`)
//! and has no per-site suppression.

use crate::lexer::{LexFile, TokKind, Token};

/// Lint names with one-line descriptions, in the order reports use.
pub const LINTS: &[(&str, &str)] = &[
    (
        "unsafe-justification",
        "every `unsafe` block/fn/impl needs an adjacent `// SAFETY:` argument",
    ),
    (
        "atomic-ordering",
        "every `Ordering::Relaxed` in non-test code needs an adjacent `// ORDERING:` note naming why relaxed suffices (or the acquire/release pairing it sidesteps)",
    ),
    (
        "panic-path",
        "`unwrap()`/`expect()`/`panic!` in non-test, non-bench code needs an adjacent `// INVARIANT:` justification",
    ),
    (
        "reclamation-discipline",
        "in leaplist/ebr, `defer_drop*`/`from_raw` outside the Limbo/prune_bound path frees nodes a pinned bundle walk can still reach (PR 9)",
    ),
    (
        "registry-drift",
        "metric/event/fault-point names in source must match the CI --require list and the README registry docs",
    ),
    (
        "bad-suppression",
        "malformed or unknown-name `lint:allow` comments (cannot be suppressed)",
    ),
];

/// True if `name` is a real lint (valid in `lint:allow(<name>)`).
pub fn is_lint(name: &str) -> bool {
    LINTS
        .iter()
        .any(|(n, _)| *n == name && *n != "bad-suppression")
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint name from [`LINTS`].
    pub lint: &'static str,
    /// Human message.
    pub message: String,
}

/// A lexed source file plus its workspace-relative path.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (used by path-scoped
    /// rules, so callers must normalize).
    pub path: String,
    /// Lexed contents.
    pub lex: LexFile,
}

/// Which lints to run.
pub struct Enabled(Vec<&'static str>);

impl Enabled {
    /// Enable every lint.
    pub fn all() -> Self {
        Enabled(LINTS.iter().map(|(n, _)| *n).collect())
    }

    /// Enable only `names`; returns Err on an unknown name.
    pub fn only(names: &[String]) -> Result<Self, String> {
        let mut out = Vec::new();
        for n in names {
            match LINTS.iter().find(|(l, _)| l == n) {
                Some((l, _)) => out.push(*l),
                None => return Err(format!("unknown lint `{n}`")),
            }
        }
        Ok(Enabled(out))
    }

    fn has(&self, name: &str) -> bool {
        self.0.contains(&name)
    }
}

/// Result of linting one file.
#[derive(Default)]
pub struct FileReport {
    /// Unsuppressed findings.
    pub findings: Vec<Finding>,
    /// Count of sites silenced by a well-formed `lint:allow`.
    pub suppressed: usize,
}

// ---------------------------------------------------------------------------
// Adjacency / annotation engine
// ---------------------------------------------------------------------------

/// True for doc comments: they are rendered documentation, not annotations,
/// so markers and suppressions inside them are inert (a rustdoc paragraph
/// *describing* `lint:allow` must not suppress anything).
fn is_doc(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// The comment texts adjacent to `line` under the annotation grammar:
/// comments on the line itself plus the contiguous comment-only block above
/// (skipping single-line attribute lines). Doc comments keep the block
/// contiguous but contribute no text.
fn adjacent_comments(lex: &LexFile, line: u32) -> Vec<&str> {
    let mut out: Vec<&str> = Vec::new();
    for c in &lex.comments {
        if c.line <= line && line <= c.end_line && !is_doc(&c.text) {
            out.push(&c.text);
        }
    }
    let mut l = line.saturating_sub(1);
    'up: while l > 0 {
        // A standalone comment whose span ends on `l` continues the block.
        for c in &lex.comments {
            if c.end_line == l && !c.trailing && !lex.line_has_token(l) {
                if !is_doc(&c.text) {
                    out.push(&c.text);
                }
                l = c.line.saturating_sub(1);
                continue 'up;
            }
        }
        // An attribute line (`#[...]` and nothing else meaningful) is
        // transparent: `// SAFETY:` may sit above `#[inline] unsafe fn`.
        let first = lex.tokens.iter().find(|t| t.line == l);
        match first {
            Some(t) if t.kind == TokKind::Punct && t.text == "#" => {
                l -= 1;
            }
            _ => break,
        }
    }
    out
}

fn has_marker(lex: &LexFile, line: u32, marker: &str) -> bool {
    adjacent_comments(lex, line)
        .iter()
        .any(|c| c.contains(marker))
}

/// True if the doc block adjacent to `line` carries a `# Safety` section.
/// Only `unsafe fn` *declarations* may use this form: the rustdoc section is
/// the ecosystem convention (clippy's `missing_safety_doc`) for stating the
/// contract callers must uphold, while blocks/impls justify *themselves*
/// with `// SAFETY:`.
fn has_safety_doc(lex: &LexFile, line: u32) -> bool {
    // Same walk as `adjacent_comments`, but collecting doc text.
    for c in &lex.comments {
        if c.line <= line && line <= c.end_line && is_doc(&c.text) && c.text.contains("# Safety") {
            return true;
        }
    }
    let mut l = line.saturating_sub(1);
    'up: while l > 0 {
        for c in &lex.comments {
            if c.end_line == l && !c.trailing && !lex.line_has_token(l) {
                if is_doc(&c.text) && c.text.contains("# Safety") {
                    return true;
                }
                l = c.line.saturating_sub(1);
                continue 'up;
            }
        }
        let first = lex.tokens.iter().find(|t| t.line == l);
        match first {
            Some(t) if t.kind == TokKind::Punct && t.text == "#" => l -= 1,
            _ => break,
        }
    }
    false
}

/// Parse every `lint:allow(...)` occurrence in a comment. `Ok((name,
/// reason))` for well-formed ones, `Err(why)` for malformed ones.
fn parse_allows(text: &str) -> Vec<Result<(String, String), String>> {
    let mut out = Vec::new();
    if is_doc(text) {
        return out;
    }
    let mut rest = text;
    // Only the marker followed by an open paren is a suppression attempt;
    // bare prose mentions of lint:allow stay inert.
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow".len()..];
        let Some(stripped) = rest.strip_prefix('(') else {
            out.push(Err("expected `(` after `lint:allow`".to_string()));
            continue;
        };
        let Some(close) = stripped.find(')') else {
            out.push(Err("unclosed `lint:allow(`".to_string()));
            break;
        };
        let name = stripped[..close].trim().to_string();
        let after = &stripped[close + 1..];
        let Some(reason_part) = after.trim_start().strip_prefix(':') else {
            out.push(Err(format!(
                "`lint:allow({name})` needs `: <reason>` — suppressions must say why"
            )));
            rest = after;
            continue;
        };
        let reason = reason_part
            .split("lint:allow")
            .next()
            .unwrap_or("")
            .trim()
            .to_string();
        if !is_lint(&name) {
            out.push(Err(format!("`lint:allow({name})`: unknown lint name")));
        } else if reason.is_empty() {
            out.push(Err(format!(
                "`lint:allow({name})` has an empty reason — suppressions must say why"
            )));
        } else {
            out.push(Ok((name, reason)));
        }
        rest = after;
    }
    out
}

/// True if a well-formed `lint:allow(lint)` is adjacent to `line`.
fn allowed(lex: &LexFile, line: u32, lint: &str) -> bool {
    adjacent_comments(lex, line).iter().any(|c| {
        parse_allows(c)
            .into_iter()
            .any(|a| matches!(a, Ok((n, _)) if n == lint))
    })
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Token-index ranges covered by `#[cfg(test)]` modules, `#[test]`/`#[bench]`
/// functions, or an inner `#![cfg(test)]`. Conservative: an attribute whose
/// tokens include `test`/`bench` *not* under a `not(...)` marks the next
/// braced item.
fn test_regions(lex: &LexFile) -> Vec<(usize, usize)> {
    let t = &lex.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if !is_punct(t, i, "#") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = is_punct(t, j, "!");
        if inner {
            j += 1;
        }
        if !is_punct(t, j, "[") {
            i += 1;
            continue;
        }
        // Collect the attribute's tokens to the matching `]`.
        let mut depth = 0usize;
        let start = j;
        let mut end = None;
        for (k, tok) in t.iter().enumerate().skip(start) {
            if tok.kind == TokKind::Punct {
                match tok.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(k);
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        let Some(end) = end else { break };
        let attr = &t[start + 1..end];
        if attr_is_test(attr) {
            if inner {
                // `#![cfg(test)]`: the whole file is test code.
                out.push((0, t.len()));
            } else if let Some(region) = braced_item_after(t, end + 1) {
                out.push(region);
            }
        }
        i = end + 1;
    }
    out
}

fn attr_is_test(attr: &[Token]) -> bool {
    let mut has_test = false;
    for (k, tok) in attr.iter().enumerate() {
        if tok.kind != TokKind::Ident {
            continue;
        }
        match tok.text.as_str() {
            "test" | "bench" => {
                // `not ( test` means the attribute *excludes* test builds.
                let negated = k >= 2
                    && attr[k - 2].kind == TokKind::Ident
                    && attr[k - 2].text == "not"
                    && attr[k - 1].kind == TokKind::Punct
                    && attr[k - 1].text == "(";
                if !negated {
                    has_test = true;
                }
            }
            _ => {}
        }
    }
    has_test
}

/// Find the braced body of the item starting at token `from` (skipping any
/// further attributes): the token range `(open_brace, close_brace)`.
/// Returns None for brace-less items (`mod tests;`).
fn braced_item_after(t: &[Token], mut from: usize) -> Option<(usize, usize)> {
    // Skip stacked attributes.
    while is_punct(t, from, "#") && is_punct(t, from + 1, "[") {
        let mut depth = 0usize;
        let mut k = from + 1;
        loop {
            let tok = t.get(k)?;
            if tok.kind == TokKind::Punct {
                match tok.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            k += 1;
        }
        from = k + 1;
    }
    // First `{` before a top-level `;` opens the body.
    let mut k = from;
    loop {
        let tok = t.get(k)?;
        if tok.kind == TokKind::Punct {
            match tok.text.as_str() {
                ";" => return None,
                "{" => break,
                _ => {}
            }
        }
        k += 1;
    }
    let open = k;
    let mut depth = 0usize;
    for (k, tok) in t.iter().enumerate().skip(open) {
        if tok.kind == TokKind::Punct {
            match tok.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, k));
                    }
                }
                _ => {}
            }
        }
    }
    Some((open, t.len()))
}

fn is_punct(t: &[Token], i: usize, s: &str) -> bool {
    t.get(i)
        .is_some_and(|tok| tok.kind == TokKind::Punct && tok.text == s)
}

fn is_ident(t: &[Token], i: usize, s: &str) -> bool {
    t.get(i)
        .is_some_and(|tok| tok.kind == TokKind::Ident && tok.text == s)
}

// ---------------------------------------------------------------------------
// Per-file lints
// ---------------------------------------------------------------------------

/// Paths whose panics/orderings are exempt: test suites, benches, examples,
/// and the bench harness crate (the issue of record scopes `panic-path` to
/// "non-test, non-bench code").
fn exempt_path(path: &str) -> bool {
    path.contains("/tests/")
        || path.starts_with("tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.starts_with("examples/")
        || path.starts_with("crates/bench/")
}

/// Files allowed to reclaim leaplist/ebr nodes directly: `bundle.rs` owns the
/// `Limbo`/`prune_bound` two-stage path; `guard.rs` IS the EBR deferral
/// machinery those stages hand nodes to.
fn reclamation_allowed(path: &str) -> bool {
    path == "crates/leaplist/src/bundle.rs" || path == "crates/ebr/src/guard.rs"
}

fn reclamation_scoped(path: &str) -> bool {
    path.starts_with("crates/leaplist/src/") || path.starts_with("crates/ebr/src/")
}

/// Run the per-site lints over one file.
pub fn lint_file(file: &SourceFile, enabled: &Enabled) -> FileReport {
    let mut rep = FileReport::default();
    let lex = &file.lex;
    let t = &lex.tokens;
    let regions = test_regions(lex);
    let in_test = |i: usize| regions.iter().any(|&(a, b)| a <= i && i <= b);
    let path_exempt = exempt_path(&file.path);

    // Every lint:allow comment is validated once, globally: a typo'd
    // suppression is a finding wherever it appears.
    for c in &lex.comments {
        for a in parse_allows(&c.text) {
            if let Err(why) = a {
                rep.findings.push(Finding {
                    file: file.path.clone(),
                    line: c.line,
                    lint: "bad-suppression",
                    message: why,
                });
            }
        }
    }

    let site =
        |rep: &mut FileReport, i: usize, lint: &'static str, marker: Option<&str>, msg: String| {
            let line = t[i].line;
            if let Some(m) = marker {
                if has_marker(lex, line, m) {
                    return;
                }
            }
            if allowed(lex, line, lint) {
                rep.suppressed += 1;
            } else {
                rep.findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    lint,
                    message: msg,
                });
            }
        };

    for i in 0..t.len() {
        // unsafe-justification: every `unsafe` keyword, everywhere. An
        // `unsafe fn` declaration may instead document its contract with a
        // rustdoc `# Safety` section (the callers then justify each call).
        if enabled.has("unsafe-justification") && is_ident(t, i, "unsafe") {
            let is_fn_decl = is_ident(t, i + 1, "fn")
                || (is_ident(t, i + 1, "extern") && is_ident(t, i + 3, "fn"));
            if !(is_fn_decl && has_safety_doc(lex, t[i].line)) {
                site(
                    &mut rep,
                    i,
                    "unsafe-justification",
                    Some("SAFETY:"),
                    "`unsafe` without an adjacent `// SAFETY:` argument".to_string(),
                );
            }
        }

        // atomic-ordering: `Ordering::Relaxed` outside tests.
        if enabled.has("atomic-ordering")
            && !path_exempt
            && is_ident(t, i, "Ordering")
            && is_punct(t, i + 1, ":")
            && is_punct(t, i + 2, ":")
            && is_ident(t, i + 3, "Relaxed")
            && !in_test(i)
        {
            site(
                &mut rep,
                i + 3,
                "atomic-ordering",
                Some("ORDERING:"),
                "`Ordering::Relaxed` without an adjacent `// ORDERING:` note (name the \
                 acquire/release pairing it rides on, or why no publication depends on it)"
                    .to_string(),
            );
        }

        // panic-path: unwrap()/expect()/panic! outside tests and benches.
        if enabled.has("panic-path") && !path_exempt && !in_test(i) {
            let hit = (is_ident(t, i, "unwrap") || is_ident(t, i, "expect"))
                && is_punct(t, i + 1, "(")
                // `.unwrap(` / `.expect(` only: a local `fn expect(` would be
                // a definition, not a panic site.
                && i > 0
                && is_punct(t, i - 1, ".");
            let hit = hit || (is_ident(t, i, "panic") && is_punct(t, i + 1, "!"));
            if hit {
                site(
                    &mut rep,
                    i,
                    "panic-path",
                    Some("INVARIANT:"),
                    format!(
                        "`{}` on a non-test path without an adjacent `// INVARIANT:` \
                         justification",
                        &t[i].text
                    ),
                );
            }
        }

        // reclamation-discipline: leaplist/ebr only, outside the Limbo path.
        if enabled.has("reclamation-discipline")
            && reclamation_scoped(&file.path)
            && !reclamation_allowed(&file.path)
            && !in_test(i)
        {
            let direct = (is_ident(t, i, "defer_drop") || is_ident(t, i, "defer_drop_box"))
                && is_punct(t, i + 1, "(");
            let direct = direct || (is_ident(t, i, "from_raw") && is_punct(t, i + 1, "("));
            if direct {
                site(
                    &mut rep,
                    i,
                    "reclamation-discipline",
                    None,
                    format!(
                        "direct `{}` outside the Limbo/prune_bound path: plain EBR frees \
                         nodes a pinned bundle walk can still reach back in time (the PR 9 \
                         SIGSEGV); park retirements in `Limbo` with their retire \
                         write-version, or prove no snapshot reader can reach this \
                         allocation",
                        &t[i].text
                    ),
                );
            }
        }
    }
    rep
}

// ---------------------------------------------------------------------------
// registry-drift (workspace-level)
// ---------------------------------------------------------------------------

/// Inputs for [`registry_drift`] that live outside the Rust source tree.
pub struct RegistryDocs {
    /// Contents of `.github/workflows/ci.yml`.
    pub ci_yml: Option<String>,
    /// Contents of `README.md`.
    pub readme: Option<String>,
}

/// Cross-check instrument names between source, CI's `--require` schema
/// gate, and the README registry docs.
///
/// * every `--require KEY` in ci.yml must appear inside a string literal in
///   non-test source (a renamed stats key would otherwise pass CI's shell
///   but fail the schema gate only at runtime — or worse, the gate's
///   `--require` list silently goes stale);
/// * every `EventKind` name, fault-point name, and metric series name
///   (`store_op_*_ns` / `table_op_*_ns` / `stm_txn_retries` /
///   `store_events`) in source must appear in README.md (brace groups like
///   `table_op_{a,b}_ns` are expanded before matching).
pub fn registry_drift(files: &[SourceFile], docs: &RegistryDocs) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Corpus of string literals in non-test source, and the doc-facing name
    // sets, gathered in one pass.
    let mut literals: Vec<String> = Vec::new();
    let mut named: Vec<(String, String, u32, &'static str)> = Vec::new(); // (name, file, line, what)
    for f in files {
        if exempt_path(&f.path) {
            continue;
        }
        let t = &f.lex.tokens;
        let regions = test_regions(&f.lex);
        let in_test = |i: usize| regions.iter().any(|&(a, b)| a <= i && i <= b);
        for i in 0..t.len() {
            if t[i].kind == TokKind::Str && !in_test(i) {
                literals.push(t[i].text.clone());
                let s = &t[i].text;
                let plain = s
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
                let metric = plain
                    && ((s.starts_with("store_op_") || s.starts_with("table_op_"))
                        && s.ends_with("_ns")
                        || s == "stm_txn_retries"
                        || s == "store_events");
                if metric {
                    named.push((s.clone(), f.path.clone(), t[i].line, "metric series"));
                }
            }
            // `EventKind::Variant { .. } => "name"` / `FaultPoint::Variant => "name"`
            // arms in the crates that own those registries.
            let owner = if f.path == "crates/obs/src/events.rs" && is_ident(t, i, "EventKind") {
                Some("event kind")
            } else if f.path == "crates/fault/src/lib.rs" && is_ident(t, i, "FaultPoint") {
                Some("fault point")
            } else {
                None
            };
            if let Some(what) = owner {
                if is_punct(t, i + 1, ":") && is_punct(t, i + 2, ":") {
                    // Look for `=> "literal"` within a short window (covers
                    // the `{ .. }` wildcard pattern in name() arms while
                    // skipping the long destructuring arms of to_json()).
                    for k in i + 3..(i + 10).min(t.len().saturating_sub(1)) {
                        if is_punct(t, k, "=")
                            && is_punct(t, k + 1, ">")
                            && t.get(k + 2).is_some_and(|tok| tok.kind == TokKind::Str)
                        {
                            named.push((
                                t[k + 2].text.clone(),
                                f.path.clone(),
                                t[k + 2].line,
                                what,
                            ));
                            break;
                        }
                    }
                }
            }
        }
    }

    // (a) CI --require keys must exist in source literals.
    if let Some(ci) = &docs.ci_yml {
        for (lineno, line) in ci.lines().enumerate() {
            let words: Vec<&str> = line.split_whitespace().collect();
            for w in 0..words.len() {
                if words[w] == "--require" {
                    if let Some(key) = words.get(w + 1) {
                        let key = key.trim_end_matches('\\').trim();
                        if !key.is_empty() && !literals.iter().any(|l| l.contains(key)) {
                            findings.push(Finding {
                                file: ".github/workflows/ci.yml".to_string(),
                                line: (lineno + 1) as u32,
                                lint: "registry-drift",
                                message: format!(
                                    "CI requires stats key `{key}` but no non-test source \
                                     string literal mentions it — the schema gate would \
                                     fail at runtime or the gate list is stale"
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // (b) registry names must be documented in README.
    if let Some(readme) = &docs.readme {
        let corpus = expand_braces(readme);
        let mut seen = std::collections::BTreeSet::new();
        for (name, file, line, what) in named {
            if !seen.insert(name.clone()) {
                continue;
            }
            if !corpus.contains(&name) {
                findings.push(Finding {
                    file,
                    line,
                    lint: "registry-drift",
                    message: format!(
                        "{what} `{name}` is not documented in README.md — a renamed series \
                         silently escapes the schema/SLO gates and the scrape docs"
                    ),
                });
            }
        }
    }
    findings
}

/// Append one-level expansions of `prefix{a,b,c}suffix` word groups to the
/// text, so README idioms like `table_op_{insert,delete}_ns` match the
/// individual series names.
fn expand_braces(text: &str) -> String {
    let bytes: Vec<char> = text.chars().collect();
    let mut out = text.to_string();
    let word = |c: char| c.is_ascii_alphanumeric() || c == '_';
    for (i, &c) in bytes.iter().enumerate() {
        if c != '{' {
            continue;
        }
        let Some(close_rel) = bytes[i + 1..].iter().position(|&c| c == '}') else {
            continue;
        };
        let close = i + 1 + close_rel;
        let inner: String = bytes[i + 1..close].iter().collect();
        if !inner.contains(',') || !inner.chars().all(|c| word(c) || c == ',') {
            continue;
        }
        let mut p = i;
        while p > 0 && word(bytes[p - 1]) {
            p -= 1;
        }
        let mut s = close + 1;
        while s < bytes.len() && word(bytes[s]) {
            s += 1;
        }
        let prefix: String = bytes[p..i].iter().collect();
        let suffix: String = bytes[close + 1..s].iter().collect();
        for alt in inner.split(',') {
            out.push(' ');
            out.push_str(&prefix);
            out.push_str(alt);
            out.push_str(&suffix);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            lex: lex(src),
        }
    }

    fn run(path: &str, src: &str) -> FileReport {
        lint_file(&file(path, src), &Enabled::all())
    }

    #[test]
    fn unsafe_without_safety_fires() {
        let r = run("crates/x/src/a.rs", "fn f() { unsafe { g() } }");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].lint, "unsafe-justification");
    }

    #[test]
    fn safety_above_or_same_line_passes() {
        for src in [
            "// SAFETY: g has no preconditions\nfn f() { unsafe { g() } }",
            "fn f() { unsafe { g() } } // SAFETY: g has no preconditions",
            "// SAFETY: spans\n// two lines\nunsafe fn f() {}",
            "/* SAFETY: block form */\nunsafe fn f() {}",
            "// SAFETY: above an attribute\n#[inline]\nunsafe fn f() {}",
        ] {
            let r = run("crates/x/src/a.rs", src);
            assert!(r.findings.is_empty(), "{src}: {:?}", r.findings);
        }
    }

    #[test]
    fn blank_line_breaks_adjacency() {
        let r = run(
            "crates/x/src/a.rs",
            "// SAFETY: too far away\n\nunsafe fn f() {}",
        );
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn suppression_counts_and_silences() {
        let r = run(
            "crates/x/src/a.rs",
            "// lint:allow(unsafe-justification): exercised by miri in CI\nunsafe fn f() {}",
        );
        assert!(r.findings.is_empty());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn bad_suppressions_are_findings() {
        for src in [
            "// lint:allow(unsafe-justification)\nunsafe fn f() {}", // no reason
            "// lint:allow(unsafe-justification):   \nunsafe fn f() {}", // empty reason
            "// lint:allow(no-such-lint): whatever\nunsafe fn f() {}", // unknown
        ] {
            let r = run("crates/x/src/a.rs", src);
            assert!(
                r.findings.iter().any(|f| f.lint == "bad-suppression"),
                "{src}: {:?}",
                r.findings
            );
            assert!(
                r.findings.iter().any(|f| f.lint == "unsafe-justification"),
                "malformed allow must not suppress: {src}"
            );
        }
    }

    #[test]
    fn safety_doc_section_covers_unsafe_fn_decls_only() {
        // `# Safety` rustdoc on an `unsafe fn` declaration: ok.
        let decl = "/// Frees it.\n///\n/// # Safety\n///\n/// `p` must be unaliased.\npub unsafe fn free(p: *mut u8) {}";
        assert!(run("crates/x/src/a.rs", decl).findings.is_empty());
        // The same doc section does NOT cover an unsafe *block* or *impl*.
        let block = "/// # Safety\n/// docs\nfn f() { unsafe { g() } }";
        assert_eq!(run("crates/x/src/a.rs", block).findings.len(), 1);
        let imp = "/// # Safety\n/// docs\nunsafe impl Send for X {}";
        assert_eq!(run("crates/x/src/a.rs", imp).findings.len(), 1);
    }

    #[test]
    fn doc_comments_are_inert() {
        // A rustdoc line describing the grammar neither suppresses nor
        // malforms, and a doc-comment SAFETY does not count as annotation.
        let r = run(
            "crates/x/src/a.rs",
            "/// mentions lint:allow(unsafe-justification): in prose\n/// SAFETY: doc, not annotation\nunsafe fn f() {}",
        );
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].lint, "unsafe-justification");
        assert_eq!(r.suppressed, 0);
        // ...but doc lines keep a real annotation block contiguous.
        let ok = "// SAFETY: real argument\n/// rustdoc\nunsafe fn f() {}";
        assert!(run("crates/x/src/a.rs", ok).findings.is_empty());
    }

    #[test]
    fn relaxed_needs_ordering_note_outside_tests() {
        let fires = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }";
        let r = run("crates/x/src/a.rs", fires);
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].lint, "atomic-ordering");

        let ok = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed) /* ORDERING: counter, nothing published */; }";
        assert!(run("crates/x/src/a.rs", ok).findings.is_empty());

        let test_mod =
            "#[cfg(test)]\nmod tests { fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); } }";
        assert!(run("crates/x/src/a.rs", test_mod).findings.is_empty());

        let not_test =
            "#[cfg(not(test))]\nmod m { fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); } }";
        assert_eq!(run("crates/x/src/a.rs", not_test).findings.len(), 1);
    }

    #[test]
    fn panic_path_scope() {
        let fires = "fn f() { x.unwrap(); }";
        assert_eq!(run("crates/x/src/a.rs", fires).findings.len(), 1);
        // INVARIANT: annotation passes.
        let ok = "fn f() {\n    // INVARIANT: x was checked non-empty above\n    x.unwrap();\n}";
        assert!(run("crates/x/src/a.rs", ok).findings.is_empty());
        // Test paths, bench crate, examples: exempt.
        for path in [
            "crates/x/tests/a.rs",
            "crates/bench/src/driver.rs",
            "examples/demo.rs",
            "crates/x/benches/b.rs",
        ] {
            assert!(run(path, fires).findings.is_empty(), "{path}");
        }
        // #[test] fn region: exempt.
        let t = "#[test]\nfn t() { x.unwrap(); }";
        assert!(run("crates/x/src/a.rs", t).findings.is_empty());
        // unwrap_or / a local fn named expect: not panic sites.
        let near = "fn f() { x.unwrap_or(0); expect(1); }";
        assert!(run("crates/x/src/a.rs", near).findings.is_empty());
        // panic! is.
        let p = "fn f() { panic!(\"boom\"); }";
        assert_eq!(run("crates/x/src/a.rs", p).findings.len(), 1);
    }

    #[test]
    fn reclamation_scope() {
        let src = "fn f(g: &Guard, p: *mut Node) { unsafe { g.defer_drop_box(p) } }";
        // Outside leaplist/ebr: only the unsafe lint fires.
        let out = run("crates/store/src/a.rs", src);
        assert!(out
            .findings
            .iter()
            .all(|f| f.lint == "unsafe-justification"));
        // Inside leaplist, outside bundle.rs: reclamation fires.
        let inside = run("crates/leaplist/src/variants/tm.rs", src);
        assert!(inside
            .findings
            .iter()
            .any(|f| f.lint == "reclamation-discipline"));
        // bundle.rs (the Limbo path) and ebr's guard.rs are the sanctioned homes.
        assert!(!run("crates/leaplist/src/bundle.rs", src)
            .findings
            .iter()
            .any(|f| f.lint == "reclamation-discipline"));
        assert!(!run("crates/ebr/src/guard.rs", src)
            .findings
            .iter()
            .any(|f| f.lint == "reclamation-discipline"));
        // Box::from_raw also counts.
        let raw = "fn f(p: *mut Node) { drop(unsafe { Box::from_raw(p) }); }";
        assert!(run("crates/leaplist/src/node.rs", raw)
            .findings
            .iter()
            .any(|f| f.lint == "reclamation-discipline"));
    }

    #[test]
    fn registry_drift_require_keys() {
        let files = vec![file(
            "crates/store/src/stats.rs",
            r#"fn f() { emit("latency"); }"#,
        )];
        let docs = RegistryDocs {
            ci_yml: Some("run: collect --require latency --require gone_key".to_string()),
            readme: Some(String::new()),
        };
        let f = registry_drift(&files, &docs);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("gone_key"));
    }

    #[test]
    fn registry_drift_readme_names() {
        let files = vec![
            file(
                "crates/obs/src/events.rs",
                r#"impl EventKind { fn name(&self) -> &str { match self { EventKind::EpochFlip { .. } => "epoch_flip", EventKind::Shed { .. } => "shed" } } }"#,
            ),
            file(
                "crates/store/src/obs.rs",
                r#"const OPS: &[&str] = &["store_op_get_ns", "store_op_put_ns"];"#,
            ),
        ];
        let docs = RegistryDocs {
            ci_yml: None,
            readme: Some(
                "events: `epoch_flip`, `shed`; series `store_op_{get,put}_ns`".to_string(),
            ),
        };
        assert!(registry_drift(&files, &docs).is_empty());

        let stale = RegistryDocs {
            ci_yml: None,
            readme: Some("events: `epoch_flip`; series `store_op_get_ns`".to_string()),
        };
        let f = registry_drift(&files, &stale);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn brace_expansion() {
        let e = expand_braces("x table_op_{a,b}_ns y");
        assert!(e.contains("table_op_a_ns") && e.contains("table_op_b_ns"));
    }
}
