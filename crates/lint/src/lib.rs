//! leap-lint: workspace-aware static analysis for the Leap-List stack.
//!
//! The invariants this project's correctness rests on — SAFETY arguments on
//! unsafe publication/reclamation code, deliberate atomic orderings, the
//! panic audit, the metric/event/fault-point name registry, and the PR 9
//! lesson that plain EBR cannot reclaim what a pinned bundle walk can still
//! reach — used to live in comments and reviewer memory. This crate machine-
//! checks them. See [`lints::LINTS`] for the pass list and the README's
//! `## Static analysis` section for the annotation grammar and suppression
//! policy (`// lint:allow(<name>): reason`).
//!
//! Run it as `cargo run -p leap-lint` (add `--json` for machine-readable
//! output); CI runs the full pass plus a seeded-violation self-test.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod lints;
