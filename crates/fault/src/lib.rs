//! Deterministic fault injection for the Leap-List stack.
//!
//! A [`FaultPlan`] names a seed and, per [`FaultPoint`], a firing rate (in
//! parts per million of visits) and an optional budget (maximum number of
//! fires). An armed [`FaultInjector`] evaluates the plan with a seeded
//! [SplitMix64] hash over `(seed, point, visit#)`, so a given seed produces
//! the same fire/no-fire decision sequence at every point on every run —
//! chaos-suite failures reproduce from the seed alone.
//!
//! Injection is opt-in and costless when off: components hold an
//! `Option<Arc<FaultInjector>>` and the disabled path is a single `None`
//! branch; no global state, no clock reads, no allocation.
//!
//! # Injection points
//!
//! | name | fires inside |
//! |------|--------------|
//! | `stm_commit` | [`Txn::commit`] entry — the transaction aborts as a commit-time conflict |
//! | `stm_validate` | commit-time read validation — validation reports failure |
//! | `migration_chunk` | a migration chunk transaction — the chunk is dropped, the frontier stalls |
//! | `batcher_drain` | a flat-combining drain — the whole batch is shed with `Overloaded` |
//! | `rebalancer_tick` | a background rebalancer step — the step panics (recovery is caught) |
//!
//! (`Txn::commit` is `leap_stm::Txn::commit`; this crate only names the
//! points, the components owning each site decide what a fire means.)
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! # Example
//!
//! ```
//! use leap_fault::{FaultInjector, FaultPlan, FaultPoint};
//! let plan = FaultPlan::new(42)
//!     .with_rate(FaultPoint::StmCommit, 250_000) // 25 % of commits
//!     .with_budget(FaultPoint::StmCommit, 3);    // ...but at most 3 total
//! let inj = FaultInjector::new(plan);
//! let fired = (0..1000).filter(|_| inj.should_fire(FaultPoint::StmCommit)).count();
//! assert_eq!(fired, 3, "budget caps the schedule");
//! // Same seed, same visits => same decisions.
//! let again = FaultInjector::new(FaultPlan::new(42).with_rate(FaultPoint::StmCommit, 250_000));
//! let a: Vec<bool> = (0..64).map(|_| again.should_fire(FaultPoint::StmCommit)).collect();
//! let b = FaultInjector::new(FaultPlan::new(42).with_rate(FaultPoint::StmCommit, 250_000));
//! let c: Vec<bool> = (0..64).map(|_| b.should_fire(FaultPoint::StmCommit)).collect();
//! assert_eq!(a, c);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};

/// One fire decision per million visits at the maximum rate.
pub const RATE_SCALE: u64 = 1_000_000;

/// A named place in the stack where a fault may be injected. See the crate
/// docs for what a fire means at each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Entry of `Txn::commit`: forced commit-time conflict abort.
    StmCommit = 0,
    /// Commit-time read validation: forced validation failure.
    StmValidate = 1,
    /// One migration drain chunk: the chunk transaction is skipped.
    MigrationChunk = 2,
    /// One flat-combining batcher drain: the batch is shed.
    BatcherDrain = 3,
    /// One background rebalancer step: the step panics.
    RebalancerTick = 4,
}

/// Number of distinct injection points.
pub const POINTS: usize = 5;

impl FaultPoint {
    /// Every injection point, in tag order.
    pub const ALL: [FaultPoint; POINTS] = [
        FaultPoint::StmCommit,
        FaultPoint::StmValidate,
        FaultPoint::MigrationChunk,
        FaultPoint::BatcherDrain,
        FaultPoint::RebalancerTick,
    ];

    /// The point's stable snake_case name (used in docs, stats, and CI
    /// output).
    pub fn name(self) -> &'static str {
        match self {
            FaultPoint::StmCommit => "stm_commit",
            FaultPoint::StmValidate => "stm_validate",
            FaultPoint::MigrationChunk => "migration_chunk",
            FaultPoint::BatcherDrain => "batcher_drain",
            FaultPoint::RebalancerTick => "rebalancer_tick",
        }
    }
}

impl std::fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded, declarative fault schedule: per-point firing rates and budgets.
///
/// The plan is inert data; arm it with [`FaultInjector::new`]. Rates are in
/// visits per [`RATE_SCALE`] (`1_000_000` = fire on every visit); budgets
/// cap the total number of fires at a point (`u64::MAX` = unlimited).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rates: [u64; POINTS],
    budgets: [u64; POINTS],
}

impl FaultPlan {
    /// An empty plan (no point ever fires) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0; POINTS],
            budgets: [u64::MAX; POINTS],
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets `point`'s firing rate in parts per million of visits, clamped
    /// to [`RATE_SCALE`].
    pub fn with_rate(mut self, point: FaultPoint, rate_ppm: u64) -> Self {
        self.rates[point as usize] = rate_ppm.min(RATE_SCALE);
        self
    }

    /// Makes `point` fire on every visit (rate = [`RATE_SCALE`]).
    pub fn always(self, point: FaultPoint) -> Self {
        self.with_rate(point, RATE_SCALE)
    }

    /// Caps `point` at `max_fires` total fires.
    pub fn with_budget(mut self, point: FaultPoint, max_fires: u64) -> Self {
        self.budgets[point as usize] = max_fires;
        self
    }

    /// The configured rate for `point` (parts per million).
    pub fn rate(&self, point: FaultPoint) -> u64 {
        self.rates[point as usize]
    }

    /// The configured budget for `point` (`u64::MAX` = unlimited).
    pub fn budget(&self, point: FaultPoint) -> u64 {
        self.budgets[point as usize]
    }
}

/// SplitMix64: a tiny, high-quality 64-bit mixer. Deterministic and
/// dependency-free, which is the whole point here.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-point visit/fire counters for one armed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointStats {
    /// Times [`FaultInjector::should_fire`] was asked about the point.
    pub visits: u64,
    /// Times it answered "fire".
    pub fires: u64,
}

/// An armed [`FaultPlan`]: answers "should this visit fail?" with a
/// decision that is a pure function of `(seed, point, visit#)`.
///
/// Thread-safe; per-point visit numbering is a single relaxed
/// `fetch_add`. Under concurrency the *assignment* of visit numbers to
/// threads is scheduling-dependent, but the decision *sequence* per point
/// is fixed by the seed — the total number of fires in N visits is exact.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    visits: [AtomicU64; POINTS],
    fires: [AtomicU64; POINTS],
}

impl FaultInjector {
    /// Arms a plan with fresh counters.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            visits: Default::default(),
            fires: Default::default(),
        }
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Records one visit to `point` and decides whether it should fail.
    ///
    /// Visits past the point's budget never fire; a zero-rate point costs
    /// one relaxed load.
    #[inline]
    pub fn should_fire(&self, point: FaultPoint) -> bool {
        let i = point as usize;
        let rate = self.plan.rates[i];
        if rate == 0 {
            return false;
        }
        // ORDERING: per-point visit ticket; the RMW keeps tickets unique
        // and the deterministic hash below only needs *a* ticket, not a
        // globally ordered one.
        let n = self.visits[i].fetch_add(1, Ordering::Relaxed);
        let h = splitmix64(
            self.plan.seed.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ (i as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ n,
        );
        if h % RATE_SCALE >= rate {
            return false;
        }
        // Charge the fire against the budget; once spent, the schedule goes
        // quiet (the counter never records more fires than the budget).
        let budget = self.plan.budgets[i];
        // ORDERING: the budget is enforced by the CAS itself (never more
        // successful increments than `budget`); no other data is published
        // on a fire, so Relaxed everywhere suffices.
        let mut cur = self.fires[i].load(Ordering::Relaxed);
        loop {
            if cur >= budget {
                return false;
            }
            match self.fires[i].compare_exchange_weak(
                cur,
                cur + 1,
                // ORDERING: as above — counting RMW, no publication.
                Ordering::Relaxed,
                // ORDERING: failure value just reseeds the loop.
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Counters for one point.
    pub fn stats(&self, point: FaultPoint) -> PointStats {
        let i = point as usize;
        PointStats {
            // ORDERING: diagnostic counter read; staleness is acceptable.
            visits: self.visits[i].load(Ordering::Relaxed),
            // ORDERING: as above — diagnostic counter read.
            fires: self.fires[i].load(Ordering::Relaxed),
        }
    }

    /// Total fires at `point` so far.
    pub fn fires(&self, point: FaultPoint) -> u64 {
        // ORDERING: diagnostic counter read; staleness is acceptable.
        self.fires[point as usize].load(Ordering::Relaxed)
    }

    /// `(name, visits, fires)` for every point, in tag order — handy for
    /// chaos-suite failure messages.
    pub fn report(&self) -> Vec<(&'static str, u64, u64)> {
        FaultPoint::ALL
            .iter()
            .map(|&p| {
                let s = self.stats(p);
                (p.name(), s.visits, s.fires)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_rate_never_fires() {
        let inj = FaultInjector::new(FaultPlan::new(7));
        for _ in 0..1000 {
            assert!(!inj.should_fire(FaultPoint::MigrationChunk));
        }
        assert_eq!(inj.stats(FaultPoint::MigrationChunk).fires, 0);
        // Zero-rate points do not even count visits (disabled fast path).
        assert_eq!(inj.stats(FaultPoint::MigrationChunk).visits, 0);
    }

    #[test]
    fn always_fires_until_budget_spent() {
        let plan = FaultPlan::new(1)
            .always(FaultPoint::BatcherDrain)
            .with_budget(FaultPoint::BatcherDrain, 5);
        let inj = FaultInjector::new(plan);
        let fired = (0..100)
            .filter(|_| inj.should_fire(FaultPoint::BatcherDrain))
            .count();
        assert_eq!(fired, 5);
        assert_eq!(inj.fires(FaultPoint::BatcherDrain), 5);
        assert_eq!(inj.stats(FaultPoint::BatcherDrain).visits, 100);
    }

    #[test]
    fn same_seed_same_schedule_distinct_seeds_differ() {
        let mk = |seed| {
            let inj =
                FaultInjector::new(FaultPlan::new(seed).with_rate(FaultPoint::StmCommit, 300_000));
            (0..256)
                .map(|_| inj.should_fire(FaultPoint::StmCommit))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(99), mk(99), "replay is exact");
        assert_ne!(mk(99), mk(100), "seeds decorrelate");
    }

    #[test]
    fn points_are_decorrelated_under_one_seed() {
        let plan = FaultPlan::new(5)
            .with_rate(FaultPoint::StmCommit, 500_000)
            .with_rate(FaultPoint::StmValidate, 500_000);
        let inj = FaultInjector::new(plan);
        let a: Vec<bool> = (0..256)
            .map(|_| inj.should_fire(FaultPoint::StmCommit))
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|_| inj.should_fire(FaultPoint::StmValidate))
            .collect();
        assert_ne!(a, b, "per-point streams must not mirror each other");
    }

    #[test]
    fn rate_is_roughly_respected() {
        let inj = FaultInjector::new(
            FaultPlan::new(1234).with_rate(FaultPoint::RebalancerTick, 100_000), // 10 %
        );
        let fired = (0..20_000)
            .filter(|_| inj.should_fire(FaultPoint::RebalancerTick))
            .count();
        // 10 % of 20k = 2000; allow a wide deterministic band.
        assert!((1500..2500).contains(&fired), "fired {fired} of 20000");
    }

    #[test]
    fn concurrent_visits_respect_budget_exactly() {
        let inj = Arc::new(FaultInjector::new(
            FaultPlan::new(77)
                .always(FaultPoint::StmCommit)
                .with_budget(FaultPoint::StmCommit, 40),
        ));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    (0..1000)
                        .filter(|_| inj.should_fire(FaultPoint::StmCommit))
                        .count()
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 40, "budget is exact even under races");
    }

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<_> = FaultPoint::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "stm_commit",
                "stm_validate",
                "migration_chunk",
                "batcher_drain",
                "rebalancer_tick"
            ]
        );
        assert_eq!(format!("{}", FaultPoint::StmCommit), "stm_commit");
    }

    #[test]
    fn report_lists_every_point_in_order() {
        let inj = FaultInjector::new(FaultPlan::new(3).always(FaultPoint::StmValidate));
        let _ = inj.should_fire(FaultPoint::StmValidate);
        let rep = inj.report();
        assert_eq!(rep.len(), POINTS);
        assert_eq!(rep[1], ("stm_validate", 1, 1));
    }
}
