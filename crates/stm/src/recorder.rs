//! Optional observability hooks: zero-cost when disabled.
//!
//! A [`StmRecorder`] is attached to a domain once
//! ([`StmDomain::set_recorder`](crate::StmDomain::set_recorder)) and
//! feeds `leap-obs` instruments from the retry loop. When no recorder is
//! attached the hot path pays exactly one relaxed atomic load (the
//! `OnceLock` presence check) — no timing calls, no allocation.

use leap_obs::Histogram;
use std::sync::Arc;

/// Observability hooks for one [`StmDomain`](crate::StmDomain).
///
/// # Example
///
/// ```
/// use leap_stm::{atomically, StmDomain, StmRecorder, TVar};
/// use std::sync::Arc;
///
/// let d = StmDomain::new();
/// let retries = Arc::new(leap_obs::Histogram::new());
/// assert!(d.set_recorder(StmRecorder::new(retries.clone())));
/// let v = TVar::new(0u64);
/// atomically(&d, |tx| {
///     let x = tx.read(&v)?;
///     tx.write(&v, x + 1)
/// });
/// let s = retries.snapshot();
/// assert_eq!(s.count, 1, "one successful transaction");
/// assert_eq!(s.max, 1, "committed on the first attempt");
/// ```
#[derive(Debug, Clone)]
pub struct StmRecorder {
    /// Attempts per successful [`atomically`](crate::atomically) call
    /// (1 = committed first try; n = n−1 aborted attempts before it).
    retries: Arc<Histogram>,
}

impl StmRecorder {
    /// A recorder feeding the given retry-count histogram.
    pub fn new(retries: Arc<Histogram>) -> Self {
        StmRecorder { retries }
    }

    /// The retry-count histogram.
    pub fn retries(&self) -> &Arc<Histogram> {
        &self.retries
    }

    /// Records one successful transaction that took `attempts` tries.
    /// Public so structures running their own retry loops over raw
    /// [`Txn`](crate::Txn)s (rather than [`atomically`](crate::atomically))
    /// can report through the same histogram.
    #[inline]
    pub fn record_attempts(&self, attempts: u64) {
        self.retries.record(attempts);
    }
}
