//! Commit/abort statistics, used by the evaluation harness.

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct Stats {
    pub(crate) commits: AtomicU64,
    pub(crate) read_only_commits: AtomicU64,
    /// Conflicts detected while the body ran (a read/write/extension hit
    /// a locked or too-new ownership record).
    pub(crate) conflict_read_aborts: AtomicU64,
    /// Conflicts detected at commit time (write-lock acquisition or final
    /// read-set validation failed).
    pub(crate) conflict_commit_aborts: AtomicU64,
    pub(crate) explicit_aborts: AtomicU64,
    /// Bounded retry loops that gave up ([`crate::atomically_with`] /
    /// [`crate::with_retry_budget`] returning `Timeout`).
    pub(crate) timeouts: AtomicU64,
}

impl Stats {
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        // ORDERING: monotonic stat counters; a snapshot only needs
        // eventually-consistent values, no publication rides on them.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let conflict_read = ld(&self.conflict_read_aborts);
        let conflict_commit = ld(&self.conflict_commit_aborts);
        StatsSnapshot {
            commits: ld(&self.commits),
            read_only_commits: ld(&self.read_only_commits),
            conflict_aborts: conflict_read + conflict_commit,
            conflict_read_aborts: conflict_read,
            conflict_commit_aborts: conflict_commit,
            explicit_aborts: ld(&self.explicit_aborts),
            timeouts: ld(&self.timeouts),
        }
    }
}

/// A point-in-time copy of a domain's transaction counters.
///
/// Retrieved with [`StmDomain::stats`](crate::StmDomain::stats). Counters
/// are updated with relaxed atomics; totals are exact once all transactions
/// have finished, and advisory while they run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Transactions that committed after performing at least one write.
    pub commits: u64,
    /// Transactions that committed without writing.
    pub read_only_commits: u64,
    /// Aborts caused by conflicts (locked or too-new ownership records) —
    /// always the sum of [`StatsSnapshot::conflict_read_aborts`] and
    /// [`StatsSnapshot::conflict_commit_aborts`].
    pub conflict_aborts: u64,
    /// Conflict aborts detected **while the body ran**: a read, an
    /// in-place write, or a snapshot extension found an ownership record
    /// locked or newer than the read version.
    pub conflict_read_aborts: u64,
    /// Conflict aborts detected **at commit**: write-lock acquisition or
    /// the final read-set validation failed.
    pub conflict_commit_aborts: u64,
    /// Aborts requested by the program (`tx_abort` in the paper's
    /// pseudocode, e.g. a COP validation failure).
    pub explicit_aborts: u64,
    /// Bounded retry loops that exhausted their deadline or attempt budget
    /// and surfaced a typed [`Timeout`](crate::Timeout) instead of
    /// spinning. Not an abort category: the individual attempts are already
    /// counted under the abort counters above.
    pub timeouts: u64,
}

impl StatsSnapshot {
    /// Total commit count (writing + read-only).
    pub fn total_commits(&self) -> u64 {
        self.commits + self.read_only_commits
    }

    /// Total abort count (conflict + explicit).
    pub fn total_aborts(&self) -> u64 {
        self.conflict_aborts + self.explicit_aborts
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "commits={} (ro={}) aborts={} (conflict={} [read={}, commit={}], explicit={}) timeouts={}",
            self.total_commits(),
            self.read_only_commits,
            self.total_aborts(),
            self.conflict_aborts,
            self.conflict_read_aborts,
            self.conflict_commit_aborts,
            self.explicit_aborts,
            self.timeouts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_sums() {
        let s = StatsSnapshot {
            commits: 3,
            read_only_commits: 2,
            conflict_aborts: 4,
            conflict_read_aborts: 3,
            conflict_commit_aborts: 1,
            explicit_aborts: 1,
            timeouts: 2,
        };
        assert_eq!(s.total_commits(), 5);
        assert_eq!(s.total_aborts(), 5);
        assert!(format!("{s}").contains("commits=5"));
        assert!(format!("{s}").contains("read=3, commit=1"));
        assert!(format!("{s}").contains("timeouts=2"));
    }

    #[test]
    fn internal_counters_split_conflict_causes() {
        let raw = Stats::default();
        raw.conflict_read_aborts.store(7, Ordering::Relaxed);
        raw.conflict_commit_aborts.store(2, Ordering::Relaxed);
        let s = raw.snapshot();
        assert_eq!(s.conflict_aborts, 9, "public sum stays backward-compatible");
        assert_eq!(s.conflict_read_aborts, 7);
        assert_eq!(s.conflict_commit_aborts, 2);
    }
}
