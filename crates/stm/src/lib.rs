//! # leap-stm — word-based software transactional memory
//!
//! Substrate crate for the Leap-List reproduction (PODC 2013). The paper
//! implements Leap-List on top of GCC 4.7's experimental transactional
//! memory (GCC-TM), a word-based STM whose default configuration is
//! *weakly isolated* and *write-through*. This crate rebuilds that
//! programming model in Rust:
//!
//! * [`TVar<T>`] — a transactional word (any [`Word`]-sized value: integers,
//!   booleans, tagged pointers). Supports both *instrumented* access inside
//!   a transaction and *naked* (uninstrumented) atomic access, which is what
//!   Consistency-Oblivious Programming (COP) traversals use.
//! * [`StmDomain`] — a transactional domain: a global version clock plus a
//!   striped table of versioned write-locks (ownership records, "orecs").
//! * [`Txn`] — a transaction. Two commit strategies, selected per domain:
//!   - [`Mode::WriteBack`] (default): TL2-style lazy versioning. Writes are
//!     buffered and published at commit while holding the orec locks.
//!     Naked readers can never observe tentative data (strong isolation
//!     for uninstrumented reads).
//!   - [`Mode::WriteThrough`]: GCC-TM-style eager versioning with an undo
//!     log and encounter-time locking. Naked readers *can* observe
//!     tentative data — precisely the weak-isolation hazard that motivates
//!     the paper's marked-pointer protocol.
//! * [`atomically`] — a retry loop with bounded exponential backoff.
//! * [`atomically_with`] / [`with_retry_budget`] — the same loops bounded
//!   by a [`RetryPolicy`] (deadline and/or attempt budget), surfacing a
//!   typed [`Timeout`] instead of spinning forever under pathological
//!   contention.
//!
//! # Example: atomic transfer
//!
//! ```
//! use leap_stm::{atomically, StmDomain, TVar};
//!
//! let domain = StmDomain::new();
//! let a = TVar::new(100u64);
//! let b = TVar::new(0u64);
//!
//! atomically(&domain, |tx| {
//!     let av = tx.read(&a)?;
//!     let bv = tx.read(&b)?;
//!     tx.write(&a, av - 30)?;
//!     tx.write(&b, bv + 30)?;
//!     Ok(())
//! });
//!
//! assert_eq!(a.naked_load(), 70);
//! assert_eq!(b.naked_load(), 30);
//! ```
//!
//! # Locking Transactions (LT)
//!
//! The paper's LT technique uses a transaction *only* to validate state and
//! acquire logical locks (mark pointers, clear `live` bits); the actual data
//! movement happens after commit through naked stores. This crate supports
//! that pattern directly: transactional reads/writes for the validation and
//! lock acquisition, then [`TVar::naked_store`] for the release phase.

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(not(target_pointer_width = "64"))]
compile_error!("leap-stm requires a 64-bit target (word == u64)");

mod domain;
mod recorder;
mod retry;
mod stats;
mod tagged;
mod tvar;
mod txn;
mod word;

pub use domain::{
    Mode, SnapshotPin, StmDomain, StmFaultHook, StmFaultPoint, WiringTicket, DEFAULT_OREC_BITS,
};
pub use recorder::StmRecorder;
pub use retry::{atomically, atomically_with, with_retry_budget, Backoff, RetryPolicy, Timeout};
pub use stats::StatsSnapshot;
pub use tagged::TaggedPtr;
pub use tvar::TVar;
pub use txn::{Abort, TxResult, Txn};
pub use word::Word;

/// A transactional tagged-pointer cell: the building block for the
/// marked-pointer protocol of the Leap-List.
pub type TPtr<T> = TVar<TaggedPtr<T>>;
