//! The [`Word`] trait: values representable in a single machine word.

use crate::tagged::TaggedPtr;

/// A value that fits in one machine word and can therefore live in a
/// [`TVar`](crate::TVar).
///
/// The conversion must be lossless (`from_word(to_word(x)) == x`). This is a
/// word-based STM, like GCC-TM: transactional memory is addressed at word
/// granularity.
///
/// # Example
///
/// ```
/// use leap_stm::Word;
/// assert_eq!(u64::from_word(42u64.to_word()), 42);
/// assert!(bool::from_word(true.to_word()));
/// ```
pub trait Word: Copy {
    /// Converts the value into its word representation.
    fn to_word(self) -> usize;
    /// Rebuilds the value from a word previously produced by [`Word::to_word`].
    fn from_word(w: usize) -> Self;
}

impl Word for usize {
    #[inline]
    fn to_word(self) -> usize {
        self
    }
    #[inline]
    fn from_word(w: usize) -> Self {
        w
    }
}

impl Word for u64 {
    #[inline]
    fn to_word(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_word(w: usize) -> Self {
        w as u64
    }
}

impl Word for u32 {
    #[inline]
    fn to_word(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_word(w: usize) -> Self {
        w as u32
    }
}

impl Word for u8 {
    #[inline]
    fn to_word(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_word(w: usize) -> Self {
        w as u8
    }
}

impl Word for bool {
    #[inline]
    fn to_word(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_word(w: usize) -> Self {
        w != 0
    }
}

impl<T> Word for TaggedPtr<T> {
    #[inline]
    fn to_word(self) -> usize {
        self.into_raw()
    }
    #[inline]
    fn from_word(w: usize) -> Self {
        TaggedPtr::from_raw(w)
    }
}

impl<T> Word for *mut T {
    #[inline]
    fn to_word(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_word(w: usize) -> Self {
        w as *mut T
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_roundtrips() {
        assert_eq!(usize::from_word(7usize.to_word()), 7);
        assert_eq!(u64::from_word(u64::MAX.to_word()), u64::MAX);
        assert_eq!(u32::from_word(0xDEAD_BEEFu32.to_word()), 0xDEAD_BEEF);
        assert_eq!(u8::from_word(200u8.to_word()), 200);
    }

    #[test]
    fn bool_roundtrips() {
        assert!(bool::from_word(true.to_word()));
        assert!(!bool::from_word(false.to_word()));
    }

    #[test]
    fn raw_pointer_roundtrips() {
        let x = Box::into_raw(Box::new(5i32));
        let y = <*mut i32 as Word>::from_word(x.to_word());
        assert_eq!(x, y);
        // SAFETY: the test owns `x`; freed exactly once.
        drop(unsafe { Box::from_raw(x) });
    }
}
