//! Tagged (markable) pointers.
//!
//! The Leap-List writes *marked* pointers inside a transaction and removes
//! the mark after a successful commit (paper §2). A mark is the low bit of
//! the pointer word, which is always available because node allocations are
//! at least 2-byte aligned.

use std::fmt;
use std::marker::PhantomData;

/// A raw pointer carrying a one-bit mark in its lowest bit.
///
/// `TaggedPtr` is a plain value (it implements [`Word`](crate::Word)); store
/// it in a [`TPtr`](crate::TPtr) cell for shared use.
///
/// # Example
///
/// ```
/// use leap_stm::TaggedPtr;
/// let b = Box::into_raw(Box::new(7u64));
/// let p = TaggedPtr::new(b);
/// assert!(!p.is_marked());
/// let m = p.marked();
/// assert!(m.is_marked());
/// assert_eq!(m.unmarked(), p);
/// assert_eq!(p.as_ptr(), b);
/// # drop(unsafe { Box::from_raw(b) });
/// ```
pub struct TaggedPtr<T> {
    raw: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T> TaggedPtr<T> {
    const MARK: usize = 1;

    /// Wraps an (unmarked) raw pointer.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the pointer is at least 2-byte aligned so the mark
    /// bit is free.
    #[inline]
    pub fn new(ptr: *mut T) -> Self {
        debug_assert_eq!(ptr as usize & Self::MARK, 0, "pointer not aligned");
        TaggedPtr {
            raw: ptr as usize,
            _marker: PhantomData,
        }
    }

    /// The null pointer (unmarked).
    #[inline]
    pub fn null() -> Self {
        TaggedPtr {
            raw: 0,
            _marker: PhantomData,
        }
    }

    /// Rebuilds from a raw word (pointer bits plus mark bit).
    #[inline]
    pub fn from_raw(raw: usize) -> Self {
        TaggedPtr {
            raw,
            _marker: PhantomData,
        }
    }

    /// The raw word including the mark bit.
    #[inline]
    pub fn into_raw(self) -> usize {
        self.raw
    }

    /// The pointer with the mark bit stripped.
    #[inline]
    pub fn as_ptr(self) -> *mut T {
        (self.raw & !Self::MARK) as *mut T
    }

    /// Whether the mark bit is set.
    #[inline]
    pub fn is_marked(self) -> bool {
        self.raw & Self::MARK != 0
    }

    /// Whether the pointer (ignoring the mark) is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self.raw & !Self::MARK == 0
    }

    /// This pointer with the mark bit set.
    #[inline]
    pub fn marked(self) -> Self {
        Self::from_raw(self.raw | Self::MARK)
    }

    /// This pointer with the mark bit cleared (the paper's `UNMARK`).
    #[inline]
    pub fn unmarked(self) -> Self {
        Self::from_raw(self.raw & !Self::MARK)
    }
}

impl<T> Clone for TaggedPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TaggedPtr<T> {}

impl<T> PartialEq for TaggedPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for TaggedPtr<T> {}

impl<T> std::hash::Hash for TaggedPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}

impl<T> fmt::Debug for TaggedPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TaggedPtr({:p}{})",
            self.as_ptr(),
            if self.is_marked() { ", marked" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_roundtrip() {
        let b = Box::into_raw(Box::new(1u32));
        let p = TaggedPtr::new(b);
        assert!(!p.is_marked());
        assert!(p.marked().is_marked());
        assert_eq!(p.marked().unmarked(), p);
        assert_eq!(p.marked().as_ptr(), b);
        // SAFETY: the test owns `b`; freed exactly once.
        drop(unsafe { Box::from_raw(b) });
    }

    #[test]
    fn null_handling() {
        let p = TaggedPtr::<u64>::null();
        assert!(p.is_null());
        assert!(p.marked().is_null(), "mark must not affect nullness");
        assert!(p.marked().as_ptr().is_null(), "mark stripped for deref");
    }

    #[test]
    fn equality_includes_mark() {
        let b = Box::into_raw(Box::new(1u8));
        let p = TaggedPtr::new(b);
        assert_ne!(p, p.marked());
        assert_eq!(p, p.marked().unmarked());
        // SAFETY: the test owns `b`; freed exactly once.
        drop(unsafe { Box::from_raw(b) });
    }
}
