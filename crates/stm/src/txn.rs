//! Transactions: TL2-style write-back and GCC-TM-style write-through.

use crate::domain::{orec_is_locked, orec_version, Mode, StmDomain, StmFaultPoint};
use crate::tvar::TVar;
use crate::word::Word;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Why a transactional operation could not proceed.
///
/// An `Abort` is not an error in the application sense: the enclosing retry
/// loop ([`atomically`](crate::atomically) or a hand-written one, as in the
/// Leap-List operations) re-executes the transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Abort {
    /// A conflicting transaction owns or has updated a location we touched.
    Conflict,
    /// The program requested an abort (the paper's `tx_abort`, e.g. when a
    /// COP validation discovers the read-only prefix is stale).
    Explicit,
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Abort::Conflict => write!(f, "transaction aborted: conflict"),
            Abort::Explicit => write!(f, "transaction aborted: explicit"),
        }
    }
}

impl std::error::Error for Abort {}

/// Result type of transactional operations.
pub type TxResult<T> = Result<T, Abort>;

struct WriteEntry {
    addr: usize,
    cell: *const AtomicUsize,
    val: usize,
    orec: u32,
}

struct WtLock {
    orec: u32,
    old: u64,
}

struct UndoEntry {
    cell: *const AtomicUsize,
    old: usize,
}

/// How many times commit spins on a locked orec before giving up.
const LOCK_SPIN_LIMIT: u32 = 64;

/// An in-flight transaction on some [`StmDomain`].
///
/// Create with [`Txn::begin`], finish with [`Txn::commit`]. Dropping a
/// transaction without committing rolls it back (relevant in
/// [write-through](Mode::WriteThrough) mode, where writes are eager).
///
/// The paper's operations use hand-written retry loops around `begin` /
/// `commit` because the non-transactional COP prefix must also be
/// re-executed on abort; [`atomically`](crate::atomically) packages the
/// common case.
///
/// # Example
///
/// ```
/// use leap_stm::{StmDomain, TVar, Txn};
/// let d = StmDomain::new();
/// let v = TVar::new(10u64);
/// loop {
///     let mut tx = Txn::begin(&d);
///     let body = (|| {
///         let x = tx.read(&v)?;
///         tx.write(&v, x * 2)
///     })();
///     if body.is_ok() && tx.commit().is_ok() {
///         break;
///     }
/// }
/// assert_eq!(v.naked_load(), 20);
/// ```
pub struct Txn<'d> {
    domain: &'d StmDomain,
    rv: u64,
    read_set: Vec<u32>,
    write_set: Vec<WriteEntry>,
    wt_locks: Vec<WtLock>,
    undo: Vec<UndoEntry>,
    completed: bool,
    explicit: bool,
    poisoned: bool,
    /// Whether the (non-explicit) failure was detected at commit time
    /// (lock acquisition / final validation) rather than while the body
    /// ran — drives the conflict-cause attribution in [`Stats`].
    commit_conflict: bool,
}

impl<'d> Txn<'d> {
    /// Starts a transaction: samples the global clock as the read version.
    pub fn begin(domain: &'d StmDomain) -> Self {
        Txn {
            domain,
            rv: domain.clock_load(),
            read_set: Vec::new(),
            write_set: Vec::new(),
            wt_locks: Vec::new(),
            undo: Vec::new(),
            completed: false,
            explicit: false,
            poisoned: false,
            commit_conflict: false,
        }
    }

    /// The domain this transaction runs on.
    pub fn domain(&self) -> &'d StmDomain {
        self.domain
    }

    /// Requests an explicit abort (the paper's `tx_abort`). Returns the
    /// [`Abort::Explicit`] value so call sites can write
    /// `return Err(tx.explicit_abort());`.
    pub fn explicit_abort(&mut self) -> Abort {
        self.explicit = true;
        self.poisoned = true;
        Abort::Explicit
    }

    fn conflict(&mut self) -> Abort {
        self.poisoned = true;
        Abort::Conflict
    }

    fn is_my_wt_lock(&self, orec: u32) -> bool {
        self.wt_locks.iter().any(|l| l.orec == orec)
    }

    /// Transactional read.
    ///
    /// In write-back mode, returns the buffered value if this transaction
    /// already wrote `var`. The borrow of `var` must outlive the
    /// transaction's lifetime `'d` — in the Leap-List this is guaranteed by
    /// epoch pinning.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if `var`'s ownership record is locked by another
    /// transaction or has advanced past this transaction's (extensible)
    /// read snapshot.
    pub fn read<T: Word>(&mut self, var: &'d TVar<T>) -> TxResult<T> {
        if self.poisoned {
            return Err(Abort::Conflict);
        }
        let addr = var.addr();
        if self.domain.mode() == Mode::WriteBack {
            // Read-after-write: serve from the redo buffer.
            if let Some(e) = self.write_set.iter().rev().find(|e| e.addr == addr) {
                return Ok(T::from_word(e.val));
            }
        }
        let oi = self.domain.orec_index(addr);
        if self.domain.mode() == Mode::WriteThrough && self.is_my_wt_lock(oi) {
            // We own the stripe: the in-place value is ours and stable.
            return Ok(T::from_word(var.cell.load(Ordering::Acquire)));
        }
        let o1 = self.domain.orec_load(oi);
        if orec_is_locked(o1) {
            return Err(self.conflict());
        }
        let v = var.cell.load(Ordering::Acquire);
        let o2 = self.domain.orec_load(oi);
        if o2 != o1 {
            return Err(self.conflict());
        }
        if orec_version(o1) > self.rv {
            self.extend()?;
            // The stripe must not have moved while we extended.
            if self.domain.orec_load(oi) != o1 {
                return Err(self.conflict());
            }
        }
        self.read_set.push(oi);
        Ok(T::from_word(v))
    }

    /// Transactional write.
    ///
    /// Write-back buffers the value until commit; write-through locks the
    /// ownership record, logs the old value and stores in place (naked
    /// readers may observe it before commit — GCC-TM's weak isolation).
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] under contention on `var`'s ownership record.
    pub fn write<T: Word>(&mut self, var: &'d TVar<T>, value: T) -> TxResult<()> {
        if self.poisoned {
            return Err(Abort::Conflict);
        }
        let addr = var.addr();
        let oi = self.domain.orec_index(addr);
        match self.domain.mode() {
            Mode::WriteBack => {
                let val = value.to_word();
                if let Some(e) = self.write_set.iter_mut().find(|e| e.addr == addr) {
                    e.val = val;
                } else {
                    self.write_set.push(WriteEntry {
                        addr,
                        cell: &var.cell,
                        val,
                        orec: oi,
                    });
                }
                Ok(())
            }
            Mode::WriteThrough => {
                if !self.is_my_wt_lock(oi) {
                    let o = self.domain.orec_load(oi);
                    if orec_is_locked(o) {
                        return Err(self.conflict());
                    }
                    if orec_version(o) > self.rv {
                        self.extend()?;
                        if orec_version(o) > self.rv {
                            return Err(self.conflict());
                        }
                    }
                    if !self.domain.orec_try_lock(oi, o) {
                        return Err(self.conflict());
                    }
                    self.wt_locks.push(WtLock { orec: oi, old: o });
                }
                self.undo.push(UndoEntry {
                    cell: &var.cell,
                    // ORDERING: we hold this stripe's orec lock, so the cell
                    // cannot change under us; a plain read suffices.
                    old: var.cell.load(Ordering::Relaxed),
                });
                var.cell.store(value.to_word(), Ordering::Release);
                Ok(())
            }
        }
    }

    /// Attempts to move the read snapshot forward (lazy snapshot extension):
    /// succeeds iff nothing read so far has changed.
    fn extend(&mut self) -> TxResult<()> {
        let new_rv = self.domain.clock_load();
        for &oi in &self.read_set {
            let o = self.domain.orec_load(oi);
            if orec_is_locked(o) {
                if !self.is_my_wt_lock(oi) {
                    return Err(self.conflict());
                }
            } else if orec_version(o) > self.rv {
                return Err(self.conflict());
            }
        }
        self.rv = new_rv;
        Ok(())
    }

    /// Validates the read set against snapshot `rv`. `mine` lists orecs this
    /// transaction has locked, sorted, together with their *pre-lock* words:
    /// for those we must validate the version as it was before we locked it
    /// (the lock itself does not vouch for the reads made earlier).
    fn validate_reads(&self, mine: &[(u32, u64)]) -> bool {
        if self.domain.fault_fires(StmFaultPoint::Validate) {
            return false;
        }
        for &oi in &self.read_set {
            let o = self.domain.orec_load(oi);
            let version = if orec_is_locked(o) {
                match mine.binary_search_by_key(&oi, |(i, _)| *i) {
                    Ok(k) => orec_version(mine[k].1),
                    Err(_) => return false,
                }
            } else {
                orec_version(o)
            };
            if version > self.rv {
                return false;
            }
        }
        true
    }

    /// Attempts to commit.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] if commit-time locking or read validation fails;
    /// the transaction is rolled back and all its effects discarded.
    pub fn commit(self) -> Result<(), Abort> {
        self.commit_stamped().map(|_| ())
    }

    /// Attempts to commit and returns the commit timestamp: the global
    /// clock value this commit installed (the version its write stripes
    /// were released at). A read-only transaction performs no clock bump
    /// and returns its read snapshot instead — the newest timestamp its
    /// reads are consistent at. Version-bundle stamping uses the returned
    /// value to tag the structures the commit published.
    ///
    /// # Errors
    ///
    /// [`Abort::Conflict`] exactly as [`Txn::commit`].
    pub fn commit_stamped(mut self) -> Result<u64, Abort> {
        if self.poisoned {
            // Drop impl performs the rollback and stats accounting.
            return Err(Abort::Conflict);
        }
        if self.domain.fault_fires(StmFaultPoint::Commit) {
            // Injected commit-time conflict: the Drop impl rolls back and
            // attributes the abort like any other commit conflict.
            self.commit_conflict = true;
            return Err(Abort::Conflict);
        }
        match self.domain.mode() {
            Mode::WriteBack => self.commit_wb(),
            Mode::WriteThrough => self.commit_wt(),
        }
    }

    fn commit_wb(&mut self) -> Result<u64, Abort> {
        if self.write_set.is_empty() {
            self.completed = true;
            self.domain
                .stats
                .read_only_commits
                // ORDERING: monotonic stat counter; no publication rides on it.
                .fetch_add(1, Ordering::Relaxed);
            return Ok(self.rv);
        }
        // Lock the write stripes in sorted order (deadlock avoidance with
        // bounded spinning as a safety net).
        let mut locks: Vec<(u32, u64)> = self.write_set.iter().map(|e| (e.orec, 0)).collect();
        locks.sort_unstable_by_key(|(oi, _)| *oi);
        locks.dedup_by_key(|(oi, _)| *oi);
        let mut acquired = 0usize;
        'locking: for i in 0..locks.len() {
            let oi = locks[i].0;
            let mut spins = 0;
            loop {
                let o = self.domain.orec_load(oi);
                if !orec_is_locked(o) && self.domain.orec_try_lock(oi, o) {
                    locks[i].1 = o;
                    acquired = i + 1;
                    continue 'locking;
                }
                spins += 1;
                if spins > LOCK_SPIN_LIMIT {
                    for &(oj, old) in &locks[..acquired] {
                        self.domain.orec_restore(oj, old);
                    }
                    self.commit_conflict = true;
                    self.record_abort();
                    return Err(Abort::Conflict);
                }
                std::hint::spin_loop();
            }
        }
        let wv = self.domain.clock_bump();
        if self.rv + 1 != wv && !self.validate_reads(&locks) {
            for &(oi, old) in &locks {
                self.domain.orec_restore(oi, old);
            }
            self.commit_conflict = true;
            self.record_abort();
            return Err(Abort::Conflict);
        }
        // Publish the redo buffer, then release stripes at the new version.
        for e in &self.write_set {
            // SAFETY: `cell` points into a TVar the caller kept alive for
            // 'd (enforced by `read`/`write` borrow lifetimes).
            unsafe { (*e.cell).store(e.val, Ordering::Release) };
        }
        for &(oi, _) in &locks {
            self.domain.orec_unlock_to(oi, wv);
        }
        self.completed = true;
        // ORDERING: monotonic stat counter; no publication rides on it.
        self.domain.stats.commits.fetch_add(1, Ordering::Relaxed);
        Ok(wv)
    }

    fn commit_wt(&mut self) -> Result<u64, Abort> {
        if self.wt_locks.is_empty() {
            self.completed = true;
            self.domain
                .stats
                .read_only_commits
                // ORDERING: monotonic stat counter; no publication rides on it.
                .fetch_add(1, Ordering::Relaxed);
            return Ok(self.rv);
        }
        let wv = self.domain.clock_bump();
        let mut mine: Vec<(u32, u64)> = self.wt_locks.iter().map(|l| (l.orec, l.old)).collect();
        mine.sort_unstable_by_key(|(oi, _)| *oi);
        if self.rv + 1 != wv && !self.validate_reads(&mine) {
            self.rollback_wt();
            self.commit_conflict = true;
            self.record_abort();
            return Err(Abort::Conflict);
        }
        for l in &self.wt_locks {
            self.domain.orec_unlock_to(l.orec, wv);
        }
        self.wt_locks.clear();
        self.undo.clear();
        self.completed = true;
        // ORDERING: monotonic stat counter; no publication rides on it.
        self.domain.stats.commits.fetch_add(1, Ordering::Relaxed);
        Ok(wv)
    }

    /// Undoes in-place writes (reverse order) and restores orec words.
    fn rollback_wt(&mut self) {
        for u in self.undo.drain(..).rev() {
            // SAFETY: same liveness argument as in `commit_wb`.
            unsafe { (*u.cell).store(u.old, Ordering::Release) };
        }
        for l in self.wt_locks.drain(..) {
            self.domain.orec_restore(l.orec, l.old);
        }
    }

    fn record_abort(&mut self) {
        self.completed = true;
        let (ctr, cause) = if self.explicit {
            (
                &self.domain.stats.explicit_aborts,
                leap_obs::trace::AbortCause::Explicit,
            )
        } else if self.commit_conflict {
            (
                &self.domain.stats.conflict_commit_aborts,
                leap_obs::trace::AbortCause::ConflictCommit,
            )
        } else {
            // Encounter-time: a read/write/extension conflicted (or the
            // transaction was dropped uncommitted, which is accounted the
            // same way — the body never reached commit).
            (
                &self.domain.stats.conflict_read_aborts,
                leap_obs::trace::AbortCause::ConflictRead,
            )
        };
        // ORDERING: monotonic stat counter; no publication rides on it.
        ctr.fetch_add(1, Ordering::Relaxed);
        // Same attribution feeds the active leap-trace span, if one is
        // open on this thread (a no-op otherwise).
        leap_obs::trace::note_abort(cause);
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.rollback_wt();
            self.record_abort();
        }
    }
}

impl std::fmt::Debug for Txn<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Txn")
            .field("rv", &self.rv)
            .field("reads", &self.read_set.len())
            .field("writes", &self.write_set.len())
            .field("wt_locks", &self.wt_locks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Mode;

    fn both_modes() -> Vec<StmDomain> {
        vec![
            StmDomain::with_config(Mode::WriteBack, 10),
            StmDomain::with_config(Mode::WriteThrough, 10),
        ]
    }

    #[test]
    fn read_own_write() {
        for d in both_modes() {
            let v = TVar::new(1u64);
            let mut tx = Txn::begin(&d);
            tx.write(&v, 5).unwrap();
            assert_eq!(tx.read(&v).unwrap(), 5, "mode {:?}", d.mode());
            tx.commit().unwrap();
            assert_eq!(v.naked_load(), 5);
        }
    }

    #[test]
    fn write_skew_on_same_var_is_detected() {
        for d in both_modes() {
            let v = TVar::new(0u64);
            let mut t1 = Txn::begin(&d);
            let _ = t1.read(&v).unwrap();

            // t2 commits an update to v while t1 is live.
            let mut t2 = Txn::begin(&d);
            let x = t2.read(&v).unwrap();
            t2.write(&v, x + 1).unwrap();
            t2.commit().unwrap();

            // t1 read v before t2's commit; writing based on it must fail.
            let r = t1.write(&v, 99).and_then(|_| t1.commit());
            assert_eq!(r, Err(Abort::Conflict), "mode {:?}", d.mode());
            assert_eq!(v.naked_load(), 1, "t1 must not clobber t2's update");
        }
    }

    #[test]
    fn wt_write_write_conflict_immediate() {
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(0u64);
        let mut t1 = Txn::begin(&d);
        t1.write(&v, 1).unwrap();
        let mut t2 = Txn::begin(&d);
        assert_eq!(t2.write(&v, 2), Err(Abort::Conflict));
        t1.commit().unwrap();
        assert_eq!(v.naked_load(), 1);
    }

    #[test]
    fn wt_read_of_locked_var_conflicts() {
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(0u64);
        let mut t1 = Txn::begin(&d);
        t1.write(&v, 1).unwrap();
        let mut t2 = Txn::begin(&d);
        assert_eq!(t2.read(&v), Err(Abort::Conflict));
        drop(t1); // rollback
        assert_eq!(v.naked_load(), 0, "rollback must restore the old value");
    }

    #[test]
    fn wt_naked_reader_sees_tentative_then_rollback() {
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(7u64);
        let mut t1 = Txn::begin(&d);
        t1.write(&v, 1234).unwrap();
        // Weak isolation: tentative value visible to naked reads.
        assert_eq!(v.naked_load(), 1234);
        drop(t1);
        assert_eq!(v.naked_load(), 7);
    }

    #[test]
    fn wb_naked_reader_never_sees_uncommitted() {
        let d = StmDomain::with_config(Mode::WriteBack, 10);
        let v = TVar::new(7u64);
        let mut t1 = Txn::begin(&d);
        t1.write(&v, 1234).unwrap();
        assert_eq!(v.naked_load(), 7, "write-back must buffer until commit");
        drop(t1);
        assert_eq!(v.naked_load(), 7);
    }

    #[test]
    fn snapshot_extension_allows_reading_newer_vars() {
        for d in both_modes() {
            let a = TVar::new(0u64);
            let b = TVar::new(0u64);
            let mut t1 = Txn::begin(&d);
            // Another transaction commits to b after t1 began.
            let mut t2 = Txn::begin(&d);
            t2.write(&b, 42).unwrap();
            t2.commit().unwrap();
            // t1 has an empty read set, so extension succeeds.
            assert_eq!(t1.read(&b).unwrap(), 42, "mode {:?}", d.mode());
            assert_eq!(t1.read(&a).unwrap(), 0);
            t1.commit().unwrap();
        }
    }

    #[test]
    fn snapshot_extension_fails_when_reads_are_stale() {
        for d in both_modes() {
            let a = TVar::new(0u64);
            let b = TVar::new(0u64);
            let mut t1 = Txn::begin(&d);
            assert_eq!(t1.read(&a).unwrap(), 0);
            // t2 commits to BOTH a and b: t1's read of a is now stale.
            let mut t2 = Txn::begin(&d);
            t2.write(&a, 1).unwrap();
            t2.write(&b, 1).unwrap();
            t2.commit().unwrap();
            assert_eq!(
                t1.read(&b),
                Err(Abort::Conflict),
                "mode {:?}: extension must fail, a changed",
                d.mode()
            );
        }
    }

    #[test]
    fn explicit_abort_counts_and_poisons() {
        for d in both_modes() {
            let v = TVar::new(0u64);
            let mut tx = Txn::begin(&d);
            tx.write(&v, 9).unwrap();
            let a = tx.explicit_abort();
            assert_eq!(a, Abort::Explicit);
            assert_eq!(tx.read(&v), Err(Abort::Conflict), "poisoned tx");
            drop(tx);
            assert_eq!(v.naked_load(), 0, "mode {:?}", d.mode());
            assert_eq!(d.stats().explicit_aborts, 1);
        }
    }

    #[test]
    fn commit_stamped_returns_the_installed_version() {
        for d in both_modes() {
            let v = TVar::new(0u64);
            let mut tx = Txn::begin(&d);
            tx.write(&v, 1).unwrap();
            let wv = tx.commit_stamped().unwrap();
            assert_eq!(wv, d.clock(), "mode {:?}", d.mode());
            // A second writing commit gets a strictly newer stamp.
            let mut tx = Txn::begin(&d);
            tx.write(&v, 2).unwrap();
            let wv2 = tx.commit_stamped().unwrap();
            assert!(wv2 > wv);
            // Read-only commits return the read snapshot without bumping.
            let clock = d.clock();
            let mut tx = Txn::begin(&d);
            assert_eq!(tx.read(&v).unwrap(), 2);
            assert_eq!(tx.commit_stamped().unwrap(), clock);
            assert_eq!(d.clock(), clock);
        }
    }

    #[test]
    fn read_only_commit_counted() {
        for d in both_modes() {
            let v = TVar::new(3u64);
            let mut tx = Txn::begin(&d);
            assert_eq!(tx.read(&v).unwrap(), 3);
            tx.commit().unwrap();
            assert_eq!(d.stats().read_only_commits, 1);
            assert_eq!(d.stats().commits, 0);
        }
    }

    #[test]
    fn wt_rollback_restores_multiple_writes_in_order() {
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(1u64);
        let mut tx = Txn::begin(&d);
        tx.write(&v, 2).unwrap();
        tx.write(&v, 3).unwrap();
        assert_eq!(v.naked_load(), 3);
        drop(tx);
        assert_eq!(v.naked_load(), 1, "reverse-order undo must restore v=1");
    }

    #[test]
    fn orec_collisions_are_safe() {
        // 2 orecs: nearly everything collides. Transactions must still be
        // serializable (no lost updates), just with more false conflicts.
        for mode in [Mode::WriteBack, Mode::WriteThrough] {
            let d = StmDomain::with_config(mode, 1);
            let vars: Vec<TVar<u64>> = (0..8).map(|_| TVar::new(0)).collect();
            for i in 0..64u64 {
                let vi = (i % 8) as usize;
                loop {
                    let mut tx = Txn::begin(&d);
                    let body = (|| {
                        let x = tx.read(&vars[vi])?;
                        tx.write(&vars[vi], x + 1)
                    })();
                    if body.is_ok() && tx.commit().is_ok() {
                        break;
                    }
                }
            }
            let total: u64 = vars.iter().map(|v| v.naked_load()).sum();
            assert_eq!(total, 64, "mode {mode:?}");
        }
    }

    #[test]
    fn conflict_causes_are_attributed_read_vs_commit() {
        for d in both_modes() {
            let v = TVar::new(0u64);

            // Encounter-time conflict: reading a var whose orec another
            // live transaction holds (WT) or whose orec advanced past the
            // snapshot mid-read is detected inside the body.
            let mut t1 = Txn::begin(&d);
            let _ = t1.read(&v).unwrap();
            let mut t2 = Txn::begin(&d);
            let x = t2.read(&v).unwrap();
            t2.write(&v, x + 1).unwrap();
            t2.commit().unwrap();
            // t1's snapshot is stale; its write-then-commit must abort.
            // In WT mode the conflict surfaces at the write (encounter
            // time); in WB mode at commit validation.
            let r = t1.write(&v, 99).and_then(|_| t1.commit());
            assert_eq!(r, Err(Abort::Conflict), "mode {:?}", d.mode());

            let s = d.stats();
            assert_eq!(
                s.conflict_aborts,
                s.conflict_read_aborts + s.conflict_commit_aborts,
                "mode {:?}: sum invariant",
                d.mode()
            );
            assert_eq!(s.conflict_aborts, 1, "mode {:?}", d.mode());
            match d.mode() {
                Mode::WriteBack => assert_eq!(
                    s.conflict_commit_aborts, 1,
                    "WB detects stale reads at commit validation"
                ),
                Mode::WriteThrough => assert_eq!(
                    s.conflict_read_aborts, 1,
                    "WT detects the stale snapshot at the write"
                ),
            }
        }
    }

    #[test]
    fn encounter_conflicts_count_as_read_aborts() {
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(0u64);
        let mut t1 = Txn::begin(&d);
        t1.write(&v, 1).unwrap();
        let mut t2 = Txn::begin(&d);
        assert_eq!(t2.read(&v), Err(Abort::Conflict), "orec is locked");
        drop(t2);
        let s = d.stats();
        assert_eq!(s.conflict_read_aborts, 1);
        assert_eq!(s.conflict_commit_aborts, 0);
        t1.commit().unwrap();
    }

    #[test]
    fn commit_after_poison_fails_and_rolls_back() {
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(5u64);
        let w = TVar::new(5u64);
        let mut t1 = Txn::begin(&d);
        t1.write(&v, 6).unwrap();
        // Force a conflict: another tx owns w.
        let mut t2 = Txn::begin(&d);
        t2.write(&w, 7).unwrap();
        assert_eq!(t1.write(&w, 8), Err(Abort::Conflict));
        assert_eq!(t1.commit(), Err(Abort::Conflict));
        t2.commit().unwrap();
        assert_eq!(v.naked_load(), 5, "poisoned t1 must roll back v");
        assert_eq!(w.naked_load(), 7);
    }
}
