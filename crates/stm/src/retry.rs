//! Retry loops and contention backoff.

use crate::domain::StmDomain;
use crate::txn::{TxResult, Txn};

/// Bounded exponential backoff used between transaction attempts.
///
/// Spins for short waits and yields to the scheduler once the wait grows,
/// which matters on over-subscribed machines (the evaluation oversubscribes
/// cores heavily).
///
/// # Example
///
/// ```
/// let mut b = leap_stm::Backoff::new();
/// b.snooze();
/// b.snooze();
/// assert!(b.attempts() == 2);
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    attempt: u32,
}

impl Backoff {
    /// Spin limit exponent after which we yield instead of spinning.
    const SPIN_LIMIT: u32 = 6;
    /// Hard cap on the exponent.
    const CAP: u32 = 12;

    /// Creates a fresh backoff.
    pub fn new() -> Self {
        Backoff { attempt: 0 }
    }

    /// Number of times [`Backoff::snooze`] has been called.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Waits an exponentially growing amount before the next attempt.
    pub fn snooze(&mut self) {
        let e = self.attempt.min(Self::CAP);
        if e <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << e) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.attempt += 1;
    }
}

/// Runs `body` in a transaction, retrying with backoff until it commits,
/// and returns the body's result.
///
/// The closure may be executed many times; it must be idempotent apart from
/// its transactional effects. Operations that also have a non-transactional
/// prefix to re-execute (COP) should hand-roll the loop with [`Txn::begin`].
///
/// # Example
///
/// ```
/// use leap_stm::{atomically, StmDomain, TVar};
/// let d = StmDomain::new();
/// let v = TVar::new(0u64);
/// let seen = atomically(&d, |tx| {
///     let x = tx.read(&v)?;
///     tx.write(&v, x + 1)?;
///     Ok(x)
/// });
/// assert_eq!(seen, 0);
/// assert_eq!(v.naked_load(), 1);
/// ```
pub fn atomically<'d, R>(
    domain: &'d StmDomain,
    mut body: impl FnMut(&mut Txn<'d>) -> TxResult<R>,
) -> R {
    let mut backoff = Backoff::new();
    loop {
        let mut tx = Txn::begin(domain);
        match body(&mut tx) {
            Ok(r) => {
                if tx.commit().is_ok() {
                    if let Some(rec) = domain.recorder() {
                        // attempts() counts snoozes = failed tries.
                        rec.record_attempts(u64::from(backoff.attempts()) + 1);
                    }
                    return r;
                }
            }
            Err(_) => drop(tx),
        }
        backoff.snooze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, TVar};

    #[test]
    fn backoff_grows() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert_eq!(b.attempts(), 20);
    }

    #[test]
    fn atomically_commits() {
        let d = StmDomain::new();
        let v = TVar::new(10u64);
        atomically(&d, |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 5)
        });
        assert_eq!(v.naked_load(), 15);
    }

    #[test]
    fn atomically_retries_until_commit() {
        // Single-threaded determinism: force one failure by pre-locking the
        // var's orec through a competing write-through transaction that we
        // release from within the body on the second attempt.
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(0u64);
        let mut blocker = Some({
            let mut t = Txn::begin(&d);
            t.write(&v, 99).unwrap();
            t
        });
        let mut calls = 0;
        atomically(&d, |tx| {
            calls += 1;
            if calls == 1 {
                // First attempt conflicts with the blocker...
                let r = tx.write(&v, 1);
                assert!(r.is_err());
                r
            } else {
                // ...which we then abort so the retry can succeed.
                if let Some(b) = blocker.take() {
                    drop(b);
                }
                tx.write(&v, 1)
            }
        });
        assert!(calls >= 2);
        assert_eq!(v.naked_load(), 1);
    }

    #[test]
    fn recorder_sees_per_txn_attempt_counts() {
        use crate::StmRecorder;
        use std::sync::Arc;

        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let retries = Arc::new(leap_obs::Histogram::new());
        assert!(d.set_recorder(StmRecorder::new(retries.clone())));
        assert!(
            !d.set_recorder(StmRecorder::new(retries.clone())),
            "second attach is refused"
        );

        let v = TVar::new(0u64);
        // First-try success.
        atomically(&d, |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)
        });
        // One forced retry: a blocker holds v's orec on the first attempt.
        let mut blocker = Some({
            let mut t = Txn::begin(&d);
            t.write(&v, 99).unwrap();
            t
        });
        let mut calls = 0;
        atomically(&d, |tx| {
            calls += 1;
            if calls == 1 {
                tx.write(&v, 1)
            } else {
                if let Some(b) = blocker.take() {
                    drop(b);
                }
                tx.write(&v, 1)
            }
        });
        let s = retries.snapshot();
        assert_eq!(s.count, 2, "two successful transactions recorded");
        assert_eq!(s.quantile_permille(1), 1, "one committed first try");
        assert!(s.max >= 2, "the other needed at least one retry: {}", s.max);
    }
}
