//! Retry loops, contention backoff, and bounded-retry budgets.

use crate::domain::StmDomain;
use crate::txn::{TxResult, Txn};
use std::cell::Cell;
use std::time::{Duration, Instant};

/// Bounds for a retry loop: give up after a wall-clock deadline and/or a
/// maximum number of attempts, whichever comes first. The default policy is
/// unbounded (equivalent to [`atomically`]).
///
/// # Example
///
/// ```
/// use leap_stm::RetryPolicy;
/// use std::time::Duration;
/// let p = RetryPolicy::default()
///     .max_attempts(100)
///     .timeout(Duration::from_millis(5));
/// assert!(!p.is_unbounded());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryPolicy {
    max_attempts: Option<u64>,
    deadline: Option<Instant>,
}

impl RetryPolicy {
    /// Gives up after `n` attempts (`n` is clamped to at least 1).
    pub fn max_attempts(mut self, n: u64) -> Self {
        self.max_attempts = Some(n.max(1));
        self
    }

    /// Gives up once `deadline` passes.
    pub fn deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Gives up `timeout` from now (convenience over [`RetryPolicy::deadline`]).
    pub fn timeout(self, timeout: Duration) -> Self {
        self.deadline(Instant::now() + timeout)
    }

    /// Whether this policy never gives up.
    pub fn is_unbounded(&self) -> bool {
        self.max_attempts.is_none() && self.deadline.is_none()
    }

    /// Whether a loop that has made `attempts` failed attempts should stop.
    fn exhausted(&self, attempts: u64) -> bool {
        self.max_attempts.is_some_and(|m| attempts >= m)
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A bounded retry loop gave up: the transaction kept aborting until the
/// policy's deadline or attempt budget ran out. Carries how many attempts
/// were made; the transactional state is unchanged (every attempt rolled
/// back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeout {
    /// Failed attempts made before giving up.
    pub attempts: u64,
}

impl std::fmt::Display for Timeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "transaction retry budget exhausted after {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for Timeout {}

/// Thread-local retry budget installed by [`with_retry_budget`] and ticked
/// by [`Backoff::snooze`]: `deadline`/`attempts_left` mirror the policy,
/// `used` counts snoozes taken under the budget.
#[derive(Debug, Clone, Copy)]
struct BudgetState {
    deadline: Option<Instant>,
    attempts_left: u64,
    used: u64,
}

thread_local! {
    static RETRY_BUDGET: Cell<Option<BudgetState>> = const { Cell::new(None) };
}

/// Unwind payload used to abandon a hand-rolled retry loop mid-flight. Not
/// a panic in the error sense: [`with_retry_budget`] catches it (via
/// `resume_unwind`, so the panic hook never runs) and turns it into a typed
/// [`Timeout`].
struct TimeoutUnwind(Timeout);

/// Charges one retry against the installed budget, if any; unwinds with a
/// [`TimeoutUnwind`] once the budget is spent.
#[inline]
fn budget_tick() {
    RETRY_BUDGET.with(|cell| {
        let Some(mut s) = cell.get() else { return };
        s.used += 1;
        let exhausted =
            s.used >= s.attempts_left || s.deadline.is_some_and(|d| Instant::now() >= d);
        if exhausted {
            // Disarm before unwinding so backoffs run during cleanup (or
            // in an outer scope after recovery) don't re-trigger.
            cell.set(None);
            std::panic::resume_unwind(Box::new(TimeoutUnwind(Timeout { attempts: s.used })));
        }
        cell.set(Some(s));
    });
}

/// Bounded exponential backoff used between transaction attempts.
///
/// Spins for short waits and yields to the scheduler once the wait grows,
/// which matters on over-subscribed machines (the evaluation oversubscribes
/// cores heavily).
///
/// # Example
///
/// ```
/// let mut b = leap_stm::Backoff::new();
/// b.snooze();
/// b.snooze();
/// assert!(b.attempts() == 2);
/// ```
#[derive(Debug, Default)]
pub struct Backoff {
    attempt: u32,
}

impl Backoff {
    /// Spin limit exponent after which we yield instead of spinning.
    const SPIN_LIMIT: u32 = 6;
    /// Hard cap on the exponent.
    const CAP: u32 = 12;

    /// Creates a fresh backoff.
    pub fn new() -> Self {
        Backoff { attempt: 0 }
    }

    /// Number of times [`Backoff::snooze`] has been called.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Waits an exponentially growing amount before the next attempt.
    ///
    /// Also charges one retry against the thread's installed
    /// [`with_retry_budget`] scope, if any; when that budget is spent the
    /// enclosing scope returns [`Timeout`] instead of retrying further.
    pub fn snooze(&mut self) {
        budget_tick();
        let e = self.attempt.min(Self::CAP);
        if e <= Self::SPIN_LIMIT {
            for _ in 0..(1u32 << e) {
                std::hint::spin_loop();
            }
        } else {
            std::thread::yield_now();
        }
        self.attempt += 1;
    }
}

/// Runs `body` in a transaction, retrying with backoff until it commits,
/// and returns the body's result.
///
/// The closure may be executed many times; it must be idempotent apart from
/// its transactional effects. Operations that also have a non-transactional
/// prefix to re-execute (COP) should hand-roll the loop with [`Txn::begin`].
///
/// # Example
///
/// ```
/// use leap_stm::{atomically, StmDomain, TVar};
/// let d = StmDomain::new();
/// let v = TVar::new(0u64);
/// let seen = atomically(&d, |tx| {
///     let x = tx.read(&v)?;
///     tx.write(&v, x + 1)?;
///     Ok(x)
/// });
/// assert_eq!(seen, 0);
/// assert_eq!(v.naked_load(), 1);
/// ```
pub fn atomically<'d, R>(
    domain: &'d StmDomain,
    mut body: impl FnMut(&mut Txn<'d>) -> TxResult<R>,
) -> R {
    let mut backoff = Backoff::new();
    loop {
        let mut tx = Txn::begin(domain);
        match body(&mut tx) {
            Ok(r) => {
                if tx.commit().is_ok() {
                    if let Some(rec) = domain.recorder() {
                        // attempts() counts snoozes = failed tries.
                        rec.record_attempts(u64::from(backoff.attempts()) + 1);
                    }
                    return r;
                }
            }
            Err(_) => drop(tx),
        }
        backoff.snooze();
    }
}

/// Like [`atomically`], but bounded: gives up with a typed [`Timeout`] once
/// `policy`'s deadline passes or its attempt budget is spent, instead of
/// retrying forever. Timeouts are counted in the domain's
/// [`StatsSnapshot::timeouts`](crate::StatsSnapshot); every individual
/// aborted attempt still shows up under the regular abort counters.
///
/// On `Err(Timeout)` the transactional state is untouched — each attempt
/// rolled back before the loop gave up.
///
/// # Errors
///
/// [`Timeout`] when the policy is exhausted before a commit succeeds.
///
/// # Example
///
/// ```
/// use leap_stm::{atomically_with, RetryPolicy, StmDomain, TVar};
/// let d = StmDomain::new();
/// let v = TVar::new(0u64);
/// // Uncontended: commits on the first attempt.
/// let r = atomically_with(&d, RetryPolicy::default().max_attempts(3), |tx| {
///     let x = tx.read(&v)?;
///     tx.write(&v, x + 1)
/// });
/// assert!(r.is_ok());
/// assert_eq!(v.naked_load(), 1);
/// ```
pub fn atomically_with<'d, R>(
    domain: &'d StmDomain,
    policy: RetryPolicy,
    mut body: impl FnMut(&mut Txn<'d>) -> TxResult<R>,
) -> Result<R, Timeout> {
    let mut backoff = Backoff::new();
    let mut attempts: u64 = 0;
    loop {
        attempts += 1;
        let mut tx = Txn::begin(domain);
        match body(&mut tx) {
            Ok(r) => {
                if tx.commit().is_ok() {
                    if let Some(rec) = domain.recorder() {
                        rec.record_attempts(attempts);
                    }
                    return Ok(r);
                }
            }
            Err(_) => drop(tx),
        }
        if policy.exhausted(attempts) {
            domain.record_timeout();
            return Err(Timeout { attempts });
        }
        backoff.snooze();
    }
}

/// Runs `f` with a thread-local retry budget installed: every
/// [`Backoff::snooze`] on this thread (i.e. every failed transactional
/// attempt, including those inside hand-rolled loops such as the Leap-List
/// operations) charges the budget, and once it is spent the innermost
/// `with_retry_budget` scope returns `Err(Timeout)` instead of letting the
/// loop spin on.
///
/// This is how layers above bound operations whose retry loops they do not
/// own: wrap the whole call. Interrupted attempts roll back through the
/// normal [`Txn`] drop path, so the transactional state is unchanged on
/// timeout. Scopes nest; each installs its own budget and restores the
/// outer one on exit. An unbounded policy makes this a plain call.
///
/// The caller is responsible for attributing the timeout to a domain
/// ([`StmDomain::record_timeout`]) if it wants it counted — this function
/// cannot know which domain(s) `f` touched.
///
/// # Errors
///
/// [`Timeout`] when the budget ran out before `f` returned.
///
/// # Example
///
/// ```
/// use leap_stm::{with_retry_budget, RetryPolicy};
/// // Unbounded budget: just runs the closure.
/// let out = with_retry_budget(RetryPolicy::default(), || 21 * 2);
/// assert_eq!(out, Ok(42));
/// ```
pub fn with_retry_budget<R>(policy: RetryPolicy, f: impl FnOnce() -> R) -> Result<R, Timeout> {
    if policy.is_unbounded() {
        return Ok(f());
    }
    let state = BudgetState {
        deadline: policy.deadline,
        attempts_left: policy.max_attempts.unwrap_or(u64::MAX),
        used: 0,
    };
    let prev = RETRY_BUDGET.with(|cell| cell.replace(Some(state)));
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    RETRY_BUDGET.with(|cell| cell.set(prev));
    match out {
        Ok(r) => Ok(r),
        Err(payload) => match payload.downcast::<TimeoutUnwind>() {
            Ok(t) => Err(t.0),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, TVar};

    #[test]
    fn backoff_grows() {
        let mut b = Backoff::new();
        for _ in 0..20 {
            b.snooze();
        }
        assert_eq!(b.attempts(), 20);
    }

    #[test]
    fn atomically_commits() {
        let d = StmDomain::new();
        let v = TVar::new(10u64);
        atomically(&d, |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 5)
        });
        assert_eq!(v.naked_load(), 15);
    }

    #[test]
    fn atomically_retries_until_commit() {
        // Single-threaded determinism: force one failure by pre-locking the
        // var's orec through a competing write-through transaction that we
        // release from within the body on the second attempt.
        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let v = TVar::new(0u64);
        let mut blocker = Some({
            let mut t = Txn::begin(&d);
            t.write(&v, 99).unwrap();
            t
        });
        let mut calls = 0;
        atomically(&d, |tx| {
            calls += 1;
            if calls == 1 {
                // First attempt conflicts with the blocker...
                let r = tx.write(&v, 1);
                assert!(r.is_err());
                r
            } else {
                // ...which we then abort so the retry can succeed.
                if let Some(b) = blocker.take() {
                    drop(b);
                }
                tx.write(&v, 1)
            }
        });
        assert!(calls >= 2);
        assert_eq!(v.naked_load(), 1);
    }

    #[test]
    fn atomically_with_times_out_on_a_never_committing_body() {
        let d = StmDomain::new();
        let v = TVar::new(0u64);
        // The body always requests an explicit abort: no schedule commits.
        let r: Result<(), Timeout> =
            atomically_with(&d, RetryPolicy::default().max_attempts(7), |tx| {
                let _ = tx.read(&v)?;
                Err(tx.explicit_abort())
            });
        assert_eq!(r, Err(Timeout { attempts: 7 }));
        assert_eq!(d.stats().timeouts, 1);
        assert_eq!(d.stats().explicit_aborts, 7, "every attempt still counted");
        assert_eq!(v.naked_load(), 0);
    }

    #[test]
    fn atomically_with_deadline_fires_without_attempt_cap() {
        let d = StmDomain::new();
        let v = TVar::new(0u64);
        let policy = RetryPolicy::default().timeout(std::time::Duration::from_millis(10));
        let r: Result<(), Timeout> = atomically_with(&d, policy, |tx| {
            let _ = tx.read(&v)?;
            Err(tx.explicit_abort())
        });
        let t = r.expect_err("never-committing body must time out");
        assert!(t.attempts >= 1);
        assert_eq!(d.stats().timeouts, 1);
    }

    #[test]
    fn atomically_with_commits_normally_under_no_contention() {
        let d = StmDomain::new();
        let v = TVar::new(3u64);
        let r = atomically_with(&d, RetryPolicy::default().max_attempts(1), |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x * 2)?;
            Ok(x)
        });
        assert_eq!(r, Ok(3));
        assert_eq!(v.naked_load(), 6);
        assert_eq!(d.stats().timeouts, 0);
    }

    #[test]
    fn retry_budget_bounds_a_hand_rolled_loop() {
        let d = StmDomain::new();
        let v = TVar::new(0u64);
        // A hand-rolled loop in the style of the Leap-List operations that
        // can never commit; the budget must cut it off.
        let r = with_retry_budget(RetryPolicy::default().max_attempts(5), || loop {
            let mut backoff = Backoff::new();
            let mut tx = Txn::begin(&d);
            let _ = tx.read(&v);
            let _ = tx.explicit_abort();
            drop(tx);
            backoff.snooze();
        });
        let t = r.expect_err("the loop never commits");
        assert_eq!(t.attempts, 5);
        // State untouched; the thread's budget is disarmed again.
        assert_eq!(v.naked_load(), 0);
        let mut b = Backoff::new();
        b.snooze();
        assert_eq!(b.attempts(), 1, "no budget armed outside the scope");
    }

    #[test]
    fn retry_budget_scopes_nest_and_restore() {
        let inner = with_retry_budget(RetryPolicy::default().max_attempts(100), || {
            with_retry_budget(RetryPolicy::default().max_attempts(2), || {
                let mut b = Backoff::new();
                loop {
                    b.snooze();
                }
            })
        });
        // Inner scope timed out; outer scope survived and returned it.
        assert_eq!(inner, Ok(Err(Timeout { attempts: 2 })));
    }

    #[test]
    fn foreign_panics_pass_through_the_budget_scope() {
        let caught = std::panic::catch_unwind(|| {
            let _ = with_retry_budget(RetryPolicy::default().max_attempts(3), || {
                panic!("not a timeout")
            });
        });
        assert!(caught.is_err(), "real panics must not be swallowed");
    }

    #[test]
    fn timeout_formats_and_is_an_error() {
        let t = Timeout { attempts: 12 };
        let msg = format!("{t}");
        assert!(msg.contains("12 attempts"), "{msg}");
        let _: &dyn std::error::Error = &t;
    }

    #[test]
    fn recorder_sees_per_txn_attempt_counts() {
        use crate::StmRecorder;
        use std::sync::Arc;

        let d = StmDomain::with_config(Mode::WriteThrough, 10);
        let retries = Arc::new(leap_obs::Histogram::new());
        assert!(d.set_recorder(StmRecorder::new(retries.clone())));
        assert!(
            !d.set_recorder(StmRecorder::new(retries.clone())),
            "second attach is refused"
        );

        let v = TVar::new(0u64);
        // First-try success.
        atomically(&d, |tx| {
            let x = tx.read(&v)?;
            tx.write(&v, x + 1)
        });
        // One forced retry: a blocker holds v's orec on the first attempt.
        let mut blocker = Some({
            let mut t = Txn::begin(&d);
            t.write(&v, 99).unwrap();
            t
        });
        let mut calls = 0;
        atomically(&d, |tx| {
            calls += 1;
            if calls == 1 {
                tx.write(&v, 1)
            } else {
                if let Some(b) = blocker.take() {
                    drop(b);
                }
                tx.write(&v, 1)
            }
        });
        let s = retries.snapshot();
        assert_eq!(s.count, 2, "two successful transactions recorded");
        assert_eq!(s.quantile_permille(1), 1, "one committed first try");
        assert!(s.max >= 2, "the other needed at least one retry: {}", s.max);
    }
}
