//! Transactional variables.

use crate::domain::{orec_is_locked, StmDomain};
use crate::word::Word;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A word-sized shared variable usable both inside transactions
/// ([`Txn::read`](crate::Txn::read) / [`Txn::write`](crate::Txn::write))
/// and through *naked* atomic access (COP traversals, LT release phases).
///
/// # Example
///
/// ```
/// use leap_stm::{atomically, StmDomain, TVar};
/// let d = StmDomain::new();
/// let v = TVar::new(1u64);
/// atomically(&d, |tx| {
///     let x = tx.read(&v)?;
///     tx.write(&v, x + 1)
/// });
/// assert_eq!(v.naked_load(), 2);
/// ```
#[repr(transparent)]
pub struct TVar<T> {
    pub(crate) cell: AtomicUsize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Word> TVar<T> {
    /// Creates a variable holding `value`.
    pub fn new(value: T) -> Self {
        TVar {
            cell: AtomicUsize::new(value.to_word()),
            _marker: PhantomData,
        }
    }

    /// Uninstrumented atomic load (acquire ordering).
    ///
    /// This is the access used by the read-only prefix of a COP operation:
    /// no orec is consulted, so under a [write-through
    /// domain](crate::Mode::WriteThrough) the value may be tentative.
    #[inline]
    pub fn naked_load(&self) -> T {
        T::from_word(self.cell.load(Ordering::Acquire))
    }

    /// Uninstrumented atomic store (release ordering). Used by the LT
    /// release-and-update phase, after the locking transaction committed.
    #[inline]
    pub fn naked_store(&self, value: T) {
        self.cell.store(value.to_word(), Ordering::Release);
    }

    /// Uninstrumented compare-and-swap on the word representation.
    ///
    /// Used by lock-free structures (the paper's Skip-cas baseline) that
    /// share the [`TVar`]/[`TaggedPtr`](crate::TaggedPtr) machinery without
    /// running transactions.
    ///
    /// # Errors
    ///
    /// Returns the observed value if it differs from `current`.
    #[inline]
    pub fn naked_compare_exchange(&self, current: T, new: T) -> Result<T, T> {
        self.cell
            .compare_exchange(
                current.to_word(),
                new.to_word(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(T::from_word)
            .map_err(T::from_word)
    }

    /// A single-location read transaction (the alternative the paper
    /// explored for HTM): loops until it observes a value with a stable,
    /// unlocked orec. Unlike [`TVar::naked_load`], the result is never
    /// tentative, even in write-through mode.
    pub fn read_single(&self, domain: &StmDomain) -> T {
        let idx = domain.orec_index(self.addr());
        loop {
            let o1 = domain.orec_load(idx);
            if !orec_is_locked(o1) {
                let v = self.cell.load(Ordering::Acquire);
                if domain.orec_load(idx) == o1 {
                    return T::from_word(v);
                }
            }
            std::hint::spin_loop();
        }
    }

    #[inline]
    pub(crate) fn addr(&self) -> usize {
        &self.cell as *const AtomicUsize as usize
    }
}

impl<T: Word + std::fmt::Debug> std::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TVar").field(&self.naked_load()).finish()
    }
}

impl<T: Word + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaggedPtr;

    #[test]
    fn naked_roundtrip() {
        let v = TVar::new(5u64);
        assert_eq!(v.naked_load(), 5);
        v.naked_store(9);
        assert_eq!(v.naked_load(), 9);
    }

    #[test]
    fn tagged_ptr_var() {
        let node = Box::into_raw(Box::new(77u64));
        let v: TVar<TaggedPtr<u64>> = TVar::new(TaggedPtr::new(node));
        assert!(!v.naked_load().is_marked());
        v.naked_store(v.naked_load().marked());
        assert!(v.naked_load().is_marked());
        assert_eq!(v.naked_load().as_ptr(), node);
        // SAFETY: the test owns `node`; freed exactly once.
        drop(unsafe { Box::from_raw(node) });
    }

    #[test]
    fn read_single_returns_committed_value() {
        let d = StmDomain::new();
        let v = TVar::new(123u64);
        assert_eq!(v.read_single(&d), 123);
    }

    #[test]
    fn tvar_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TVar<u64>>();
        assert_send_sync::<TVar<TaggedPtr<u64>>>();
    }
}
