//! Transactional domains: the global version clock and the orec table.

use crate::recorder::StmRecorder;
use crate::stats::Stats;
use crate::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default log2 of the ownership-record table size (2^16 orecs = 512 KiB).
pub const DEFAULT_OREC_BITS: u32 = 16;

/// Capacity of the wiring and snapshot-pin registries. Bounded by the
/// number of threads concurrently inside post-commit wiring (or holding a
/// snapshot pin), so a fixed array sized well past any realistic thread
/// count never blocks in practice; a full registry spins until a slot
/// frees.
const REGISTRY_SLOTS: usize = 128;

/// Registry slot value meaning "free".
const SLOT_FREE: u64 = u64::MAX;

/// A fixed array of timestamp slots with CAS acquisition. Used twice: the
/// *wiring* registry (writers publish the clock value they sampled before
/// commit, for the duration of their post-commit wiring) and the
/// *snapshot-pin* registry (readers publish their pinned timestamp for the
/// duration of a snapshot scan).
struct SlotRegistry {
    slots: Box<[AtomicU64]>,
}

impl SlotRegistry {
    fn new() -> Self {
        SlotRegistry {
            slots: (0..REGISTRY_SLOTS)
                .map(|_| AtomicU64::new(SLOT_FREE))
                .collect(),
        }
    }

    /// Claims a free slot and stores `value` (SeqCst — see the ordering
    /// proof on [`StmDomain::snapshot_ts`]). Spins while the registry is
    /// full.
    fn acquire(&self, value: u64) -> usize {
        debug_assert_ne!(value, SLOT_FREE, "SLOT_FREE is reserved");
        loop {
            for (i, s) in self.slots.iter().enumerate() {
                // ORDERING: the Relaxed load is an optimistic filter and the
                // CAS failure value is discarded; the SeqCst success is the
                // claim the snapshot_ts proof relies on.
                if s.load(Ordering::Relaxed) == SLOT_FREE
                    // ORDERING: the CAS failure value is discarded (scan moves on).
                    && s.compare_exchange(SLOT_FREE, value, Ordering::SeqCst, Ordering::Relaxed)
                        .is_ok()
                {
                    return i;
                }
            }
            std::thread::yield_now();
        }
    }

    /// Overwrites an owned slot's value.
    fn set(&self, idx: usize, value: u64) {
        debug_assert_ne!(value, SLOT_FREE, "SLOT_FREE is reserved");
        self.slots[idx].store(value, Ordering::SeqCst);
    }

    fn release(&self, idx: usize) {
        self.slots[idx].store(SLOT_FREE, Ordering::SeqCst);
    }

    /// The smallest occupied slot value, if any slot is occupied.
    fn min_occupied(&self) -> Option<u64> {
        let mut min = SLOT_FREE;
        for s in &self.slots {
            min = min.min(s.load(Ordering::SeqCst));
        }
        (min != SLOT_FREE).then_some(min)
    }
}

/// Commit strategy for transactions in a domain.
///
/// See the crate docs for the behavioural difference; the Leap-List paper's
/// GCC-TM corresponds to [`Mode::WriteThrough`], while [`Mode::WriteBack`]
/// is the TL2 strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Lazy versioning: writes buffered, published at commit (TL2).
    #[default]
    WriteBack,
    /// Eager versioning: encounter-time locking with an undo log (GCC-TM
    /// `ml_wt`). Naked readers may observe tentative data.
    WriteThrough,
}

/// Places inside the STM engine where an attached fault hook may force a
/// failure (see [`StmDomain::set_fault_hook`]). The hook decides *whether*
/// the visit fails; the engine decides what failing means:
/// [`StmFaultPoint::Commit`] aborts the commit as a commit-time conflict,
/// [`StmFaultPoint::Validate`] fails the commit-time read validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmFaultPoint {
    /// Entry of [`Txn::commit`](crate::Txn::commit).
    Commit,
    /// Commit-time read-set validation (only reached when a concurrent
    /// commit moved the clock, i.e. under real contention).
    Validate,
}

/// A fault hook: returns `true` when the visited point should fail. Wired
/// by the store layer to a `leap-fault` injector; this crate only defines
/// the seam so it stays dependency-free.
pub type StmFaultHook = Arc<dyn Fn(StmFaultPoint) -> bool + Send + Sync>;

/// Ownership-record (versioned write-lock) encoding:
/// bit 0 = locked, bits 1.. = version number.
#[inline]
pub(crate) fn orec_is_locked(o: u64) -> bool {
    o & 1 == 1
}

#[inline]
pub(crate) fn orec_version(o: u64) -> u64 {
    o >> 1
}

#[inline]
pub(crate) fn orec_make(version: u64) -> u64 {
    version << 1
}

/// A transactional memory domain: one global version clock plus a striped
/// table of ownership records. Transactions from the same domain
/// synchronize with each other; [`TVar`](crate::TVar)s may be used with any
/// domain (the orec is chosen by hashing the variable's address).
///
/// # Example
///
/// ```
/// use leap_stm::{StmDomain, Mode};
/// let wb = StmDomain::new();
/// let wt = StmDomain::with_config(Mode::WriteThrough, 8);
/// assert_eq!(wt.mode(), Mode::WriteThrough);
/// assert!(wb.clock() <= 1);
/// ```
pub struct StmDomain {
    clock: AtomicU64,
    orecs: Box<[AtomicU64]>,
    shift: u32,
    mode: Mode,
    pub(crate) stats: Stats,
    /// Optional observability hooks; absent = zero-cost disabled path
    /// (one relaxed load on the retry loop's commit).
    recorder: OnceLock<StmRecorder>,
    /// Optional fault-injection hook; absent = one relaxed load per commit.
    fault_hook: OnceLock<StmFaultHook>,
    /// Writers mid-wiring: each slot holds the clock value the writer
    /// sampled *before* its commit bumped the clock, so every occupied
    /// slot is strictly below that writer's commit timestamp.
    wiring: SlotRegistry,
    /// Active snapshot pins: each slot holds a reader's pinned timestamp.
    pins: SlotRegistry,
}

impl StmDomain {
    /// Creates a write-back domain with the default orec table size.
    pub fn new() -> Self {
        Self::with_config(Mode::WriteBack, DEFAULT_OREC_BITS)
    }

    /// Creates a domain with an explicit commit mode and orec table size
    /// (`2^orec_bits` records). Small tables are useful in tests to force
    /// orec collisions (false conflicts).
    ///
    /// # Panics
    ///
    /// Panics if `orec_bits` is 0 or greater than 28.
    pub fn with_config(mode: Mode, orec_bits: u32) -> Self {
        assert!((1..=28).contains(&orec_bits), "orec_bits must be in 1..=28");
        let n = 1usize << orec_bits;
        let orecs = (0..n).map(|_| AtomicU64::new(0)).collect();
        StmDomain {
            clock: AtomicU64::new(0),
            orecs,
            shift: 64 - orec_bits,
            mode,
            stats: Stats::default(),
            recorder: OnceLock::new(),
            fault_hook: OnceLock::new(),
            wiring: SlotRegistry::new(),
            pins: SlotRegistry::new(),
        }
    }

    /// Attaches observability hooks (at most once per domain). Returns
    /// `false` — and leaves the existing recorder in place — if one was
    /// already attached.
    pub fn set_recorder(&self, recorder: StmRecorder) -> bool {
        self.recorder.set(recorder).is_ok()
    }

    /// The attached recorder, if any. Costs one relaxed atomic load when
    /// none is attached — the entire disabled-path overhead.
    #[inline]
    pub fn recorder(&self) -> Option<&StmRecorder> {
        self.recorder.get()
    }

    /// Attaches a fault-injection hook (at most once per domain). Returns
    /// `false` — and leaves the existing hook in place — if one was already
    /// attached. With no hook attached, every injection check is a single
    /// relaxed load.
    pub fn set_fault_hook(&self, hook: StmFaultHook) -> bool {
        self.fault_hook.set(hook).is_ok()
    }

    /// Whether the attached fault hook (if any) wants `point` to fail.
    #[inline]
    pub(crate) fn fault_fires(&self, point: StmFaultPoint) -> bool {
        match self.fault_hook.get() {
            None => false,
            Some(h) => h(point),
        }
    }

    /// Counts one bounded-retry timeout against this domain. Called by
    /// [`atomically_with`](crate::atomically_with) internally; public so
    /// wrappers that bound hand-rolled retry loops through
    /// [`with_retry_budget`](crate::with_retry_budget) can attribute their
    /// timeouts to the domain they ran against.
    pub fn record_timeout(&self) {
        // ORDERING: monotonic stat counter; no publication rides on it.
        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        leap_obs::trace::note_abort(leap_obs::trace::AbortCause::Timeout);
    }

    /// The domain's commit mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current value of the global version clock.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// A copy of the commit/abort counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    #[inline]
    pub(crate) fn clock_load(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn clock_bump(&self) -> u64 {
        // SeqCst (not just AcqRel): the snapshot watermark's correctness
        // argument places the bump in the single total order together with
        // the wiring-slot stores and the reader's clock-then-slots loads —
        // see `snapshot_ts`.
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Registers this thread as *wiring*: about to commit a transaction
    /// whose structural effects (naked pointer swings, version-bundle
    /// stamps) are published after the commit itself. Call **before**
    /// [`Txn::commit`](crate::Txn::commit); drop the ticket only after
    /// every post-commit store is done. While the ticket is live,
    /// [`StmDomain::snapshot_ts`] stays below the commit's timestamp, so
    /// no snapshot reader can observe the half-wired state.
    pub fn begin_wiring(&self) -> WiringTicket<'_> {
        let idx = self.wiring.acquire(self.clock());
        WiringTicket { domain: self, idx }
    }

    /// The newest timestamp at which every commit is **fully wired**: the
    /// clock, held back below the commit timestamp of any writer still
    /// inside its post-commit wiring window.
    ///
    /// Correctness hinges on the load order — clock **first**, wiring
    /// slots second, all SeqCst. Suppose a writer W with commit timestamp
    /// `wv ≤ ts` were still wiring when this returned `ts`. W stored its
    /// slot (holding `c`, the clock it sampled before commit, so
    /// `c < wv`) before bumping the clock; the bump precedes our clock
    /// load (we observed `wv`); the clock load precedes our slot scan. In
    /// the SeqCst total order W's slot store therefore precedes our scan,
    /// so we saw the slot occupied and returned `ts ≤ c < wv` — a
    /// contradiction. (The reverse order — slots first — admits a racing
    /// writer that registers and commits between the two loads and is
    /// unsound.) The returned value is monotone non-decreasing.
    pub fn snapshot_ts(&self) -> u64 {
        let clk = self.clock();
        match self.wiring.min_occupied() {
            Some(c) => clk.min(c),
            None => clk,
        }
    }

    /// Pins a snapshot timestamp for the lifetime of the returned guard:
    /// version-bundle pruning and retired-node reclamation will preserve
    /// everything visible at the pin's timestamp (and newer) until the pin
    /// drops. The timestamp is [`StmDomain::snapshot_ts`], sampled after
    /// the pin is registered so a concurrent pruner can never slip past
    /// it (the slot transiently holds 0 — maximally conservative — until
    /// the real timestamp replaces it).
    pub fn pin_snapshot(self: &Arc<Self>) -> SnapshotPin {
        let idx = self.pins.acquire(0);
        let ts = self.snapshot_ts();
        self.pins.set(idx, ts);
        SnapshotPin {
            domain: self.clone(),
            idx,
            ts,
        }
    }

    /// The oldest timestamp any live [`SnapshotPin`] holds, if any.
    pub fn oldest_pinned(&self) -> Option<u64> {
        self.pins.min_occupied()
    }

    /// The bound below which superseded versions are unreachable: no live
    /// pin — and, by monotonicity of [`StmDomain::snapshot_ts`], no
    /// *future* pin — can carry a timestamp below it. Version-bundle
    /// pruning keeps the newest entry at-or-below this bound plus
    /// everything above it; retired nodes whose retirement timestamp is
    /// at-or-below it are invisible to every present and future snapshot.
    pub fn prune_bound(&self) -> u64 {
        let ts = self.snapshot_ts();
        match self.oldest_pinned() {
            Some(p) => p.min(ts),
            None => ts,
        }
    }

    /// Maps a variable address to its orec index (Fibonacci hashing on the
    /// word address).
    #[inline]
    pub(crate) fn orec_index(&self, addr: usize) -> u32 {
        (((addr >> 3) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as u32
    }

    #[inline]
    pub(crate) fn orec_load(&self, idx: u32) -> u64 {
        self.orecs[idx as usize].load(Ordering::Acquire)
    }

    /// Attempts to lock an orec that currently holds `expected` (which must
    /// be unlocked).
    #[inline]
    pub(crate) fn orec_try_lock(&self, idx: u32, expected: u64) -> bool {
        debug_assert!(!orec_is_locked(expected));
        self.orecs[idx as usize]
            // ORDERING: the failure value is discarded (caller just retries
            // or aborts); success is AcqRel, pairing with `orec_unlock_to`.
            .compare_exchange(expected, expected | 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Unlocks an orec, installing a new version.
    #[inline]
    pub(crate) fn orec_unlock_to(&self, idx: u32, version: u64) {
        self.orecs[idx as usize].store(orec_make(version), Ordering::Release);
    }

    /// Unlocks an orec, restoring the exact pre-lock word (used on abort).
    #[inline]
    pub(crate) fn orec_restore(&self, idx: u32, old: u64) {
        debug_assert!(!orec_is_locked(old));
        self.orecs[idx as usize].store(old, Ordering::Release);
    }

    /// Number of ownership records (for diagnostics).
    pub fn orec_count(&self) -> usize {
        self.orecs.len()
    }
}

/// RAII registration in the wiring registry ([`StmDomain::begin_wiring`]):
/// while live, [`StmDomain::snapshot_ts`] cannot advance to (or past) the
/// commit timestamp of the transaction committed under it. Dropping it —
/// on the success path after the last post-commit store, or implicitly on
/// an abort path — releases the watermark.
#[must_use = "dropping the ticket immediately un-fences the wiring window"]
pub struct WiringTicket<'d> {
    domain: &'d StmDomain,
    idx: usize,
}

impl Drop for WiringTicket<'_> {
    fn drop(&mut self) {
        self.domain.wiring.release(self.idx);
    }
}

impl std::fmt::Debug for WiringTicket<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WiringTicket")
            .field("idx", &self.idx)
            .finish()
    }
}

/// An owned snapshot pin ([`StmDomain::pin_snapshot`]): carries the pinned
/// timestamp and, while live, prevents reclamation of any version visible
/// at it. Holds the domain alive; dropping releases the pin.
#[must_use = "the snapshot is only protected while the pin is held"]
pub struct SnapshotPin {
    domain: Arc<StmDomain>,
    idx: usize,
    ts: u64,
}

impl SnapshotPin {
    /// The pinned snapshot timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// Whether this pin was taken on `domain` (callers that mix domains
    /// can assert a pin matches the structure they traverse).
    pub fn pinned_on(&self, domain: &StmDomain) -> bool {
        std::ptr::eq(&*self.domain, domain)
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        self.domain.pins.release(self.idx);
    }
}

impl std::fmt::Debug for SnapshotPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotPin").field("ts", &self.ts).finish()
    }
}

impl Default for StmDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StmDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmDomain")
            .field("mode", &self.mode)
            .field("clock", &self.clock())
            .field("orecs", &self.orecs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orec_encoding() {
        assert!(!orec_is_locked(orec_make(5)));
        assert!(orec_is_locked(orec_make(5) | 1));
        assert_eq!(orec_version(orec_make(5)), 5);
        assert_eq!(orec_version(orec_make(5) | 1), 5);
    }

    #[test]
    fn clock_bumps_monotonically() {
        let d = StmDomain::new();
        let a = d.clock_bump();
        let b = d.clock_bump();
        assert!(b > a);
        assert_eq!(d.clock(), b);
    }

    #[test]
    fn orec_index_in_range_and_deterministic() {
        let d = StmDomain::with_config(Mode::WriteBack, 4);
        for addr in (0..4096usize).step_by(8) {
            let i = d.orec_index(addr);
            assert!((i as usize) < d.orec_count());
            assert_eq!(i, d.orec_index(addr));
        }
    }

    #[test]
    fn lock_unlock_cycle() {
        let d = StmDomain::new();
        let idx = 3;
        let o = d.orec_load(idx);
        assert!(d.orec_try_lock(idx, o));
        assert!(orec_is_locked(d.orec_load(idx)));
        // Double lock fails.
        assert!(!d.orec_try_lock(idx, o));
        d.orec_unlock_to(idx, 9);
        assert_eq!(orec_version(d.orec_load(idx)), 9);
        assert!(!orec_is_locked(d.orec_load(idx)));
    }

    #[test]
    fn restore_returns_original_version() {
        let d = StmDomain::new();
        let idx = 5;
        d.orec_unlock_to(idx, 42);
        let o = d.orec_load(idx);
        assert!(d.orec_try_lock(idx, o));
        d.orec_restore(idx, o);
        assert_eq!(d.orec_load(idx), o);
    }

    #[test]
    #[should_panic(expected = "orec_bits")]
    fn rejects_zero_orec_bits() {
        let _ = StmDomain::with_config(Mode::WriteBack, 0);
    }

    #[test]
    fn wiring_ticket_holds_snapshot_ts_below_commit() {
        let d = StmDomain::new();
        // No writers wiring: the watermark is the clock.
        assert_eq!(d.snapshot_ts(), d.clock());
        let ticket = d.begin_wiring();
        let before = d.clock();
        let wv = d.clock_bump(); // "commit"
        assert_eq!(wv, before + 1);
        // Mid-wiring: the watermark stays strictly below wv.
        assert!(d.snapshot_ts() < wv);
        assert_eq!(d.snapshot_ts(), before);
        drop(ticket);
        assert_eq!(d.snapshot_ts(), wv);
    }

    #[test]
    fn snapshot_ts_is_min_over_concurrent_wirers() {
        let d = StmDomain::new();
        let t1 = d.begin_wiring(); // holds clock=0
        d.clock_bump();
        let t2 = d.begin_wiring(); // holds clock=1
        d.clock_bump();
        assert_eq!(d.snapshot_ts(), 0);
        drop(t1);
        assert_eq!(d.snapshot_ts(), 1);
        drop(t2);
        assert_eq!(d.snapshot_ts(), 2);
    }

    #[test]
    fn snapshot_pin_sets_prune_bound() {
        let d = Arc::new(StmDomain::new());
        d.clock_bump();
        d.clock_bump();
        assert_eq!(d.oldest_pinned(), None);
        assert_eq!(d.prune_bound(), 2);
        let pin = d.pin_snapshot();
        assert_eq!(pin.ts(), 2);
        assert!(pin.pinned_on(&d));
        d.clock_bump();
        // The pin holds the bound back even as the clock moves on.
        assert_eq!(d.prune_bound(), 2);
        let pin2 = d.pin_snapshot();
        assert_eq!(pin2.ts(), 3);
        drop(pin);
        assert_eq!(d.prune_bound(), 3);
        drop(pin2);
        assert_eq!(d.prune_bound(), 3);
        assert_eq!(d.oldest_pinned(), None);
    }

    #[test]
    fn pin_under_wiring_sees_held_back_ts() {
        let d = Arc::new(StmDomain::new());
        let ticket = d.begin_wiring();
        let wv = d.clock_bump();
        let pin = d.pin_snapshot();
        assert!(pin.ts() < wv, "a pin taken mid-wiring must not see wv");
        drop(ticket);
        let pin2 = d.pin_snapshot();
        assert_eq!(pin2.ts(), wv);
        // prune_bound respects the older pin.
        assert_eq!(d.prune_bound(), pin.ts());
    }

    #[test]
    fn registry_slots_recycle() {
        let d = StmDomain::new();
        // Far more acquire/release cycles than slots: indexes recycle.
        for _ in 0..1000 {
            let t = d.begin_wiring();
            drop(t);
        }
        assert_eq!(d.snapshot_ts(), d.clock());
    }
}
