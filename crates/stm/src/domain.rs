//! Transactional domains: the global version clock and the orec table.

use crate::recorder::StmRecorder;
use crate::stats::Stats;
use crate::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default log2 of the ownership-record table size (2^16 orecs = 512 KiB).
pub const DEFAULT_OREC_BITS: u32 = 16;

/// Commit strategy for transactions in a domain.
///
/// See the crate docs for the behavioural difference; the Leap-List paper's
/// GCC-TM corresponds to [`Mode::WriteThrough`], while [`Mode::WriteBack`]
/// is the TL2 strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Lazy versioning: writes buffered, published at commit (TL2).
    #[default]
    WriteBack,
    /// Eager versioning: encounter-time locking with an undo log (GCC-TM
    /// `ml_wt`). Naked readers may observe tentative data.
    WriteThrough,
}

/// Places inside the STM engine where an attached fault hook may force a
/// failure (see [`StmDomain::set_fault_hook`]). The hook decides *whether*
/// the visit fails; the engine decides what failing means:
/// [`StmFaultPoint::Commit`] aborts the commit as a commit-time conflict,
/// [`StmFaultPoint::Validate`] fails the commit-time read validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmFaultPoint {
    /// Entry of [`Txn::commit`](crate::Txn::commit).
    Commit,
    /// Commit-time read-set validation (only reached when a concurrent
    /// commit moved the clock, i.e. under real contention).
    Validate,
}

/// A fault hook: returns `true` when the visited point should fail. Wired
/// by the store layer to a `leap-fault` injector; this crate only defines
/// the seam so it stays dependency-free.
pub type StmFaultHook = Arc<dyn Fn(StmFaultPoint) -> bool + Send + Sync>;

/// Ownership-record (versioned write-lock) encoding:
/// bit 0 = locked, bits 1.. = version number.
#[inline]
pub(crate) fn orec_is_locked(o: u64) -> bool {
    o & 1 == 1
}

#[inline]
pub(crate) fn orec_version(o: u64) -> u64 {
    o >> 1
}

#[inline]
pub(crate) fn orec_make(version: u64) -> u64 {
    version << 1
}

/// A transactional memory domain: one global version clock plus a striped
/// table of ownership records. Transactions from the same domain
/// synchronize with each other; [`TVar`](crate::TVar)s may be used with any
/// domain (the orec is chosen by hashing the variable's address).
///
/// # Example
///
/// ```
/// use leap_stm::{StmDomain, Mode};
/// let wb = StmDomain::new();
/// let wt = StmDomain::with_config(Mode::WriteThrough, 8);
/// assert_eq!(wt.mode(), Mode::WriteThrough);
/// assert!(wb.clock() <= 1);
/// ```
pub struct StmDomain {
    clock: AtomicU64,
    orecs: Box<[AtomicU64]>,
    shift: u32,
    mode: Mode,
    pub(crate) stats: Stats,
    /// Optional observability hooks; absent = zero-cost disabled path
    /// (one relaxed load on the retry loop's commit).
    recorder: OnceLock<StmRecorder>,
    /// Optional fault-injection hook; absent = one relaxed load per commit.
    fault_hook: OnceLock<StmFaultHook>,
}

impl StmDomain {
    /// Creates a write-back domain with the default orec table size.
    pub fn new() -> Self {
        Self::with_config(Mode::WriteBack, DEFAULT_OREC_BITS)
    }

    /// Creates a domain with an explicit commit mode and orec table size
    /// (`2^orec_bits` records). Small tables are useful in tests to force
    /// orec collisions (false conflicts).
    ///
    /// # Panics
    ///
    /// Panics if `orec_bits` is 0 or greater than 28.
    pub fn with_config(mode: Mode, orec_bits: u32) -> Self {
        assert!((1..=28).contains(&orec_bits), "orec_bits must be in 1..=28");
        let n = 1usize << orec_bits;
        let orecs = (0..n).map(|_| AtomicU64::new(0)).collect();
        StmDomain {
            clock: AtomicU64::new(0),
            orecs,
            shift: 64 - orec_bits,
            mode,
            stats: Stats::default(),
            recorder: OnceLock::new(),
            fault_hook: OnceLock::new(),
        }
    }

    /// Attaches observability hooks (at most once per domain). Returns
    /// `false` — and leaves the existing recorder in place — if one was
    /// already attached.
    pub fn set_recorder(&self, recorder: StmRecorder) -> bool {
        self.recorder.set(recorder).is_ok()
    }

    /// The attached recorder, if any. Costs one relaxed atomic load when
    /// none is attached — the entire disabled-path overhead.
    #[inline]
    pub fn recorder(&self) -> Option<&StmRecorder> {
        self.recorder.get()
    }

    /// Attaches a fault-injection hook (at most once per domain). Returns
    /// `false` — and leaves the existing hook in place — if one was already
    /// attached. With no hook attached, every injection check is a single
    /// relaxed load.
    pub fn set_fault_hook(&self, hook: StmFaultHook) -> bool {
        self.fault_hook.set(hook).is_ok()
    }

    /// Whether the attached fault hook (if any) wants `point` to fail.
    #[inline]
    pub(crate) fn fault_fires(&self, point: StmFaultPoint) -> bool {
        match self.fault_hook.get() {
            None => false,
            Some(h) => h(point),
        }
    }

    /// Counts one bounded-retry timeout against this domain. Called by
    /// [`atomically_with`](crate::atomically_with) internally; public so
    /// wrappers that bound hand-rolled retry loops through
    /// [`with_retry_budget`](crate::with_retry_budget) can attribute their
    /// timeouts to the domain they ran against.
    pub fn record_timeout(&self) {
        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
        leap_obs::trace::note_abort(leap_obs::trace::AbortCause::Timeout);
    }

    /// The domain's commit mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Current value of the global version clock.
    pub fn clock(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// A copy of the commit/abort counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    #[inline]
    pub(crate) fn clock_load(&self) -> u64 {
        self.clock.load(Ordering::Acquire)
    }

    #[inline]
    pub(crate) fn clock_bump(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Maps a variable address to its orec index (Fibonacci hashing on the
    /// word address).
    #[inline]
    pub(crate) fn orec_index(&self, addr: usize) -> u32 {
        (((addr >> 3) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as u32
    }

    #[inline]
    pub(crate) fn orec_load(&self, idx: u32) -> u64 {
        self.orecs[idx as usize].load(Ordering::Acquire)
    }

    /// Attempts to lock an orec that currently holds `expected` (which must
    /// be unlocked).
    #[inline]
    pub(crate) fn orec_try_lock(&self, idx: u32, expected: u64) -> bool {
        debug_assert!(!orec_is_locked(expected));
        self.orecs[idx as usize]
            .compare_exchange(expected, expected | 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }

    /// Unlocks an orec, installing a new version.
    #[inline]
    pub(crate) fn orec_unlock_to(&self, idx: u32, version: u64) {
        self.orecs[idx as usize].store(orec_make(version), Ordering::Release);
    }

    /// Unlocks an orec, restoring the exact pre-lock word (used on abort).
    #[inline]
    pub(crate) fn orec_restore(&self, idx: u32, old: u64) {
        debug_assert!(!orec_is_locked(old));
        self.orecs[idx as usize].store(old, Ordering::Release);
    }

    /// Number of ownership records (for diagnostics).
    pub fn orec_count(&self) -> usize {
        self.orecs.len()
    }
}

impl Default for StmDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StmDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StmDomain")
            .field("mode", &self.mode)
            .field("clock", &self.clock())
            .field("orecs", &self.orecs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orec_encoding() {
        assert!(!orec_is_locked(orec_make(5)));
        assert!(orec_is_locked(orec_make(5) | 1));
        assert_eq!(orec_version(orec_make(5)), 5);
        assert_eq!(orec_version(orec_make(5) | 1), 5);
    }

    #[test]
    fn clock_bumps_monotonically() {
        let d = StmDomain::new();
        let a = d.clock_bump();
        let b = d.clock_bump();
        assert!(b > a);
        assert_eq!(d.clock(), b);
    }

    #[test]
    fn orec_index_in_range_and_deterministic() {
        let d = StmDomain::with_config(Mode::WriteBack, 4);
        for addr in (0..4096usize).step_by(8) {
            let i = d.orec_index(addr);
            assert!((i as usize) < d.orec_count());
            assert_eq!(i, d.orec_index(addr));
        }
    }

    #[test]
    fn lock_unlock_cycle() {
        let d = StmDomain::new();
        let idx = 3;
        let o = d.orec_load(idx);
        assert!(d.orec_try_lock(idx, o));
        assert!(orec_is_locked(d.orec_load(idx)));
        // Double lock fails.
        assert!(!d.orec_try_lock(idx, o));
        d.orec_unlock_to(idx, 9);
        assert_eq!(orec_version(d.orec_load(idx)), 9);
        assert!(!orec_is_locked(d.orec_load(idx)));
    }

    #[test]
    fn restore_returns_original_version() {
        let d = StmDomain::new();
        let idx = 5;
        d.orec_unlock_to(idx, 42);
        let o = d.orec_load(idx);
        assert!(d.orec_try_lock(idx, o));
        d.orec_restore(idx, o);
        assert_eq!(d.orec_load(idx), o);
    }

    #[test]
    #[should_panic(expected = "orec_bits")]
    fn rejects_zero_orec_bits() {
        let _ = StmDomain::with_config(Mode::WriteBack, 0);
    }
}
