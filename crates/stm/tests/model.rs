//! Property-based tests: transactional execution must agree with a
//! sequential model, and aborted transactions must leave no trace.

use leap_stm::{Abort, Mode, StmDomain, TVar, Txn};
use proptest::prelude::*;

const N_VARS: usize = 6;

/// One step inside a transaction.
#[derive(Debug, Clone)]
enum Step {
    Read(usize),
    /// Write var <- value derived from last read + constant (exercises
    /// read-write dependencies, not just blind stores).
    WriteConst(usize, u64),
    WriteDerived(usize),
}

#[derive(Debug, Clone)]
struct TxnScript {
    steps: Vec<Step>,
    /// Whether the transaction aborts at the end instead of committing.
    abort: bool,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..N_VARS).prop_map(Step::Read),
        ((0..N_VARS), 0..100u64).prop_map(|(v, c)| Step::WriteConst(v, c)),
        (0..N_VARS).prop_map(Step::WriteDerived),
    ]
}

fn script_strategy() -> impl Strategy<Value = Vec<TxnScript>> {
    prop::collection::vec(
        (prop::collection::vec(step_strategy(), 1..8), any::<bool>())
            .prop_map(|(steps, abort)| TxnScript { steps, abort }),
        1..12,
    )
}

/// Runs a script sequentially against a plain array (the model).
fn run_model(scripts: &[TxnScript]) -> Vec<u64> {
    let mut vars = vec![0u64; N_VARS];
    for s in scripts {
        if s.abort {
            continue; // aborted transactions must have no effect
        }
        let mut last_read = 0u64;
        for step in &s.steps {
            match *step {
                Step::Read(v) => last_read = vars[v],
                Step::WriteConst(v, c) => vars[v] = c,
                Step::WriteDerived(v) => vars[v] = last_read.wrapping_add(1),
            }
        }
    }
    vars
}

/// Runs the same script through real transactions (single-threaded, so
/// there are no conflicts; commits must all succeed).
fn run_stm(scripts: &[TxnScript], mode: Mode) -> Vec<u64> {
    let domain = StmDomain::with_config(mode, 10);
    let vars: Vec<TVar<u64>> = (0..N_VARS).map(|_| TVar::new(0)).collect();
    for s in scripts {
        let mut tx = Txn::begin(&domain);
        let mut last_read = 0u64;
        let mut failed = false;
        for step in &s.steps {
            let r: Result<(), Abort> = match *step {
                Step::Read(v) => tx.read(&vars[v]).map(|x| last_read = x),
                Step::WriteConst(v, c) => tx.write(&vars[v], c),
                Step::WriteDerived(v) => tx.write(&vars[v], last_read.wrapping_add(1)),
            };
            if r.is_err() {
                failed = true;
                break;
            }
        }
        assert!(!failed, "single-threaded transaction must not conflict");
        if s.abort {
            let _ = tx.explicit_abort();
            drop(tx);
        } else {
            tx.commit().expect("single-threaded commit must succeed");
        }
    }
    vars.iter().map(|v| v.naked_load()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_back_matches_sequential_model(scripts in script_strategy()) {
        prop_assert_eq!(run_stm(&scripts, Mode::WriteBack), run_model(&scripts));
    }

    #[test]
    fn write_through_matches_sequential_model(scripts in script_strategy()) {
        prop_assert_eq!(run_stm(&scripts, Mode::WriteThrough), run_model(&scripts));
    }

    #[test]
    fn modes_agree_with_each_other(scripts in script_strategy()) {
        prop_assert_eq!(
            run_stm(&scripts, Mode::WriteBack),
            run_stm(&scripts, Mode::WriteThrough)
        );
    }

    #[test]
    fn tiny_orec_table_matches_model(scripts in script_strategy()) {
        // Orec collisions galore: correctness must be unaffected
        // single-threaded (collisions only matter across transactions).
        let domain = StmDomain::with_config(Mode::WriteBack, 1);
        let vars: Vec<TVar<u64>> = (0..N_VARS).map(|_| TVar::new(0)).collect();
        for s in &scripts {
            let mut tx = Txn::begin(&domain);
            let mut last_read = 0u64;
            for step in &s.steps {
                match *step {
                    Step::Read(v) => last_read = tx.read(&vars[v]).unwrap(),
                    Step::WriteConst(v, c) => tx.write(&vars[v], c).unwrap(),
                    Step::WriteDerived(v) => {
                        tx.write(&vars[v], last_read.wrapping_add(1)).unwrap()
                    }
                }
            }
            if s.abort {
                drop(tx);
            } else {
                tx.commit().unwrap();
            }
        }
        let got: Vec<u64> = vars.iter().map(|v| v.naked_load()).collect();
        prop_assert_eq!(got, run_model(&scripts));
    }
}
