//! Multi-threaded correctness tests for both STM modes: lost updates,
//! invariant preservation (bank transfers), snapshot consistency of
//! read-only transactions, and isolation of naked readers under write-back.

use leap_stm::{atomically, Mode, StmDomain, TVar};
use std::sync::Arc;

fn domains() -> Vec<Arc<StmDomain>> {
    vec![
        Arc::new(StmDomain::with_config(Mode::WriteBack, 12)),
        Arc::new(StmDomain::with_config(Mode::WriteThrough, 12)),
    ]
}

#[test]
fn no_lost_updates_on_shared_counter() {
    for domain in domains() {
        let counter = Arc::new(TVar::new(0u64));
        let threads = 4;
        let per_thread = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let d = domain.clone();
                let c = counter.clone();
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        atomically(&d, |tx| {
                            let x = tx.read(&*c)?;
                            tx.write(&*c, x + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.naked_load(),
            threads as u64 * per_thread,
            "mode {:?}",
            domain.mode()
        );
    }
}

#[test]
fn bank_transfers_preserve_total() {
    for domain in domains() {
        let n_accounts = 16;
        let initial = 1_000u64;
        let accounts: Arc<Vec<TVar<u64>>> =
            Arc::new((0..n_accounts).map(|_| TVar::new(initial)).collect());
        let threads = 4;
        let transfers = 2_000;

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let d = domain.clone();
                let accts = accounts.clone();
                std::thread::spawn(move || {
                    let mut rng = (t as u64 + 1) * 0x9E37_79B9;
                    let mut next = move || {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        rng
                    };
                    for _ in 0..transfers {
                        let from = (next() % n_accounts as u64) as usize;
                        let to = (next() % n_accounts as u64) as usize;
                        let amount = next() % 10;
                        atomically(&d, |tx| {
                            let f = tx.read(&accts[from])?;
                            let t_ = tx.read(&accts[to])?;
                            if f >= amount && from != to {
                                tx.write(&accts[from], f - amount)?;
                                tx.write(&accts[to], t_ + amount)?;
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();

        // Concurrent auditors: every consistent snapshot must show the same
        // total.
        let audit_handles: Vec<_> = (0..2)
            .map(|_| {
                let d = domain.clone();
                let accts = accounts.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        let total = atomically(&d, |tx| {
                            let mut sum = 0u64;
                            for a in accts.iter() {
                                sum += tx.read(a)?;
                            }
                            Ok(sum)
                        });
                        assert_eq!(
                            total,
                            n_accounts as u64 * initial,
                            "read-only snapshot saw a torn total"
                        );
                    }
                })
            })
            .collect();

        for h in handles {
            h.join().unwrap();
        }
        for h in audit_handles {
            h.join().unwrap();
        }
        let final_total: u64 = accounts.iter().map(|a| a.naked_load()).sum();
        assert_eq!(final_total, n_accounts as u64 * initial);
    }
}

#[test]
fn wb_naked_readers_never_observe_aborted_writes() {
    // Writers repeatedly write a poison value and then explicitly abort.
    // Under write-back, naked readers must never see the poison.
    let domain = Arc::new(StmDomain::with_config(Mode::WriteBack, 12));
    let v = Arc::new(TVar::new(0u64));
    const POISON: u64 = u64::MAX;

    let writer = {
        let d = domain.clone();
        let v = v.clone();
        std::thread::spawn(move || {
            for i in 0..5_000u64 {
                let mut tx = leap_stm::Txn::begin(&d);
                tx.write(&*v, POISON).unwrap();
                if i % 2 == 0 {
                    let _ = tx.explicit_abort();
                    drop(tx); // rollback: poison must never surface
                } else {
                    // Overwrite with a benign value before committing.
                    tx.write(&*v, i).unwrap();
                    let _ = tx.commit();
                }
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let v = v.clone();
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    assert_ne!(v.naked_load(), POISON, "tentative write observed");
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}

#[test]
fn read_single_is_never_torn_under_writers() {
    // One writer commits (a, a) pairs transactionally; read_single of each
    // var individually always yields a committed (not mid-commit) value.
    for domain in domains() {
        let a = Arc::new(TVar::new(0u64));
        let d2 = domain.clone();
        let a2 = a.clone();
        let writer = std::thread::spawn(move || {
            for i in 1..=20_000u64 {
                atomically(&d2, |tx| tx.write(&*a2, i))
            }
        });
        let mut last = 0;
        for _ in 0..20_000 {
            let x = a.read_single(&domain);
            assert!(x >= last, "read_single went backwards: {x} < {last}");
            last = x;
        }
        writer.join().unwrap();
    }
}

#[test]
fn stats_accumulate_under_contention() {
    let domain = Arc::new(StmDomain::with_config(Mode::WriteBack, 4));
    let v = Arc::new(TVar::new(0u64));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let d = domain.clone();
            let v = v.clone();
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    atomically(&d, |tx| {
                        let x = tx.read(&*v)?;
                        tx.write(&*v, x + 1)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = domain.stats();
    assert_eq!(v.naked_load(), 4_000);
    assert_eq!(s.commits, 4_000);
    // Aborts are workload-dependent, but the counters must be consistent.
    assert_eq!(s.explicit_aborts, 0);
}
