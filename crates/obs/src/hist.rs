//! Log-linear (HDR-style) latency histograms.
//!
//! Values are bucketed by order of magnitude (base 2) with
//! `2^SUB_BITS = 32` linear sub-buckets per octave, so every bucket's
//! width is below ~3.2% of the values it holds. Recording is one atomic
//! fetch-add; quantiles come from a snapshot by exact nearest-rank walk
//! over the buckets, so a reported quantile is the **upper bound** of the
//! bucket containing the exact rank — within one bucket width of the
//! exact quantile, and clamped to the recorded maximum (the histogram
//! keeps a `fetch_max` of the raw values).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-bucket resolution per octave (as a power of two).
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// Total buckets needed to cover all of `u64`.
/// Indices `0..2*SUB` are exact (one value per bucket); each further
/// octave adds `SUB` buckets, up to the octave of `u64::MAX`.
const BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) << SUB_BITS;

/// Bucket index for a value: monotone in `v`, exact below `2*SUB`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        return v as usize;
    }
    let top = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let shift = top - SUB_BITS;
    let sub = ((v >> shift) - SUB) as usize;
    (((top - SUB_BITS + 1) as usize) << SUB_BITS) | sub
}

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    if i < (2 * SUB) as usize {
        return (i as u64, i as u64);
    }
    let octave = (i >> SUB_BITS) as u32; // >= 2
    let sub = (i as u64) & (SUB - 1);
    let shift = octave - 1;
    let lo = (SUB + sub) << shift;
    (lo, lo + ((1u64 << shift) - 1))
}

/// A concurrent log-linear histogram of `u64` samples (latencies in
/// nanoseconds, retry counts, sizes — any non-negative measure).
///
/// ```
/// let h = leap_obs::Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 100);
/// assert_eq!(s.max, 100);
/// assert_eq!(s.quantile_permille(500), 50);
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// A fresh empty histogram (~15 KiB of buckets).
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; safe from any thread. The running
    /// sum saturates at `u64::MAX` instead of wrapping, so a minutes-long
    /// run recording large nanosecond totals degrades to a pinned mean
    /// rather than a nonsense one.
    #[inline]
    pub fn record(&self, v: u64) {
        // ORDERING: monotone histogram cells; snapshot readers tolerate
        // racing increments (they re-derive count from the buckets).
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // ORDERING: as above — monotone stat cell.
        self.count.fetch_add(1, Ordering::Relaxed);
        // fetch_add cannot saturate; a CAS loop can. The closure always
        // returns Some, so this never fails.
        let _ = self
            .sum
            // ORDERING: as above — monotone stat cell.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        // ORDERING: eventual high-water mark; readers tolerate lag.
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        // ORDERING: eventually-consistent stat read.
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts for quantile queries.
    /// (Concurrent recording keeps running; the snapshot is internally
    /// consistent enough for monitoring: `count >= sum of buckets` races
    /// are reconciled by re-deriving `count` from the copied buckets.)
    pub fn snapshot(&self) -> HistSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            // ORDERING: monitoring snapshot; per-cell staleness is fine
            // and `count` is re-derived from the copied buckets.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistSnapshot {
            buckets,
            count,
            // ORDERING: as above — monitoring snapshot read.
            sum: self.sum.load(Ordering::Relaxed),
            // ORDERING: as above — monitoring snapshot read.
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// A consistent view of a [`Histogram`] for quantile queries and
/// rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`HistSnapshot::nonzero_buckets`]
    /// for the value ranges).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (saturates at `u64::MAX`; never wraps).
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (zero samples).
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Nearest-rank quantile at `pm` per-mille (`500` = p50, `990` = p99,
    /// `999` = p99.9). Returns 0 on an empty snapshot. The result is the
    /// upper bound of the bucket holding the exact rank, clamped to the
    /// recorded max — always within one bucket width above the exact
    /// quantile.
    pub fn quantile_permille(&self, pm: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (self.count * pm).div_ceil(1000).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_range(i).1.min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile_permille(950)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile_permille(999)
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The snapshot as the registry's standard JSON latency object:
    /// `{"count","p50_ns","p95_ns","p99_ns","p999_ns","max_ns","mean_ns"}`.
    pub fn to_json_ns(&self) -> crate::Json {
        crate::Json::obj()
            .field("count", crate::Json::U64(self.count))
            .field("p50_ns", crate::Json::U64(self.p50()))
            .field("p95_ns", crate::Json::U64(self.p95()))
            .field("p99_ns", crate::Json::U64(self.p99()))
            .field("p999_ns", crate::Json::U64(self.p999()))
            .field("max_ns", crate::Json::U64(self.max))
            .field("mean_ns", crate::Json::U64(self.mean()))
    }

    /// The snapshot as a Prometheus histogram block: `# TYPE` line,
    /// cumulative `_bucket{le=..}` series over the non-empty buckets plus
    /// `+Inf`, and `_sum`/`_count`.
    pub fn to_prometheus(&self, name: &str) -> String {
        let mut out = format!("# TYPE {name} histogram\n");
        let mut cum = 0u64;
        for (le, count) in self.nonzero_buckets() {
            cum += count;
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", self.count));
        out.push_str(&format!(
            "{name}_sum {}\n{name}_count {}\n",
            self.sum, self.count
        ));
        out
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs, in value
    /// order — the shape Prometheus' cumulative `le` buckets are built
    /// from.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_range(i).1, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn buckets_are_monotone_and_tile_u64() {
        // Exhaustive over the exact region, spot checks beyond.
        for v in 0..(4 * SUB) {
            let i = bucket_index(v);
            let (lo, hi) = bucket_range(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
        }
        let mut vs: Vec<u64> = (0..64)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        vs.sort_unstable();
        let mut prev = 0;
        for v in vs {
            let i = bucket_index(v);
            let (lo, hi) = bucket_range(i);
            assert!(lo <= v && v <= hi, "v={v} i={i} lo={lo} hi={hi}");
            assert!(i >= prev, "bucket index must be monotone in v");
            prev = i;
        }
        let top = bucket_index(u64::MAX);
        assert!(top < BUCKETS, "u64::MAX fits: {top} < {BUCKETS}");
        assert_eq!(bucket_range(top).1, u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 17, 63] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.max, 63);
        assert_eq!(s.quantile_permille(500), 5);
        assert_eq!(s.quantile_permille(1000), 63);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p999(), 0);
        assert_eq!(s.mean(), 0);
        assert_eq!(s.max, 0);
        assert!(s.nonzero_buckets().is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Satellite: log-linear quantiles are within one bucket width of
        /// the exact quantile, for arbitrary u64 samples and all the
        /// quantiles the registry reports.
        #[test]
        fn quantiles_within_one_bucket_width_of_exact(
            samples in prop::collection::vec(any::<u64>(), 1..400),
            pm in 1u64..=1000,
        ) {
            let h = Histogram::new();
            for &v in &samples {
                h.record(v);
            }
            let snap = h.snapshot();
            let approx = snap.quantile_permille(pm);

            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let rank = (sorted.len() as u64 * pm).div_ceil(1000).max(1);
            let exact = sorted[rank as usize - 1];

            let (lo, hi) = bucket_range(bucket_index(exact));
            let width = hi - lo;
            prop_assert!(
                approx >= exact && approx - exact <= width,
                "pm={} exact={} approx={} bucket=[{},{}]",
                pm, exact, approx, lo, hi
            );
        }
    }

    /// Satellite: near-`u64::MAX` samples neither panic nor wrap — the
    /// running sum pins at `u64::MAX` and quantiles stay sane.
    #[test]
    fn near_max_samples_saturate_the_sum_without_panicking() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(u64::MAX / 2);
        h.record(7);
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile_permille(1000), u64::MAX);
        assert!(s.mean() <= u64::MAX / 4 + 1, "mean derived from pinned sum");
        // Prometheus rendering of the saturated snapshot stays well-formed.
        let prom = s.to_prometheus("t");
        assert!(prom.contains(&format!("t_sum {}\n", u64::MAX)));
        assert!(prom.contains("t_count 4\n"));
    }

    /// Satellite: concurrent recording loses nothing — N threads x M
    /// samples leave exactly N*M counted, with the per-bucket totals
    /// matching a sequential recording of the same multiset.
    #[test]
    fn concurrent_recording_is_exact() {
        let threads = 8u64;
        let per = 5_000u64;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        // Deterministic multiset independent of thread id.
                        h.record((i * 2654435761) % 1_000_000);
                        let _ = t;
                    }
                })
            })
            .collect();
        for hd in handles {
            hd.join().unwrap();
        }
        let concurrent = h.snapshot();
        assert_eq!(concurrent.count, threads * per);

        let seq = Histogram::new();
        for _ in 0..threads {
            for i in 0..per {
                seq.record((i * 2654435761) % 1_000_000);
            }
        }
        let sequential = seq.snapshot();
        assert_eq!(concurrent.buckets, sequential.buckets);
        assert_eq!(concurrent.sum, sequential.sum);
        assert_eq!(concurrent.max, sequential.max);
    }
}
