//! A fixed-capacity, lock-free structured event timeline.
//!
//! The ring records [`Event`]s — small structured facts with a global
//! sequence number and a monotonic timestamp — from any thread without
//! blocking. Capacity is fixed at construction; on overflow the ring
//! **drops the oldest events** and the loss is *never silent*: every
//! [`RingSnapshot`] carries a monotone [`RingSnapshot::dropped`] counter
//! (`total events published − capacity`, floored at zero), so a consumer
//! can always tell how much of the timeline it missed.
//!
//! # Protocol
//!
//! Publishing claims a global ticket `t` with one `fetch_add` on `head`,
//! then owns slot `t % capacity` via a per-slot sequence word: the slot
//! is CASed from its previous state to `2t+1` ("ticket t writing"), the
//! payload words are stored, and the sequence is released as `2t+2`
//! ("ticket t complete"). A writer that finds the slot already claimed by
//! a *newer* ticket abandons its write (its event is part of the dropped
//! prefix by then); a writer that finds an *older* ticket mid-write spins
//! for the handful of stores that write takes. All payload words are
//! plain atomics, so even a misbehaving interleaving cannot produce
//! undefined behavior — a reader validates the sequence word before and
//! after reading the payload and discards torn slots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default ring capacity: ample for full migration timelines (a reshard
/// emits begin + one event per chunk + complete per migration) without
/// drops, small enough to snapshot cheaply.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Payload words per slot (the widest [`EventKind`] uses 5).
const WORDS: usize = 5;

/// What happened — the structured payload of one [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A shard migration was installed: `id` is the migration's unique
    /// monotone id, moving `[lo, hi]` from slot `src` to slot `dst`.
    MigrationBegin {
        /// Unique monotone migration id.
        id: u64,
        /// Source shard slot.
        src: u64,
        /// Destination shard slot.
        dst: u64,
        /// First key of the migrated interval.
        lo: u64,
        /// Last key (inclusive) of the migrated interval.
        hi: u64,
    },
    /// One drain chunk of migration `id` moved `moved` keys.
    MigrationChunk {
        /// Migration id the chunk belongs to.
        id: u64,
        /// Keys moved by this chunk.
        moved: u64,
    },
    /// Migration `id` completed; the routing table now has version
    /// `epoch`.
    MigrationComplete {
        /// Migration id that completed.
        id: u64,
        /// Routing epoch installed by the completion.
        epoch: u64,
    },
    /// The routing epoch advanced to `epoch`.
    EpochFlip {
        /// The new routing epoch.
        epoch: u64,
    },
    /// The rebalance policy decided to split shard `shard` (its weighted
    /// load estimate at decision time rides along).
    PolicySplit {
        /// Shard slot being split.
        shard: u64,
        /// Weighted load (keys + op-rate term) that triggered the split.
        load: u64,
    },
    /// The rebalance policy decided to merge two adjacent shards.
    PolicyMerge {
        /// Left (surviving) shard slot.
        left: u64,
        /// Right (drained) shard slot.
        right: u64,
    },
    /// The batcher drained a combined batch of `ops` operations in
    /// `drain_ns`, with its adaptive window at `window_ns`.
    BatcherDrain {
        /// Operations combined into the drain.
        ops: u64,
        /// Wall time of the drain in nanoseconds.
        drain_ns: u64,
        /// The adaptive wait-window after this drain, nanoseconds.
        window_ns: u64,
    },
    /// A poisoned (panicking) op was isolated at `index` of its batch.
    PoisonedOp {
        /// Index of the poisoned op within the submitted batch.
        index: u64,
    },
    /// Migration `id` was aborted: its overlay was removed without a
    /// routing flip after `moved_back` keys were rolled back to the source
    /// shard (zero when the abort drained the migration forward instead —
    /// a `migration_complete` event accompanies it in that case).
    MigrationAbort {
        /// Migration id that was aborted.
        id: u64,
        /// Keys moved back from the destination to the source shard.
        moved_back: u64,
    },
    /// A bounded retry loop gave up after `attempts` attempts and the op
    /// surfaced a typed `Timeout` instead of spinning.
    TxnDeadline {
        /// Failed attempts made before the deadline/budget cut the op off.
        attempts: u64,
    },
    /// Admission control shed `ops` operation(s) with the batcher queue at
    /// depth `queued` (overflow, an injected drain fault, or a wedged
    /// combiner) — the submitters got a typed `Overloaded` error.
    Shed {
        /// Operations shed.
        ops: u64,
        /// Queue depth observed when shedding.
        queued: u64,
    },
    /// A background rebalancer step panicked and was contained; `panics`
    /// is the worker's running panic count.
    RebalancerPanic {
        /// Total contained panics in this worker so far.
        panics: u64,
    },
}

impl EventKind {
    /// Stable lowercase name (JSON `"kind"` field / Prometheus label).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MigrationBegin { .. } => "migration_begin",
            EventKind::MigrationChunk { .. } => "migration_chunk",
            EventKind::MigrationComplete { .. } => "migration_complete",
            EventKind::EpochFlip { .. } => "epoch_flip",
            EventKind::PolicySplit { .. } => "policy_split",
            EventKind::PolicyMerge { .. } => "policy_merge",
            EventKind::BatcherDrain { .. } => "batcher_drain",
            EventKind::PoisonedOp { .. } => "poisoned_op",
            EventKind::MigrationAbort { .. } => "migration_abort",
            EventKind::TxnDeadline { .. } => "txn_deadline",
            EventKind::Shed { .. } => "shed",
            EventKind::RebalancerPanic { .. } => "rebalancer_panic",
        }
    }

    /// The kind's named payload fields, in declaration order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            EventKind::MigrationBegin {
                id,
                src,
                dst,
                lo,
                hi,
            } => vec![
                ("id", id),
                ("src", src),
                ("dst", dst),
                ("lo", lo),
                ("hi", hi),
            ],
            EventKind::MigrationChunk { id, moved } => vec![("id", id), ("moved", moved)],
            EventKind::MigrationComplete { id, epoch } => vec![("id", id), ("epoch", epoch)],
            EventKind::EpochFlip { epoch } => vec![("epoch", epoch)],
            EventKind::PolicySplit { shard, load } => vec![("shard", shard), ("load", load)],
            EventKind::PolicyMerge { left, right } => vec![("left", left), ("right", right)],
            EventKind::BatcherDrain {
                ops,
                drain_ns,
                window_ns,
            } => vec![
                ("ops", ops),
                ("drain_ns", drain_ns),
                ("window_ns", window_ns),
            ],
            EventKind::PoisonedOp { index } => vec![("index", index)],
            EventKind::MigrationAbort { id, moved_back } => {
                vec![("id", id), ("moved_back", moved_back)]
            }
            EventKind::TxnDeadline { attempts } => vec![("attempts", attempts)],
            EventKind::Shed { ops, queued } => vec![("ops", ops), ("queued", queued)],
            EventKind::RebalancerPanic { panics } => vec![("panics", panics)],
        }
    }

    fn encode(&self) -> (u64, [u64; WORDS]) {
        let mut w = [0u64; WORDS];
        let tag = match *self {
            EventKind::MigrationBegin {
                id,
                src,
                dst,
                lo,
                hi,
            } => {
                w = [id, src, dst, lo, hi];
                0
            }
            EventKind::MigrationChunk { id, moved } => {
                w[0] = id;
                w[1] = moved;
                1
            }
            EventKind::MigrationComplete { id, epoch } => {
                w[0] = id;
                w[1] = epoch;
                2
            }
            EventKind::EpochFlip { epoch } => {
                w[0] = epoch;
                3
            }
            EventKind::PolicySplit { shard, load } => {
                w[0] = shard;
                w[1] = load;
                4
            }
            EventKind::PolicyMerge { left, right } => {
                w[0] = left;
                w[1] = right;
                5
            }
            EventKind::BatcherDrain {
                ops,
                drain_ns,
                window_ns,
            } => {
                w = [ops, drain_ns, window_ns, 0, 0];
                6
            }
            EventKind::PoisonedOp { index } => {
                w[0] = index;
                7
            }
            EventKind::MigrationAbort { id, moved_back } => {
                w[0] = id;
                w[1] = moved_back;
                8
            }
            EventKind::TxnDeadline { attempts } => {
                w[0] = attempts;
                9
            }
            EventKind::Shed { ops, queued } => {
                w[0] = ops;
                w[1] = queued;
                10
            }
            EventKind::RebalancerPanic { panics } => {
                w[0] = panics;
                11
            }
        };
        (tag, w)
    }

    fn decode(tag: u64, w: [u64; WORDS]) -> Option<EventKind> {
        Some(match tag {
            0 => EventKind::MigrationBegin {
                id: w[0],
                src: w[1],
                dst: w[2],
                lo: w[3],
                hi: w[4],
            },
            1 => EventKind::MigrationChunk {
                id: w[0],
                moved: w[1],
            },
            2 => EventKind::MigrationComplete {
                id: w[0],
                epoch: w[1],
            },
            3 => EventKind::EpochFlip { epoch: w[0] },
            4 => EventKind::PolicySplit {
                shard: w[0],
                load: w[1],
            },
            5 => EventKind::PolicyMerge {
                left: w[0],
                right: w[1],
            },
            6 => EventKind::BatcherDrain {
                ops: w[0],
                drain_ns: w[1],
                window_ns: w[2],
            },
            7 => EventKind::PoisonedOp { index: w[0] },
            8 => EventKind::MigrationAbort {
                id: w[0],
                moved_back: w[1],
            },
            9 => EventKind::TxnDeadline { attempts: w[0] },
            10 => EventKind::Shed {
                ops: w[0],
                queued: w[1],
            },
            11 => EventKind::RebalancerPanic { panics: w[0] },
            _ => return None,
        })
    }
}

/// One published timeline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Global publication sequence number (0-based, gap-free across the
    /// ring's lifetime; snapshots list surviving events in `seq` order).
    pub seq: u64,
    /// Nanoseconds since the ring was created (monotonic clock).
    pub at_ns: u64,
    /// The structured payload.
    pub kind: EventKind,
}

impl Event {
    /// The event as a JSON object:
    /// `{"seq":..,"at_ns":..,"kind":"..",<payload fields>}`.
    pub fn to_json(&self) -> crate::Json {
        let mut obj = crate::Json::obj()
            .field("seq", crate::Json::U64(self.seq))
            .field("at_ns", crate::Json::U64(self.at_ns))
            .field("kind", crate::Json::str(self.kind.name()));
        for (k, v) in self.kind.fields() {
            obj = obj.field(k, crate::Json::U64(v));
        }
        obj
    }
}

/// A point-in-time view of the ring: surviving events in sequence order,
/// plus the monotone drop counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    /// Surviving events, oldest first (strictly increasing `seq`).
    pub events: Vec<Event>,
    /// Events dropped since creation (total published − capacity, floored
    /// at zero). Monotone: it never decreases between snapshots.
    pub dropped: u64,
    /// The ring's fixed capacity.
    pub capacity: usize,
}

impl RingSnapshot {
    /// The snapshot as the registry's standard JSON timeline object:
    /// `{"capacity":..,"dropped":..,"events":[..]}`.
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj()
            .field("capacity", crate::Json::U64(self.capacity as u64))
            .field("dropped", crate::Json::U64(self.dropped))
            .field(
                "events",
                crate::Json::Arr(self.events.iter().map(Event::to_json).collect()),
            )
    }
}

struct Slot {
    /// `2t+1` = ticket `t` writing, `2t+2` = ticket `t` complete,
    /// `0` = never written.
    seq: AtomicU64,
    at_ns: AtomicU64,
    tag: AtomicU64,
    words: [AtomicU64; WORDS],
}

/// The fixed-capacity event ring (see module docs for the protocol and
/// the drop-oldest overflow contract).
pub struct EventRing {
    slots: Box<[Slot]>,
    head: AtomicU64,
    origin: Instant,
}

impl EventRing {
    /// A ring holding the last `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an event ring must hold at least one event");
        EventRing {
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    at_ns: AtomicU64::new(0),
                    tag: AtomicU64::new(0),
                    words: Default::default(),
                })
                .collect(),
            head: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }

    /// A ring of [`DEFAULT_RING_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        EventRing::new(DEFAULT_RING_CAPACITY)
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever published (dropped ones included).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overflow so far: monotone, `published − capacity`
    /// floored at zero.
    pub fn dropped(&self) -> u64 {
        self.published().saturating_sub(self.capacity() as u64)
    }

    /// Publishes one event; returns its sequence number. Never blocks on
    /// readers; on overflow the oldest event is overwritten.
    pub fn push(&self, kind: EventKind) -> u64 {
        let at_ns = self.origin.elapsed().as_nanos() as u64;
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let busy = 2 * ticket + 1;
        let done = busy + 1;
        let mut cur = slot.seq.load(Ordering::Acquire);
        loop {
            if cur >= busy {
                // A newer ticket owns this slot: our event is already part
                // of the dropped prefix — abandon the write.
                return ticket;
            }
            if cur & 1 == 1 {
                // An older ticket is mid-write (a handful of stores): wait
                // it out rather than tearing its payload.
                std::hint::spin_loop();
                cur = slot.seq.load(Ordering::Acquire);
                continue;
            }
            match slot
                .seq
                .compare_exchange_weak(cur, busy, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        let (tag, words) = kind.encode();
        // ORDERING: payload writes are Relaxed; the Release store of `seq`
        // below publishes them, and readers re-check `seq` (Acquire) after
        // reading to discard torn slots.
        slot.at_ns.store(at_ns, Ordering::Relaxed);
        // ORDERING: as above — published by the `seq` Release store.
        slot.tag.store(tag, Ordering::Relaxed);
        for (dst, w) in slot.words.iter().zip(words) {
            // ORDERING: as above — published by the `seq` Release store.
            dst.store(w, Ordering::Relaxed);
        }
        slot.seq.store(done, Ordering::Release);
        ticket
    }

    /// A point-in-time snapshot: surviving events in sequence order plus
    /// the monotone dropped counter. Slots mid-write at snapshot time are
    /// skipped (they will appear in the next snapshot).
    pub fn snapshot(&self) -> RingSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - lo) as usize);
        for ticket in lo..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let done = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != done {
                continue; // mid-write, or already overwritten by a newer ticket
            }
            // ORDERING: the `seq` Acquire load above ordered the writer's
            // payload before these reads; the re-check below discards
            // anything torn by a concurrent overwrite.
            let at_ns = slot.at_ns.load(Ordering::Relaxed);
            // ORDERING: as above — seqlock-style validated read.
            let tag = slot.tag.load(Ordering::Relaxed);
            let mut words = [0u64; WORDS];
            for (dst, w) in words.iter_mut().zip(&slot.words) {
                // ORDERING: as above — seqlock-style validated read.
                *dst = w.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != done {
                continue; // torn by a concurrent overwrite — discard
            }
            if let Some(kind) = EventKind::decode(tag, words) {
                events.push(Event {
                    seq: ticket,
                    at_ns,
                    kind,
                });
            }
        }
        RingSnapshot {
            events,
            dropped: head.saturating_sub(cap),
            capacity: self.slots.len(),
        }
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity())
            .field("published", &self.published())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn events_round_trip_every_kind() {
        let kinds = [
            EventKind::MigrationBegin {
                id: 1,
                src: 2,
                dst: 3,
                lo: 4,
                hi: 5,
            },
            EventKind::MigrationChunk { id: 1, moved: 128 },
            EventKind::MigrationComplete { id: 1, epoch: 9 },
            EventKind::EpochFlip { epoch: 9 },
            EventKind::PolicySplit { shard: 0, load: 77 },
            EventKind::PolicyMerge { left: 1, right: 2 },
            EventKind::BatcherDrain {
                ops: 8,
                drain_ns: 1000,
                window_ns: 500,
            },
            EventKind::PoisonedOp { index: 3 },
            EventKind::MigrationAbort {
                id: 4,
                moved_back: 96,
            },
            EventKind::TxnDeadline { attempts: 64 },
            EventKind::Shed { ops: 5, queued: 33 },
            EventKind::RebalancerPanic { panics: 2 },
        ];
        let ring = EventRing::new(16);
        for k in kinds {
            ring.push(k);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), kinds.len());
        for (i, (e, k)) in snap.events.iter().zip(kinds).enumerate() {
            assert_eq!(e.seq, i as u64, "gap-free sequence");
            assert_eq!(e.kind, k, "payload survives encode/decode");
            assert_eq!(e.kind.fields().len(), k.fields().len());
        }
        // Timestamps are monotone non-decreasing in sequence order.
        for w in snap.events.windows(2) {
            assert!(w[0].at_ns <= w[1].at_ns);
        }
    }

    /// Satellite: overflow drops the OLDEST events and says so — the
    /// `dropped` counter is exact and monotone, never silent.
    #[test]
    fn overflow_drops_oldest_with_monotone_counter() {
        let ring = EventRing::new(4);
        for epoch in 0..10u64 {
            ring.push(EventKind::EpochFlip { epoch });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.dropped, 6, "10 published - capacity 4");
        assert_eq!(snap.capacity, 4);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "the newest survive, oldest drop");
        for e in &snap.events {
            assert_eq!(e.kind, EventKind::EpochFlip { epoch: e.seq });
        }
        // More pushes: dropped only grows.
        ring.push(EventKind::EpochFlip { epoch: 10 });
        assert_eq!(ring.snapshot().dropped, 7);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn concurrent_publishers_never_tear_events() {
        let ring = Arc::new(EventRing::new(8)); // tiny: constant overflow
        let threads = 4u64;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        // Payload redundantly encodes the writer, so a torn
                        // event would decode to an inconsistent pair.
                        ring.push(EventKind::MigrationChunk {
                            id: t * 1_000_000 + i,
                            moved: t * 1_000_000 + i,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = ring.snapshot();
        assert_eq!(ring.published(), threads * per);
        assert_eq!(snap.dropped, threads * per - 8);
        let mut prev = None;
        for e in &snap.events {
            match e.kind {
                EventKind::MigrationChunk { id, moved } => {
                    assert_eq!(id, moved, "torn payload detected");
                }
                other => panic!("unexpected kind {other:?}"),
            }
            if let Some(p) = prev {
                assert!(e.seq > p, "snapshot must be in sequence order");
            }
            prev = Some(e.seq);
        }
    }
}
