//! A small fixed-capacity sliding window with nearest-rank quantiles.
//!
//! Unlike [`crate::Histogram`] (unbounded history, bucketed), a
//! [`SlidingQuantile`] answers "what was the p99 over the last N
//! observations?" **exactly**, by keeping the last N raw samples in a
//! ring. It is meant for low-rate series — the `Batcher` records one
//! sample per *drain*, not per operation — so a mutex around the ring is
//! cheap and keeps the quantile math trivially exact.

use std::sync::Mutex;

/// A sliding window of the last `capacity` samples with exact
/// nearest-rank quantiles over the window.
///
/// ```
/// let w = leap_obs::SlidingQuantile::new(64);
/// for v in 1..=100u64 {
///     w.record(v);
/// }
/// // Window holds 37..=100; nearest-rank p50 over those 64 samples.
/// assert_eq!(w.quantile_permille(500), 68);
/// assert_eq!(w.quantile_permille(990), 100);
/// ```
#[derive(Debug)]
pub struct SlidingQuantile {
    capacity: usize,
    /// `(ring, next_slot)` — the ring overwrites oldest-first once full.
    inner: Mutex<(Vec<u64>, usize)>,
}

impl SlidingQuantile {
    /// A window over the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a window must hold at least one sample");
        SlidingQuantile {
            capacity,
            inner: Mutex::new((Vec::with_capacity(capacity), 0)),
        }
    }

    /// Records one sample, evicting the oldest when the window is full.
    pub fn record(&self, v: u64) {
        // INVARIANT: no code path panics while holding the window lock.
        let mut inner = self.inner.lock().expect("window poisoned");
        let (ring, next) = &mut *inner;
        if ring.len() < self.capacity {
            ring.push(v);
        } else {
            ring[*next] = v;
        }
        *next = (*next + 1) % self.capacity;
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        // INVARIANT: no code path panics while holding the window lock.
        self.inner.lock().expect("window poisoned").0.len()
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact nearest-rank quantile over the current window (`990` = p99);
    /// 0 when empty. For `n` samples the rank is `ceil(n * pm / 1000)` —
    /// the same convention the store's original drain-window `p99()`
    /// used, so `quantile_permille(990)` over `1..=100` is 99, and over a
    /// two-sample window it is the larger sample.
    pub fn quantile_permille(&self, pm: u64) -> u64 {
        // INVARIANT: no code path panics while holding the window lock.
        let inner = self.inner.lock().expect("window poisoned");
        let ring = &inner.0;
        if ring.is_empty() {
            return 0;
        }
        let mut sorted = ring.clone();
        sorted.sort_unstable();
        let rank = (sorted.len() as u64 * pm).div_ceil(1000).max(1) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    /// The window's p99 (`quantile_permille(990)`).
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ported from the store's original ad-hoc `p99()` over the drain
    /// window: identical nearest-rank results on its edge cases.
    #[test]
    fn nearest_rank_edge_cases() {
        let empty = SlidingQuantile::new(64);
        assert_eq!(empty.p99(), 0);
        assert!(empty.is_empty());

        let one = SlidingQuantile::new(64);
        one.record(7);
        assert_eq!(one.p99(), 7, "a single sample is every percentile");

        let hundred = SlidingQuantile::new(128);
        for v in 1..=100 {
            hundred.record(v);
        }
        assert_eq!(hundred.p99(), 99, "nearest-rank, not max");

        let two = SlidingQuantile::new(64);
        two.record(5);
        two.record(1000);
        assert_eq!(two.p99(), 1000, "small windows take the top sample");

        let exact = SlidingQuantile::new(64);
        for v in 1..=64 {
            exact.record(v);
        }
        assert_eq!(exact.p99(), 64, "64 samples: rank 64");
    }

    #[test]
    fn window_evicts_oldest() {
        let w = SlidingQuantile::new(4);
        for v in [100, 200, 300, 400, 1, 2] {
            w.record(v);
        }
        // Window is now [1, 2, 300, 400].
        assert_eq!(w.len(), 4);
        assert_eq!(w.quantile_permille(500), 2);
        assert_eq!(w.quantile_permille(1000), 400);
    }
}
