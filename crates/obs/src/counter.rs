//! Striped atomic counters and gauges.
//!
//! A [`Counter`] spreads increments over several cache-line-padded
//! stripes, indexed by a per-thread slot, so concurrent hot-path bumps
//! from different cores do not bounce one cache line. Reads sum the
//! stripes; they are monotone but not a point-in-time snapshot of a
//! single instant (the usual statistical-counter contract).

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Stripes per counter. A power of two; more than typical core counts
/// collide on, small enough that summing stays cheap.
const STRIPES: usize = 16;

/// Pads an atomic to its own cache line.
#[repr(align(128))]
struct PaddedU64(AtomicU64);

/// Per-thread stripe slot, assigned round-robin on first use.
fn stripe_of() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        // ORDERING: round-robin ticket; uniqueness comes from the RMW,
        // not from ordering.
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    STRIPE.with(|s| *s) & (STRIPES - 1)
}

/// A monotone event counter, striped to avoid write contention.
///
/// ```
/// let c = leap_obs::Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
pub struct Counter {
    stripes: Box<[PaddedU64]>,
}

impl Counter {
    /// A fresh zero counter.
    pub fn new() -> Self {
        Counter {
            stripes: (0..STRIPES).map(|_| PaddedU64(AtomicU64::new(0))).collect(),
        }
    }

    /// Adds `n`. The stripe saturates at `u64::MAX` instead of wrapping,
    /// so sustained runs can never report a counter going backwards.
    #[inline]
    pub fn add(&self, n: u64) {
        let _ = self.stripes[stripe_of()]
            .0
            // ORDERING: monotone stat stripe; readers sum stripes and
            // only need an eventually-consistent total.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(n))
            });
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total (saturating sum over stripes).
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            // ORDERING: eventually-consistent stat read; no publication
            // rides on the per-stripe values.
            .map(|s| s.0.load(Ordering::Relaxed))
            .fold(0u64, u64::saturating_add)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A signed point-in-time gauge (single atomic — gauges are read as often
/// as written, so striping would not help).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zero gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        // ORDERING: diagnostic gauge; no publication rides on it.
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        // ORDERING: diagnostic gauge; the RMW keeps deltas exact.
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ORDERING: diagnostic gauge read; staleness is acceptable.
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let threads = 8;
        let per = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), threads * per);
    }

    /// Satellite: near-`u64::MAX` additions saturate — the counter pins
    /// at `u64::MAX` and never wraps backwards.
    #[test]
    fn counter_saturates_at_max_instead_of_wrapping() {
        let c = Counter::new();
        c.add(u64::MAX - 1);
        let before = c.get();
        c.add(u64::MAX);
        c.add(5);
        let after = c.get();
        assert!(after >= before, "saturating add is monotone");
        assert_eq!(after, u64::MAX);
    }

    #[test]
    fn gauge_tracks_sets_and_deltas() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }
}
