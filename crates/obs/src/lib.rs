//! leap-obs: the observability substrate for the Leap-List stack.
//!
//! A dependency-free, lock-free metrics core shared by every crate in the
//! workspace:
//!
//! * [`Counter`] / [`Gauge`] — cache-line-striped atomic counters for
//!   hot-path event counting without cross-core bouncing.
//! * [`Histogram`] — log-linear (HDR-style) latency histograms: fixed
//!   memory, lock-free concurrent recording, exact-rank
//!   p50/p95/p99/p99.9/max within one bucket width of the true quantile.
//! * [`SlidingQuantile`] — a small fixed-window nearest-rank quantile
//!   (the `Batcher`'s 64-drain p99 window).
//! * [`EventRing`] — a fixed-capacity structured timeline of
//!   [`Event`]s (migration begin/chunk/complete, epoch flips, batcher
//!   drains, policy decisions, poisoned ops). Overflow drops the
//!   **oldest** events and exposes a monotone `dropped` counter in every
//!   snapshot: loss is always visible, never silent.
//! * [`Json`] — a serde-free JSON tree with unit-tested escaping, so the
//!   stack has exactly one JSON emitter instead of per-crate format
//!   strings.
//! * [`Registry`] — names the instruments above and renders one coherent
//!   snapshot as JSON ([`Registry::snapshot_json`]) or Prometheus text
//!   exposition ([`Registry::to_prometheus`]).
//! * [`trace`] — leap-trace: per-op causal spans (queue/combine/commit
//!   phases, STM abort causes per attempt, migration-interference marks)
//!   with head sampling plus tail capture, exported as Chrome trace-event
//!   JSON.
//!
//! Recording never blocks: counters and histograms are plain atomic
//! fetch-adds; the event ring claims slots with a per-slot sequence
//! protocol (writers to *different* slots never interact, and a reader
//! never blocks a writer). Registration and snapshotting take a mutex —
//! they are off the hot path by construction.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod counter;
mod events;
mod hist;
mod json;
mod registry;
pub mod trace;
mod window;

pub use counter::{Counter, Gauge};
pub use events::{Event, EventKind, EventRing, RingSnapshot, DEFAULT_RING_CAPACITY};
pub use hist::{HistSnapshot, Histogram};
pub use json::Json;
pub use registry::Registry;
pub use trace::{
    AbortCause, OpClass, OpOutcome, Span, SpanGuard, SpanRing, SpanSnapshot, TraceConfig, Tracer,
    DEFAULT_SPAN_RING_CAPACITY,
};
pub use window::SlidingQuantile;
