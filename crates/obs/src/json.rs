//! A serde-free JSON tree: the workspace's single JSON emitter.
//!
//! Every stats surface in the stack used to hand-roll `format!` strings;
//! this module replaces them with one value tree whose rendering is
//! unit-tested (escaping included) and whose output is accepted by the
//! bench `collect` bin's balanced-object validator by construction.
//!
//! Object keys keep **insertion order** — existing consumers pin exact
//! key sequences in tests, so `Obj` is a vec of pairs, not a map.
//!
//! Floating-point output goes through validated constructors:
//! [`Json::fixed`] renders with a fixed number of decimals (the
//! `{:.6}`-style outputs the stats surfaces already pin), [`Json::f64`]
//! with shortest-round-trip formatting; both refuse NaN/infinity by
//! rendering `null` (JSON has no tokens for them).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A pre-rendered numeric token (see [`Json::fixed`] / [`Json::f64`]).
    Num(String),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
    /// A pre-rendered JSON fragment, embedded verbatim (see
    /// [`Json::raw`]).
    Raw(String),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` (builder style; preserves insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value)),
            // INVARIANT: documented panic — `field()` on a non-object is a
            // builder misuse at the call site.
            other => panic!("field() on non-object {other:?}"),
        }
        self
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A finite float rendered with exactly `decimals` fraction digits
    /// (the `format!("{:.N}")` the legacy stats surfaces pinned);
    /// non-finite values render `null`.
    pub fn fixed(v: f64, decimals: usize) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:.decimals$}"))
        } else {
            Json::Null
        }
    }

    /// A finite float with default formatting; non-finite renders `null`.
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// Embeds an already-rendered JSON fragment verbatim — for splicing a
    /// snapshot another emitter produced (e.g. a store's `to_json()`
    /// inside a bench stats line). The caller vouches that `fragment` is
    /// valid JSON; nothing is validated or escaped here.
    pub fn raw(fragment: impl Into<String>) -> Json {
        Json::Raw(fragment.into())
    }

    /// Renders the tree as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::Num(tok) | Json::Raw(tok) => out.push_str(tok),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes `s` as a quoted JSON string, escaping quotes, backslashes and
/// control characters (`\n`/`\r`/`\t` short forms, `\u00XX` otherwise).
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render_their_tokens() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Bool(false).render(), "false");
        assert_eq!(Json::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn fixed_decimals_match_legacy_format_strings() {
        assert_eq!(Json::fixed(1.6, 4).render(), "1.6000");
        assert_eq!(Json::fixed(0.0, 6).render(), "0.000000");
        assert_eq!(Json::fixed(2.0 / 3.0, 6).render(), "0.666667");
        assert_eq!(Json::fixed(f64::NAN, 4).render(), "null");
        assert_eq!(Json::fixed(f64::INFINITY, 4).render(), "null");
        assert_eq!(Json::f64(1.5).render(), "1.5");
        assert_eq!(Json::f64(f64::NEG_INFINITY).render(), "null");
    }

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(
            Json::str("a\"b\\c\nd\te\rf").render(),
            "\"a\\\"b\\\\c\\nd\\te\\rf\""
        );
        assert_eq!(Json::str("\u{1}\u{1f}").render(), "\"\\u0001\\u001f\"");
        // Keys are escaped too.
        assert_eq!(
            Json::obj().field("we\"ird", Json::U64(1)).render(),
            "{\"we\\\"ird\":1}"
        );
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(Json::str("é∀").render(), "\"é∀\"");
    }

    #[test]
    fn nesting_and_key_order_are_preserved() {
        let j = Json::obj()
            .field("z", Json::U64(1))
            .field("a", Json::Arr(vec![Json::Null, Json::Bool(true)]))
            .field("r", Json::raw("{\"pre\":1}"));
        assert_eq!(j.render(), "{\"z\":1,\"a\":[null,true],\"r\":{\"pre\":1}}");
    }

    #[test]
    #[should_panic(expected = "field() on non-object")]
    fn field_on_scalar_panics() {
        let _ = Json::U64(1).field("k", Json::Null);
    }
}
