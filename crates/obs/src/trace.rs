//! leap-trace: per-operation causal spans for the store stack.
//!
//! Aggregate histograms (PR 6) say *that* an op took 9 ms; a span says
//! *where* the time went. Each traced op carries one [`Span`]: a trace
//! id, the op kind and key/shard, nanosecond-stamped phases (queue wait
//! vs combine vs commit inside the `Batcher`), per-attempt STM retry
//! annotations (the abort cause of every aborted attempt, reusing the
//! read/commit/explicit attribution), and migration-interference marks
//! (which overlay id forced a stamp retry, how long the per-migration
//! write lock was waited on and held).
//!
//! # Sampling and tail capture
//!
//! Spans are **head-sampled** at a configurable 1-in-N per-thread rate
//! (the same knob as the store's sampled `get` histogram) **plus
//! tail-captured**: when tracing is armed every op is measured, and any
//! op slower than the configured SLO threshold — or ending in a typed
//! failure (timeout, shed, migration abort) — is always retained, so the
//! p99 spikes self-document. Arming follows the same
//! zero-cost-when-absent pattern as `StmRecorder`/`FaultPlan`: with no
//! tracer configured the hot paths carry a single `Option` branch, and
//! the cross-crate annotation hooks ([`note_abort`] and friends) are one
//! thread-local check when no span is active.
//!
//! # Storage and export
//!
//! Retained spans land in a fixed-capacity [`SpanRing`] with the event
//! ring's drop-oldest slot protocol and an exact monotone `dropped`
//! counter — loss is visible, never silent. A [`SpanSnapshot`] exports as
//! plain JSON ([`SpanSnapshot::to_json`]), as Chrome trace-event JSON
//! loadable in Perfetto ([`SpanSnapshot::to_chrome_trace`]), or — per
//! span — as a text breakdown for test assertions ([`Span::render_text`]).
//!
//! # Propagation
//!
//! The active span lives in a thread-local: the store begins it at the
//! public op boundary, and the layers below (batcher, STM engine,
//! migration write path) annotate it through free functions without any
//! dependency on the store — the same direction of travel as the STM
//! retry budget. Only the **outermost** op on a thread owns a span;
//! nested begins (e.g. the combiner's own `apply` inside a batched
//! submit) are inert, so a batch span absorbs its inner STM annotations.

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Default capacity of a [`SpanRing`].
pub const DEFAULT_SPAN_RING_CAPACITY: usize = 512;

/// Payload words per span slot (the fixed wire encoding of one span).
const SPAN_WORDS: usize = 16;

/// Most abort causes encoded positionally in the per-attempt sequence;
/// later aborts still count in the per-cause totals.
const CAUSE_SEQ_CAP: u32 = 16;

/// Why one STM attempt aborted — the per-attempt annotation
/// [`note_abort`] records, mirroring the domain's abort attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortCause {
    /// Encounter-time conflict (a read/write/extension saw a locked or
    /// newer orec).
    ConflictRead,
    /// Commit-time conflict (read-set validation failed at commit).
    ConflictCommit,
    /// The transaction body requested the abort.
    Explicit,
    /// A bounded retry budget expired mid-attempt.
    Timeout,
}

impl AbortCause {
    /// Stable wire code (1-based; 0 means "no abort" in the sequence).
    fn code(self) -> u64 {
        match self {
            AbortCause::ConflictRead => 1,
            AbortCause::ConflictCommit => 2,
            AbortCause::Explicit => 3,
            AbortCause::Timeout => 4,
        }
    }

    fn from_code(code: u64) -> Option<AbortCause> {
        match code {
            1 => Some(AbortCause::ConflictRead),
            2 => Some(AbortCause::ConflictCommit),
            3 => Some(AbortCause::Explicit),
            4 => Some(AbortCause::Timeout),
            _ => None,
        }
    }

    /// Human-readable cause name (matches the stats snapshot's abort
    /// attribution vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            AbortCause::ConflictRead => "conflict_read",
            AbortCause::ConflictCommit => "conflict_commit",
            AbortCause::Explicit => "explicit",
            AbortCause::Timeout => "timeout",
        }
    }
}

/// What kind of operation a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// Point lookup.
    Get,
    /// Single-key insert/update.
    Put,
    /// Single-key removal.
    Delete,
    /// Cross-shard batch.
    Apply,
    /// Cross-shard range query.
    Range,
    /// One bounded scan page.
    ScanPage,
    /// Transactional key count.
    Len,
    /// A batcher submission (queue → combine → grouped apply).
    Batch,
    /// A migration lifecycle span (emitted by the rebalance layer).
    Migration,
}

impl OpClass {
    fn code(self) -> u64 {
        match self {
            OpClass::Get => 0,
            OpClass::Put => 1,
            OpClass::Delete => 2,
            OpClass::Apply => 3,
            OpClass::Range => 4,
            OpClass::ScanPage => 5,
            OpClass::Len => 6,
            OpClass::Batch => 7,
            OpClass::Migration => 8,
        }
    }

    fn name_of(code: u64) -> &'static str {
        match code {
            0 => "get",
            1 => "put",
            2 => "delete",
            3 => "apply",
            4 => "range",
            5 => "scan_page",
            6 => "len",
            7 => "batch",
            8 => "migration",
            _ => "unknown",
        }
    }
}

/// How a traced op ended. Anything other than [`OpOutcome::Ok`] is always
/// retained, independent of sampling and the SLO threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// The op completed normally.
    Ok,
    /// A bounded retry budget expired (`StoreError::Timeout`).
    Timeout,
    /// Admission control or an injected drain fault shed the op
    /// (`StoreError::Overloaded`).
    Overloaded,
    /// The op's value poisoned a combined batch.
    Poisoned,
    /// A combining peer died mid-batch; the op's fate is unknown.
    Aborted,
    /// The combiner lock stayed held past the wedge timeout.
    Wedged,
    /// A migration resolved by rollback rather than completing.
    MigrationAbort,
}

impl OpOutcome {
    fn code(self) -> u64 {
        match self {
            OpOutcome::Ok => 0,
            OpOutcome::Timeout => 1,
            OpOutcome::Overloaded => 2,
            OpOutcome::Poisoned => 3,
            OpOutcome::Aborted => 4,
            OpOutcome::Wedged => 5,
            OpOutcome::MigrationAbort => 6,
        }
    }

    fn name_of(code: u64) -> &'static str {
        match code {
            0 => "ok",
            1 => "timeout",
            2 => "overloaded",
            3 => "poisoned",
            4 => "aborted",
            5 => "wedged",
            6 => "migration_abort",
            _ => "unknown",
        }
    }
}

/// Construction parameters for a [`Tracer`] (the store threads this
/// through its own config).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Head-sampling period: trace 1 in `sample_period` ops per thread
    /// (`1` = every op, `0` = head sampling off — tail capture still
    /// applies). `None` inherits the embedding layer's sampling knob
    /// (the store's `sample_period`).
    pub sample_period: Option<u32>,
    /// Tail-capture SLO threshold: any op slower than this many
    /// nanoseconds is always retained, sampled or not.
    pub slo_ns: u64,
    /// Span ring capacity (drop-oldest on overflow, exact `dropped`
    /// counter).
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_period: None,
            slo_ns: 1_000_000,
            ring_capacity: DEFAULT_SPAN_RING_CAPACITY,
        }
    }
}

impl TraceConfig {
    /// Sets the head-sampling period (see [`TraceConfig::sample_period`]).
    pub fn with_sample_period(mut self, period: u32) -> Self {
        self.sample_period = Some(period);
        self
    }

    /// Sets the tail-capture SLO threshold in nanoseconds.
    pub fn with_slo_ns(mut self, slo_ns: u64) -> Self {
        self.slo_ns = slo_ns;
        self
    }

    /// Sets the span ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }
}

/// The thread-local span under construction. Only the outermost traced
/// op on a thread owns one; annotation hooks mutate it lock-free.
struct ActiveSpan {
    trace_id: u64,
    kind: u64,
    ctx: [u64; 2],
    key: u64,
    shard: u32,
    start: Instant,
    sampled: bool,
    retries: u32,
    cause_seq: u64,
    cause_counts: [u32; 4],
    stamp_retries: u32,
    overlay: u64,
    lock_wait_ns: u64,
    lock_hold_ns: u64,
    queue_ns: u64,
    combine_ns: u64,
    commit_ns: u64,
    outcome: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveSpan>> = const { RefCell::new(None) };
    /// Per-thread head-sampling tick (shared across tracers, like the
    /// store's get-sampling tick).
    static TRACE_TICK: Cell<u32> = const { Cell::new(0) };
    /// The 16-byte op-context label ([`op_context`]) the next begun span
    /// inherits — how a memdb `Table` op rides the store span under it.
    static CTX: Cell<[u64; 2]> = const { Cell::new([0; 2]) };
}

/// Whether the current thread has an active span (cheap: one
/// thread-local check). Lets hot paths skip `Instant::now` bookkeeping
/// that only feeds annotations.
#[inline]
pub fn in_span() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Encodes up to 16 bytes of `name` into the fixed context words
/// (little-endian, NUL-padded).
fn encode_ctx(name: &str) -> [u64; 2] {
    let mut bytes = [0u8; 16];
    for (dst, src) in bytes.iter_mut().zip(name.bytes()) {
        *dst = src;
    }
    [
        // INVARIANT: a 16-byte array always splits into two 8-byte halves.
        u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
        // INVARIANT: as above — the slice is exactly 8 bytes.
        u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
    ]
}

fn decode_ctx(ctx: [u64; 2]) -> String {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&ctx[0].to_le_bytes());
    bytes[8..].copy_from_slice(&ctx[1].to_le_bytes());
    let len = bytes.iter().position(|&b| b == 0).unwrap_or(16);
    String::from_utf8_lossy(&bytes[..len]).into_owned()
}

/// Restores the previous op-context label on drop (see [`op_context`]).
pub struct CtxGuard {
    prev: [u64; 2],
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.set(self.prev));
    }
}

/// Labels the *next* span begun on this thread with `name` (first 16
/// bytes) until the guard drops — the hook a higher layer (memdb's
/// `Table`) uses to make its op kind ride the store span executing it.
pub fn op_context(name: &str) -> CtxGuard {
    let prev = CTX.with(|c| c.replace(encode_ctx(name)));
    CtxGuard { prev }
}

/// Records one aborted STM attempt against the active span, if any.
/// Called by the STM engine's abort-attribution chokepoint, so every
/// retry of a traced op annotates its cause in attempt order.
#[inline]
pub fn note_abort(cause: AbortCause) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            if s.retries < CAUSE_SEQ_CAP {
                s.cause_seq |= cause.code() << (4 * s.retries);
            }
            s.retries = s.retries.saturating_add(1);
            let i = (cause.code() - 1) as usize;
            s.cause_counts[i] = s.cause_counts[i].saturating_add(1);
        }
    });
}

/// Records that a migration overlay's stamp changed mid-read and forced
/// the op to retry its plan; `overlay` is the interfering migration's id
/// (0 when the overlay had already completed and only the stamp remains).
#[inline]
pub fn note_stamp_retry(overlay: u64) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.stamp_retries = s.stamp_retries.saturating_add(1);
            if overlay != 0 {
                s.overlay = overlay;
            }
        }
    });
}

/// Records a migration write-lock acquisition on the op's write path:
/// the overlay id, how long the lock was waited for, and how long it was
/// held.
#[inline]
pub fn note_overlay_lock(overlay: u64, wait_ns: u64, hold_ns: u64) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.overlay = overlay;
            s.lock_wait_ns = s.lock_wait_ns.saturating_add(wait_ns);
            s.lock_hold_ns = s.lock_hold_ns.saturating_add(hold_ns);
        }
    });
}

/// Adds `ns` to the span's commit phase (time inside the shard
/// transaction, including its retries).
#[inline]
pub fn note_commit_phase(ns: u64) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.commit_ns = s.commit_ns.saturating_add(ns);
        }
    });
}

/// Sets the span's batcher phase breakdown: queue wait (enqueue to drain
/// pickup), combine (pickup to the grouped apply), commit (the grouped
/// apply itself).
#[inline]
pub fn note_batch_phases(queue_ns: u64, combine_ns: u64, commit_ns: u64) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.queue_ns = queue_ns;
            s.combine_ns = combine_ns;
            s.commit_ns = commit_ns;
        }
    });
}

/// Marks the active span's outcome (typed failures are always retained).
#[inline]
pub fn note_outcome(outcome: OpOutcome) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.outcome = outcome.code();
        }
    });
}

/// Ends the active span on drop: measures the total, applies the
/// retention rule (head-sampled, over-SLO, or failed) and publishes to
/// the ring. Inert when the thread already had a span (nested op) —
/// the outermost guard owns it.
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
}

impl SpanGuard<'_> {
    /// A guard that does nothing on drop (tracing off, or nested op).
    pub fn inactive() -> Self {
        SpanGuard { tracer: None }
    }

    /// Whether this guard owns the thread's active span.
    pub fn is_active(&self) -> bool {
        self.tracer.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.tracer {
            if let Some(span) = ACTIVE.with(|a| a.borrow_mut().take()) {
                t.finish(span);
            }
        }
    }
}

/// One slot of the span ring; same per-slot sequence protocol as the
/// event ring (`2t+1` = writing, `2t+2` = complete, `0` = never).
struct SpanSlot {
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

/// Fixed-capacity drop-oldest span store with an exact monotone
/// `dropped` counter. Writers to different slots never interact, and a
/// snapshot never blocks a writer.
pub struct SpanRing {
    slots: Box<[SpanSlot]>,
    head: AtomicU64,
}

impl SpanRing {
    /// A ring retaining the last `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a span ring must hold at least one span");
        SpanRing {
            slots: (0..capacity)
                .map(|_| SpanSlot {
                    seq: AtomicU64::new(0),
                    words: Default::default(),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever published (dropped ones included).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Spans lost to overflow: monotone, `published − capacity` floored
    /// at zero.
    pub fn dropped(&self) -> u64 {
        self.published().saturating_sub(self.capacity() as u64)
    }

    fn push(&self, words: [u64; SPAN_WORDS]) -> u64 {
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let busy = 2 * ticket + 1;
        let done = busy + 1;
        let mut cur = slot.seq.load(Ordering::Acquire);
        loop {
            if cur >= busy {
                // A newer ticket owns the slot: this span is part of the
                // dropped prefix already.
                return ticket;
            }
            if cur & 1 == 1 {
                std::hint::spin_loop();
                cur = slot.seq.load(Ordering::Acquire);
                continue;
            }
            match slot
                .seq
                .compare_exchange_weak(cur, busy, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
        for (dst, w) in slot.words.iter().zip(words) {
            // ORDERING: payload write published by the `seq` Release store
            // below; readers re-validate `seq` after reading.
            dst.store(w, Ordering::Relaxed);
        }
        slot.seq.store(done, Ordering::Release);
        ticket
    }

    /// Surviving spans oldest-first, plus the exact dropped counter.
    /// Slots mid-write are skipped (they appear in the next snapshot).
    pub fn snapshot(&self) -> SpanSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        let mut spans = Vec::with_capacity((head - lo) as usize);
        for ticket in lo..head {
            let slot = &self.slots[(ticket % cap) as usize];
            let done = 2 * ticket + 2;
            if slot.seq.load(Ordering::Acquire) != done {
                continue;
            }
            let mut words = [0u64; SPAN_WORDS];
            for (dst, w) in words.iter_mut().zip(&slot.words) {
                // ORDERING: the `seq` Acquire load above ordered the
                // writer's payload; the re-check below discards torn reads.
                *dst = w.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != done {
                continue; // torn by a concurrent overwrite
            }
            spans.push(Span::decode(ticket, words));
        }
        SpanSnapshot {
            spans,
            dropped: head.saturating_sub(cap),
            capacity: self.slots.len(),
        }
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity())
            .field("published", &self.published())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// The armed span layer: owns the ring, the sampling/SLO knobs and the
/// trace-id source. One per store; absent entirely when tracing is off.
pub struct Tracer {
    ring: SpanRing,
    sample_period: u32,
    slo_ns: u64,
    next_id: AtomicU64,
    origin: Instant,
}

impl Tracer {
    /// A tracer head-sampling 1 in `sample_period` ops per thread
    /// (`0` = head sampling off), tail-capturing ops slower than
    /// `slo_ns`, retaining the last `capacity` spans.
    pub fn new(sample_period: u32, slo_ns: u64, capacity: usize) -> Self {
        Tracer {
            ring: SpanRing::new(capacity),
            sample_period,
            slo_ns,
            next_id: AtomicU64::new(1),
            origin: Instant::now(),
        }
    }

    /// Builds from a [`TraceConfig`], inheriting `default_period` when
    /// the config leaves the sampling period unset.
    pub fn from_config(cfg: &TraceConfig, default_period: u32) -> Self {
        Tracer::new(
            cfg.sample_period.unwrap_or(default_period),
            cfg.slo_ns,
            cfg.ring_capacity,
        )
    }

    /// The tail-capture SLO threshold in nanoseconds.
    pub fn slo_ns(&self) -> u64 {
        self.slo_ns
    }

    /// The head-sampling period (0 = head sampling off).
    pub fn sample_period(&self) -> u32 {
        self.sample_period
    }

    /// The span ring (tests and exporters read it directly).
    pub fn ring(&self) -> &SpanRing {
        &self.ring
    }

    /// A point-in-time copy of the retained spans.
    pub fn snapshot(&self) -> SpanSnapshot {
        self.ring.snapshot()
    }

    /// Whether this thread's head-sampling tick elects the next op.
    fn head_sampled(&self) -> bool {
        if self.sample_period == 0 {
            return false;
        }
        TRACE_TICK.with(|t| {
            let v = t.get();
            t.set(v.wrapping_add(1));
            v % self.sample_period == 0
        })
    }

    /// Begins a span for an op of `kind` on `key`/`shard`. Every op is
    /// measured while tracing is armed (tail capture needs the total);
    /// retention is decided when the guard drops. Returns an inert guard
    /// when this thread already runs a traced op — the outermost span
    /// absorbs nested annotations.
    pub fn begin(&self, kind: OpClass, key: u64, shard: u32) -> SpanGuard<'_> {
        if in_span() {
            // Don't consume a sampling tick for a nested (inert) begin.
            return SpanGuard::inactive();
        }
        let sampled = self.head_sampled();
        self.begin_with(kind, key, shard, sampled)
    }

    /// Like [`Tracer::begin`] for a caller that already ran a shared
    /// sampling tick and elected this op: the span is marked head-sampled
    /// without consuming this tracer's own tick (the store's `get` path,
    /// which pre-thins ops before paying for any timing at all).
    pub fn begin_elected(&self, kind: OpClass, key: u64, shard: u32) -> SpanGuard<'_> {
        self.begin_with(kind, key, shard, true)
    }

    fn begin_with(&self, kind: OpClass, key: u64, shard: u32, sampled: bool) -> SpanGuard<'_> {
        if in_span() {
            return SpanGuard::inactive();
        }
        let span = ActiveSpan {
            // ORDERING: id allocator; uniqueness comes from the RMW.
            trace_id: self.next_id.fetch_add(1, Ordering::Relaxed),
            kind: kind.code(),
            ctx: CTX.with(Cell::get),
            key,
            shard,
            start: Instant::now(),
            sampled,
            retries: 0,
            cause_seq: 0,
            cause_counts: [0; 4],
            stamp_retries: 0,
            overlay: 0,
            lock_wait_ns: 0,
            lock_hold_ns: 0,
            queue_ns: 0,
            combine_ns: 0,
            commit_ns: 0,
            outcome: 0,
        };
        ACTIVE.with(|a| *a.borrow_mut() = Some(span));
        SpanGuard { tracer: Some(self) }
    }

    /// Publishes a synthetic failure span that never ran as a traced op —
    /// the rebalance layer reports migration aborts this way. Always
    /// retained (failures bypass sampling).
    pub fn emit_failure(
        &self,
        kind: OpClass,
        outcome: OpOutcome,
        key: u64,
        shard: u32,
        overlay: u64,
    ) {
        let words = SpanEncoder {
            // ORDERING: id allocator; uniqueness comes from the RMW.
            trace_id: self.next_id.fetch_add(1, Ordering::Relaxed),
            kind: kind.code(),
            outcome: outcome.code(),
            sampled: false,
            tail: false,
            key,
            shard,
            start_ns: self.origin.elapsed().as_nanos() as u64,
            total_ns: 0,
            queue_ns: 0,
            combine_ns: 0,
            commit_ns: 0,
            retries: 0,
            stamp_retries: 0,
            cause_seq: 0,
            cause_counts: [0; 4],
            overlay,
            lock_wait_ns: 0,
            lock_hold_ns: 0,
            ctx: [0; 2],
        }
        .encode();
        self.ring.push(words);
    }

    /// Finishes `span`: total time, retention rule, publish.
    fn finish(&self, span: ActiveSpan) {
        let total_ns = span.start.elapsed().as_nanos() as u64;
        let tail = total_ns >= self.slo_ns;
        if !(span.sampled || tail || span.outcome != 0) {
            return;
        }
        let start_ns = span.start.saturating_duration_since(self.origin).as_nanos() as u64;
        let words = SpanEncoder {
            trace_id: span.trace_id,
            kind: span.kind,
            outcome: span.outcome,
            sampled: span.sampled,
            tail,
            key: span.key,
            shard: span.shard,
            start_ns,
            total_ns,
            queue_ns: span.queue_ns,
            combine_ns: span.combine_ns,
            commit_ns: span.commit_ns,
            retries: span.retries,
            stamp_retries: span.stamp_retries,
            cause_seq: span.cause_seq,
            cause_counts: span.cause_counts,
            overlay: span.overlay,
            lock_wait_ns: span.lock_wait_ns,
            lock_hold_ns: span.lock_hold_ns,
            ctx: span.ctx,
        }
        .encode();
        self.ring.push(words);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("sample_period", &self.sample_period)
            .field("slo_ns", &self.slo_ns)
            .field("ring", &self.ring)
            .finish()
    }
}

/// The full field set one span encodes to / decodes from.
struct SpanEncoder {
    trace_id: u64,
    kind: u64,
    outcome: u64,
    sampled: bool,
    tail: bool,
    key: u64,
    shard: u32,
    start_ns: u64,
    total_ns: u64,
    queue_ns: u64,
    combine_ns: u64,
    commit_ns: u64,
    retries: u32,
    stamp_retries: u32,
    cause_seq: u64,
    cause_counts: [u32; 4],
    overlay: u64,
    lock_wait_ns: u64,
    lock_hold_ns: u64,
    ctx: [u64; 2],
}

impl SpanEncoder {
    fn encode(self) -> [u64; SPAN_WORDS] {
        let flags = u64::from(self.sampled) | (u64::from(self.tail) << 1);
        let meta = (self.kind & 0xff)
            | ((self.outcome & 0xff) << 8)
            | ((flags & 0xff) << 16)
            | ((self.shard as u64) << 32);
        let counts = self
            .cause_counts
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &c)| {
                acc | ((u64::from(c.min(0xffff))) << (16 * i))
            });
        [
            self.trace_id,
            meta,
            self.key,
            self.start_ns,
            self.total_ns,
            self.queue_ns,
            self.combine_ns,
            self.commit_ns,
            u64::from(self.retries) | (u64::from(self.stamp_retries) << 32),
            self.cause_seq,
            counts,
            self.overlay,
            self.lock_wait_ns,
            self.lock_hold_ns,
            self.ctx[0],
            self.ctx[1],
        ]
    }
}

/// One retained span, decoded from the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Ring sequence number (monotone publication order).
    pub seq: u64,
    /// Unique trace id within the tracer.
    pub trace_id: u64,
    /// Op kind name (`get`, `put`, …, `batch`, `migration`).
    pub kind: &'static str,
    /// Outcome name (`ok`, `timeout`, `overloaded`, …).
    pub outcome: &'static str,
    /// Whether head sampling elected this span.
    pub sampled: bool,
    /// Whether the op breached the SLO threshold (tail capture).
    pub tail: bool,
    /// The op's key (first key for batches; range start for scans).
    pub key: u64,
    /// The routed shard at span start.
    pub shard: u32,
    /// Span start, nanoseconds since the tracer's origin.
    pub start_ns: u64,
    /// Total measured latency in nanoseconds.
    pub total_ns: u64,
    /// Batcher queue-wait phase (enqueue → drain pickup).
    pub queue_ns: u64,
    /// Batcher combine phase (pickup → grouped apply).
    pub combine_ns: u64,
    /// Commit phase: the grouped apply for batches, the shard
    /// transaction (including retries) for direct ops.
    pub commit_ns: u64,
    /// Aborted STM attempts under this span.
    pub retries: u32,
    /// Overlay-stamp retries the op's read plan suffered.
    pub stamp_retries: u32,
    /// Per-attempt abort causes, first [`CAUSE_SEQ_CAP`] attempts in
    /// order.
    pub causes: Vec<AbortCause>,
    /// Total aborts by cause: `[conflict_read, conflict_commit,
    /// explicit, timeout]`.
    pub cause_counts: [u32; 4],
    /// Last interfering migration overlay id (0 = none).
    pub overlay: u64,
    /// Time spent waiting on a migration write lock.
    pub lock_wait_ns: u64,
    /// Time spent holding a migration write lock.
    pub lock_hold_ns: u64,
    /// Op-context label from the embedding layer (e.g. the memdb table
    /// op riding this store span), empty when none.
    pub ctx: String,
}

impl Span {
    fn decode(seq: u64, w: [u64; SPAN_WORDS]) -> Span {
        let meta = w[1];
        let retries = (w[8] & 0xffff_ffff) as u32;
        let mut causes = Vec::new();
        for i in 0..retries.min(CAUSE_SEQ_CAP) {
            if let Some(c) = AbortCause::from_code((w[9] >> (4 * i)) & 0xf) {
                causes.push(c);
            }
        }
        let mut cause_counts = [0u32; 4];
        for (i, c) in cause_counts.iter_mut().enumerate() {
            *c = ((w[10] >> (16 * i)) & 0xffff) as u32;
        }
        Span {
            seq,
            trace_id: w[0],
            kind: OpClass::name_of(meta & 0xff),
            outcome: OpOutcome::name_of((meta >> 8) & 0xff),
            sampled: (meta >> 16) & 1 == 1,
            tail: (meta >> 17) & 1 == 1,
            key: w[2],
            shard: (meta >> 32) as u32,
            start_ns: w[3],
            total_ns: w[4],
            queue_ns: w[5],
            combine_ns: w[6],
            commit_ns: w[7],
            retries,
            stamp_retries: (w[8] >> 32) as u32,
            causes,
            cause_counts,
            overlay: w[11],
            lock_wait_ns: w[12],
            lock_hold_ns: w[13],
            ctx: decode_ctx([w[14], w[15]]),
        }
    }

    /// Unattributed remainder: total minus the known phases (floored at
    /// zero) — routing, lock waits, plan retries. The three phases plus
    /// this always sum to [`Span::total_ns`].
    pub fn other_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.queue_ns)
            .saturating_sub(self.combine_ns)
            .saturating_sub(self.commit_ns)
    }

    /// The span as one JSON object (the `spans` array entry format).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .field("trace_id", Json::U64(self.trace_id))
            .field("kind", Json::str(self.kind))
            .field("outcome", Json::str(self.outcome))
            .field("sampled", Json::Bool(self.sampled))
            .field("tail", Json::Bool(self.tail))
            .field("key", Json::U64(self.key))
            .field("shard", Json::U64(u64::from(self.shard)))
            .field("start_ns", Json::U64(self.start_ns))
            .field("total_ns", Json::U64(self.total_ns))
            .field(
                "phases",
                Json::obj()
                    .field("queue_ns", Json::U64(self.queue_ns))
                    .field("combine_ns", Json::U64(self.combine_ns))
                    .field("commit_ns", Json::U64(self.commit_ns))
                    .field("other_ns", Json::U64(self.other_ns())),
            )
            .field(
                "stm",
                Json::obj()
                    .field("retries", Json::U64(u64::from(self.retries)))
                    .field(
                        "causes",
                        Json::Arr(self.causes.iter().map(|c| Json::str(c.name())).collect()),
                    ),
            )
            .field(
                "migration",
                Json::obj()
                    .field("overlay", Json::U64(self.overlay))
                    .field("stamp_retries", Json::U64(u64::from(self.stamp_retries)))
                    .field("lock_wait_ns", Json::U64(self.lock_wait_ns))
                    .field("lock_hold_ns", Json::U64(self.lock_hold_ns)),
            );
        if !self.ctx.is_empty() {
            obj = obj.field("ctx", Json::str(&self.ctx));
        }
        obj
    }

    /// A multi-line text breakdown of the span — the per-trace renderer
    /// tests assert against.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "trace {} {} key={} shard={} outcome={} total={}ns{}{}",
            self.trace_id,
            self.kind,
            self.key,
            self.shard,
            self.outcome,
            self.total_ns,
            if self.sampled { " sampled" } else { "" },
            if self.tail { " tail" } else { "" },
        );
        if !self.ctx.is_empty() {
            out.push_str(&format!(" ctx={}", self.ctx));
        }
        out.push_str(&format!(
            "\n  phases: queue={}ns combine={}ns commit={}ns other={}ns",
            self.queue_ns,
            self.combine_ns,
            self.commit_ns,
            self.other_ns()
        ));
        if self.retries > 0 {
            let names: Vec<&str> = self.causes.iter().map(|c| c.name()).collect();
            let tail = self.retries.saturating_sub(self.causes.len() as u32);
            out.push_str(&format!(
                "\n  stm: retries={} causes=[{}]{}",
                self.retries,
                names.join(", "),
                if tail > 0 {
                    format!(" +{tail} more")
                } else {
                    String::new()
                }
            ));
        }
        if self.overlay != 0 || self.stamp_retries > 0 {
            out.push_str(&format!(
                "\n  migration: overlay={} stamp_retries={} lock_wait={}ns lock_hold={}ns",
                self.overlay, self.stamp_retries, self.lock_wait_ns, self.lock_hold_ns
            ));
        }
        out
    }
}

/// A point-in-time view of the span ring.
#[derive(Debug, Clone)]
pub struct SpanSnapshot {
    /// Surviving spans, oldest first.
    pub spans: Vec<Span>,
    /// Spans dropped to overflow (exact, monotone).
    pub dropped: u64,
    /// The ring's fixed capacity.
    pub capacity: usize,
}

impl SpanSnapshot {
    /// The snapshot as `{"capacity":..,"dropped":..,"spans":[..]}`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("capacity", Json::U64(self.capacity as u64))
            .field("dropped", Json::U64(self.dropped))
            .field(
                "spans",
                Json::Arr(self.spans.iter().map(Span::to_json).collect()),
            )
    }

    /// The snapshot as Chrome trace-event JSON (the `traceEvents` array
    /// format Perfetto and `chrome://tracing` load): one complete
    /// (`"ph":"X"`) event per span on its shard's track, with child
    /// slices for each nonzero phase and the annotations in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let mut events = Vec::new();
        for s in &self.spans {
            let us = |ns: u64| Json::fixed(ns as f64 / 1000.0, 3);
            let mut args = Json::obj()
                .field("trace_id", Json::U64(s.trace_id))
                .field("key", Json::U64(s.key))
                .field("outcome", Json::str(s.outcome))
                .field("retries", Json::U64(u64::from(s.retries)))
                .field(
                    "causes",
                    Json::Arr(s.causes.iter().map(|c| Json::str(c.name())).collect()),
                )
                .field("overlay", Json::U64(s.overlay))
                .field("stamp_retries", Json::U64(u64::from(s.stamp_retries)));
            if !s.ctx.is_empty() {
                args = args.field("ctx", Json::str(&s.ctx));
            }
            events.push(
                Json::obj()
                    .field("name", Json::str(s.kind))
                    .field("cat", Json::str("leapstore"))
                    .field("ph", Json::str("X"))
                    .field("ts", us(s.start_ns))
                    .field("dur", us(s.total_ns.max(1)))
                    .field("pid", Json::U64(1))
                    .field("tid", Json::U64(u64::from(s.shard)))
                    .field("args", args),
            );
            // Child slices: the phase decomposition laid back-to-back
            // under the op slice.
            let mut at = s.start_ns;
            for (name, ns) in [
                ("queue_wait", s.queue_ns),
                ("combine", s.combine_ns),
                ("commit", s.commit_ns),
            ] {
                if ns == 0 {
                    continue;
                }
                events.push(
                    Json::obj()
                        .field("name", Json::str(name))
                        .field("cat", Json::str("leapstore_phase"))
                        .field("ph", Json::str("X"))
                        .field("ts", us(at))
                        .field("dur", us(ns))
                        .field("pid", Json::U64(1))
                        .field("tid", Json::U64(u64::from(s.shard))),
                );
                at = at.saturating_add(ns);
            }
        }
        Json::obj()
            .field("traceEvents", Json::Arr(events))
            .field("displayTimeUnit", Json::str("ns"))
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_active() {
        // Tests on one thread: make sure no span leaks between them.
        ACTIVE.with(|a| *a.borrow_mut() = None);
        CTX.with(|c| c.set([0; 2]));
        TRACE_TICK.with(|t| t.set(0));
    }

    #[test]
    fn head_sampling_rate_one_records_every_op_and_zero_none() {
        drain_active();
        let every = Tracer::new(1, u64::MAX, 16);
        for k in 0..5 {
            let _g = every.begin(OpClass::Put, k, 0);
        }
        assert_eq!(every.snapshot().spans.len(), 5, "period 1 = every op");

        drain_active();
        let never = Tracer::new(0, u64::MAX, 16);
        for k in 0..5 {
            let _g = never.begin(OpClass::Put, k, 0);
        }
        assert_eq!(
            never.snapshot().spans.len(),
            0,
            "period 0 = head sampling off, nothing under SLO"
        );
    }

    #[test]
    fn tail_capture_retains_unsampled_slow_ops() {
        drain_active();
        // SLO 0: every measured op breaches it, sampled or not.
        let t = Tracer::new(0, 0, 16);
        {
            let _g = t.begin(OpClass::Range, 10, 2);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert!(s.tail && !s.sampled);
        assert_eq!(s.kind, "range");
        assert_eq!(s.key, 10);
        assert_eq!(s.shard, 2);
    }

    #[test]
    fn failures_always_retained_and_annotations_land() {
        drain_active();
        let t = Tracer::new(0, u64::MAX, 16);
        {
            let _g = t.begin(OpClass::Put, 7, 1);
            note_abort(AbortCause::ConflictCommit);
            note_abort(AbortCause::ConflictCommit);
            note_abort(AbortCause::ConflictRead);
            note_stamp_retry(3);
            note_overlay_lock(3, 50, 900);
            note_commit_phase(1_000);
            note_outcome(OpOutcome::Timeout);
            // The noted phases must fit inside the measured total for the
            // sum invariant below to be meaningful.
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1, "failed op retained despite sampling");
        let s = &snap.spans[0];
        assert_eq!(s.outcome, "timeout");
        assert_eq!(s.retries, 3);
        assert_eq!(
            s.causes,
            vec![
                AbortCause::ConflictCommit,
                AbortCause::ConflictCommit,
                AbortCause::ConflictRead
            ]
        );
        assert_eq!(s.cause_counts, [1, 2, 0, 0]);
        assert_eq!(s.overlay, 3);
        assert_eq!(s.stamp_retries, 1);
        assert_eq!((s.lock_wait_ns, s.lock_hold_ns), (50, 900));
        assert_eq!(s.commit_ns, 1_000);
        assert_eq!(
            s.queue_ns + s.combine_ns + s.commit_ns + s.other_ns(),
            s.total_ns,
            "phases always sum to the measured total"
        );
        let text = s.render_text();
        assert!(text.contains("outcome=timeout"), "{text}");
        assert!(
            text.contains("causes=[conflict_commit, conflict_commit, conflict_read]"),
            "{text}"
        );
        assert!(text.contains("overlay=3"), "{text}");
    }

    #[test]
    fn nested_begin_is_inert_and_outer_span_absorbs_annotations() {
        drain_active();
        let t = Tracer::new(1, u64::MAX, 16);
        {
            let _outer = t.begin(OpClass::Batch, 1, 0);
            {
                let inner = t.begin(OpClass::Apply, 2, 0);
                assert!(!inner.is_active());
                note_abort(AbortCause::Explicit);
            }
            // The inner guard dropping must not have closed the outer span.
            assert!(in_span());
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].kind, "batch");
        assert_eq!(snap.spans[0].retries, 1);
        assert_eq!(snap.spans[0].causes, vec![AbortCause::Explicit]);
    }

    #[test]
    fn ring_drops_oldest_with_exact_counter() {
        drain_active();
        let t = Tracer::new(1, u64::MAX, 4);
        for k in 0..10 {
            let _g = t.begin(OpClass::Get, k, 0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.dropped, 6, "published 10 into capacity 4");
        assert_eq!(snap.capacity, 4);
        let keys: Vec<u64> = snap.spans.iter().map(|s| s.key).collect();
        assert_eq!(keys, vec![6, 7, 8, 9], "survivors are the newest, in order");
    }

    #[test]
    fn op_context_rides_the_span_and_restores() {
        drain_active();
        let t = Tracer::new(1, u64::MAX, 4);
        {
            let _c = op_context("scan_page");
            let _g = t.begin(OpClass::Range, 5, 0);
        }
        {
            let _g = t.begin(OpClass::Get, 6, 0);
        }
        let snap = t.snapshot();
        assert_eq!(snap.spans[0].ctx, "scan_page");
        assert_eq!(snap.spans[1].ctx, "", "context guard restored on drop");
        let text = snap.spans[0].render_text();
        assert!(text.contains("ctx=scan_page"), "{text}");
    }

    #[test]
    fn batch_phases_and_chrome_export() {
        drain_active();
        let t = Tracer::new(1, u64::MAX, 4);
        {
            let _g = t.begin(OpClass::Batch, 42, 3);
            note_batch_phases(100, 20, 300);
        }
        let snap = t.snapshot();
        let s = &snap.spans[0];
        assert_eq!((s.queue_ns, s.combine_ns, s.commit_ns), (100, 20, 300));
        let chrome = snap.to_chrome_trace();
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"ph\":\"X\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"batch\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"queue_wait\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"combine\""), "{chrome}");
        assert!(chrome.contains("\"name\":\"commit\""), "{chrome}");
        // Also valid as the plain JSON snapshot.
        let json = snap.to_json().render();
        assert!(json.contains("\"queue_ns\":100"), "{json}");
    }

    #[test]
    fn emit_failure_publishes_migration_abort_span() {
        drain_active();
        let t = Tracer::new(0, u64::MAX, 4);
        t.emit_failure(OpClass::Migration, OpOutcome::MigrationAbort, 500, 1, 9);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(s.kind, "migration");
        assert_eq!(s.outcome, "migration_abort");
        assert_eq!(s.overlay, 9);
    }

    #[test]
    fn annotations_without_a_span_are_noops() {
        drain_active();
        note_abort(AbortCause::Timeout);
        note_stamp_retry(1);
        note_overlay_lock(1, 1, 1);
        note_batch_phases(1, 1, 1);
        note_commit_phase(1);
        note_outcome(OpOutcome::Overloaded);
        assert!(!in_span());
    }
}
