//! The instrument registry: names counters, gauges, histograms and event
//! rings, and renders one coherent snapshot as JSON or Prometheus text.
//!
//! Registration (`counter()` / `histogram()` / …) takes a mutex and is
//! get-or-create by name — call it at setup, hold the returned `Arc`, and
//! record through the `Arc` on the hot path (lock-free). Snapshotting
//! walks the registry under the same mutexes; it never blocks recorders.

use crate::counter::{Counter, Gauge};
use crate::events::EventRing;
use crate::hist::Histogram;
use crate::json::Json;
use crate::DEFAULT_RING_CAPACITY;
use std::sync::{Arc, Mutex};

/// A named collection of instruments (see module docs).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    hists: Mutex<Vec<(String, Arc<Histogram>)>>,
    rings: Mutex<Vec<(String, Arc<EventRing>)>>,
}

fn get_or_insert<T>(
    list: &Mutex<Vec<(String, Arc<T>)>>,
    name: &str,
    mk: impl FnOnce() -> T,
) -> Arc<T> {
    // INVARIANT: no code path panics while holding a registry lock.
    let mut list = list.lock().expect("registry poisoned");
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return v.clone();
    }
    let v = Arc::new(mk());
    list.push((name.to_string(), v.clone()));
    v
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::new)
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::new)
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.hists, name, Histogram::new)
    }

    /// The event ring named `name` (created with `capacity` on first use;
    /// an existing ring keeps its original capacity).
    pub fn ring(&self, name: &str, capacity: usize) -> Arc<EventRing> {
        get_or_insert(&self.rings, name, || EventRing::new(capacity))
    }

    /// The event ring named `name` at [`DEFAULT_RING_CAPACITY`].
    pub fn default_ring(&self, name: &str) -> Arc<EventRing> {
        self.ring(name, DEFAULT_RING_CAPACITY)
    }

    /// One coherent snapshot of every instrument as a JSON tree:
    /// `{"counters":{..},"gauges":{..},"histograms":{..},"events":{..}}`.
    /// Histograms carry count/mean/max and the standard quantiles (`_ns`
    /// keys — the stack records latencies in nanoseconds); event entries
    /// carry `capacity`, the monotone `dropped` counter and the surviving
    /// timeline.
    pub fn snapshot_json(&self) -> Json {
        let counters: Vec<(String, Json)> = self
            .counters
            .lock()
            // INVARIANT: no code path panics while holding a registry lock.
            .expect("registry poisoned")
            .iter()
            .map(|(n, c)| (n.clone(), Json::U64(c.get())))
            .collect();
        let gauges: Vec<(String, Json)> = self
            .gauges
            .lock()
            // INVARIANT: no code path panics while holding a registry lock.
            .expect("registry poisoned")
            .iter()
            .map(|(n, g)| (n.clone(), Json::I64(g.get())))
            .collect();
        let hists: Vec<(String, Json)> = self
            .hists
            .lock()
            // INVARIANT: no code path panics while holding a registry lock.
            .expect("registry poisoned")
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot().to_json_ns()))
            .collect();
        let rings: Vec<(String, Json)> = self
            .rings
            .lock()
            // INVARIANT: no code path panics while holding a registry lock.
            .expect("registry poisoned")
            .iter()
            .map(|(n, r)| (n.clone(), r.snapshot().to_json()))
            .collect();
        Json::obj()
            .field("counters", Json::Obj(counters))
            .field("gauges", Json::Obj(gauges))
            .field("histograms", Json::Obj(hists))
            .field("events", Json::Obj(rings))
    }

    /// The snapshot in Prometheus text exposition format: counters and
    /// gauges as single samples, histograms as cumulative `_bucket{le=..}`
    /// series (non-empty buckets only) plus `_sum`/`_count`, and each
    /// event ring's monotone loss accounting as `_published`/`_dropped`
    /// counters (the timeline itself is a JSON-side concept).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        // INVARIANT: no code path panics while holding a registry lock.
        for (name, c) in self.counters.lock().expect("registry poisoned").iter() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {}\n", c.get()));
        }
        // INVARIANT: no code path panics while holding a registry lock.
        for (name, g) in self.gauges.lock().expect("registry poisoned").iter() {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", g.get()));
        }
        // INVARIANT: no code path panics while holding a registry lock.
        for (name, h) in self.hists.lock().expect("registry poisoned").iter() {
            out.push_str(&h.snapshot().to_prometheus(&sanitize(name)));
        }
        // INVARIANT: no code path panics while holding a registry lock.
        for (name, r) in self.rings.lock().expect("registry poisoned").iter() {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE {n}_published counter\n{n}_published {}\n",
                r.published()
            ));
            out.push_str(&format!(
                "# TYPE {n}_dropped counter\n{n}_dropped {}\n",
                r.dropped()
            ));
        }
        out
    }
}

/// Maps a registry name onto the Prometheus metric-name alphabet
/// (`[a-zA-Z0-9_:]`; everything else becomes `_`).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    #[test]
    fn registration_is_get_or_create_by_name() {
        let r = Registry::new();
        let a = r.counter("ops");
        let b = r.counter("ops");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(2);
        b.inc();
        assert_eq!(r.counter("ops").get(), 3);
        let h1 = r.histogram("lat");
        let h2 = r.histogram("lat");
        assert!(Arc::ptr_eq(&h1, &h2));
        let ring = r.ring("timeline", 4);
        assert!(Arc::ptr_eq(&ring, &r.ring("timeline", 999)));
        assert_eq!(r.ring("timeline", 999).capacity(), 4, "first capacity wins");
    }

    #[test]
    fn snapshot_json_carries_every_instrument() {
        let r = Registry::new();
        r.counter("store.gets").add(5);
        r.gauge("inflight").set(-2);
        let h = r.histogram("get_ns");
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        r.ring("timeline", 8)
            .push(EventKind::EpochFlip { epoch: 3 });
        let json = r.snapshot_json().render();
        assert!(json.contains("\"store.gets\":5"), "{json}");
        assert!(json.contains("\"inflight\":-2"), "{json}");
        assert!(json.contains("\"p999_ns\":"), "{json}");
        assert!(json.contains("\"max_ns\":30"), "{json}");
        assert!(json.contains("\"kind\":\"epoch_flip\""), "{json}");
        assert!(json.contains("\"dropped\":0"), "{json}");
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let r = Registry::new();
        r.counter("store.gets").add(5);
        r.gauge("inflight").set(7);
        let h = r.histogram("get-ns");
        for v in 1..=100u64 {
            h.record(v);
        }
        r.ring("timeline", 8)
            .push(EventKind::EpochFlip { epoch: 1 });
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE store_gets counter\nstore_gets 5\n"));
        assert!(text.contains("# TYPE inflight gauge\ninflight 7\n"));
        assert!(text.contains("# TYPE get_ns histogram\n"));
        assert!(text.contains("get_ns_bucket{le=\"+Inf\"} 100\n"));
        assert!(text.contains("get_ns_sum 5050\nget_ns_count 100\n"));
        assert!(text.contains("timeline_published 1\n"));
        assert!(text.contains("timeline_dropped 0\n"));
        // Cumulative buckets are non-decreasing.
        let mut prev = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            if line.contains("+Inf") {
                continue;
            }
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "{line}");
            prev = v;
        }
    }
}
