//! History-checked linearizability tests for live resharding: concurrent
//! `put`/`delete`/`multi_put`/`range`/`Cursor` traffic while shards split
//! and merge underneath.
//!
//! Every worker records each operation's invocation and response through
//! a `leap_history::Session`; after the run, the offline checker searches
//! for a real-time-respecting serialization of the **complete history**
//! against a sequential map model — the dbcop methodology. A lost or
//! doubled key, a torn batch inside any snapshot, or a stale read under
//! the migration overlay all surface as "no serialization exists",
//! without hand-picked sentinel invariants.
//!
//! Cursor pages map exactly onto range events: a page is the *complete*
//! content of `[resume key, last returned key]` (a full page) or of
//! `[resume key, hi]` (the final short page) from one linearizable
//! transaction, so each page is recorded as a `Range` over the interval
//! it proves.
//!
//! Pinned-timestamp scans (`scan_snapshot`) map differently: the WHOLE
//! multi-page scan is one `SnapshotScan` event carrying its pinned
//! timestamp, and `check_snapshot_isolation` demands the merged pages
//! reflect a single instant with monotone pins across real time.
//!
//! Structural rebalance effects (epochs advancing, the key-count spread
//! narrowing) stay asserted directly.

use leap_history::{check, check_snapshot_isolation, Op, Recorder, Ret, Session};
use leap_store::{
    LeapStore, Partitioning, RebalanceAction, RebalancePolicy, Rebalancer, StoreConfig,
};
use leaplist::Params;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KEY_SPACE: u64 = 4_000;
/// Keys a worker may touch (draws skew toward the hot shard-0 interval).
fn draw_key(x: u64) -> u64 {
    if x.is_multiple_of(3) {
        x % KEY_SPACE
    } else {
        x % 1_000
    }
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Builds the store and prefills it: shard 0's interval `[0, 999]` fully
/// populated (the hot pile), the rest sparse. Returns the initial model.
///
/// `auto` selects the rebalance policy: `true` lets it self-start splits
/// and merges (the background-`Rebalancer` scenario); `false` raises the
/// thresholds out of reach, so the only migrations are the ones the test
/// drives explicitly — keeping its structural assertions exact.
fn build_store(chunk: usize, auto: bool) -> (Arc<LeapStore<u64>>, BTreeMap<u64, u64>) {
    let policy = if auto {
        RebalancePolicy {
            chunk,
            split_ratio: 1.5,
            min_split_keys: 256,
            ..RebalancePolicy::default()
        }
    } else {
        RebalancePolicy {
            chunk,
            split_ratio: 1e9,
            merge_ratio: 0.0,
            ..RebalancePolicy::default()
        }
    };
    let store = Arc::new(LeapStore::<u64>::new(
        StoreConfig::new(4, Partitioning::Range)
            .with_key_space(KEY_SPACE)
            .with_params(Params {
                node_size: 8,
                max_level: 8,
                use_trie: true,
                ..Params::default()
            })
            .with_rebalancing(policy),
    ));
    let mut initial = BTreeMap::new();
    for k in (0..1_000u64).chain((1_000..KEY_SPACE).step_by(5)) {
        store.put(k, k);
        initial.insert(k, k);
    }
    (store, initial)
}

/// A put/delete/batch writer: runs until `stop` (but at least `min_ops`
/// and at most `max_ops` operations, keeping the history bounded).
fn writer(
    store: Arc<LeapStore<u64>>,
    mut session: Session,
    stop: Arc<AtomicBool>,
    t: u64,
    min_ops: usize,
    max_ops: usize,
) {
    let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(t + 1) | 1;
    for i in 0..max_ops {
        if i >= min_ops && stop.load(Ordering::Relaxed) {
            break;
        }
        // Unique written values let the checker identify writers exactly.
        let v = (t + 1) << 40 | i as u64;
        let a = draw_key(xorshift(&mut x));
        match xorshift(&mut x) % 3 {
            0 => {
                session.put(a, v, || store.put(a, v));
            }
            1 => {
                session.delete(a, || store.delete(a));
            }
            _ => {
                let b = draw_key(xorshift(&mut x));
                let c = draw_key(xorshift(&mut x));
                let mut entries: Vec<(u64, u64)> = vec![(a, v), (b, v), (c, v)];
                entries.dedup_by_key(|e| e.0);
                let parts = entries.iter().map(|&(k, v)| (k, Some(v))).collect();
                session.batch(parts, || store.multi_put(&entries));
            }
        }
    }
}

/// A snapshot reader: windowed `range` queries.
fn range_reader(
    store: Arc<LeapStore<u64>>,
    mut session: Session,
    stop: Arc<AtomicBool>,
    t: u64,
    min_ops: usize,
    max_ops: usize,
) {
    let mut x = 0xA076_1D64_78BD_642Fu64.wrapping_mul(t + 3) | 1;
    for i in 0..max_ops {
        if i >= min_ops && stop.load(Ordering::Relaxed) {
            break;
        }
        let lo = xorshift(&mut x) % (KEY_SPACE - 500);
        let hi = lo + 499;
        session.range(lo, hi, || store.range(lo, hi));
    }
}

/// A paged reader: each cursor page is one linearizable transaction over
/// the interval it proves — recorded as a `Range` of that interval.
fn cursor_reader(
    store: Arc<LeapStore<u64>>,
    mut session: Session,
    stop: Arc<AtomicBool>,
    min_scans: usize,
    max_scans: usize,
) {
    let mut x = 0x2545_F491_4F6C_DD1Du64;
    for i in 0..max_scans {
        if i >= min_scans && stop.load(Ordering::Relaxed) {
            break;
        }
        let lo = xorshift(&mut x) % (KEY_SPACE - 1_000);
        let hi = lo + 999;
        let mut cursor = store.scan_pages(lo, hi, 128);
        let mut resume = lo;
        loop {
            let page_start = resume;
            // Two-phase recording: the invocation stamp must precede the
            // page's transaction, and the claimed interval is only known
            // from the page's content afterwards.
            let inv = session.invoke();
            let Some(page) = cursor.next_page() else {
                // Exhausted: an empty FIRST page proves [lo, hi] empty
                // (a short page already proved its own tail empty).
                if page_start == lo {
                    session.resolve(inv, Op::Range(lo, hi), Ret::Snapshot(Vec::new()));
                }
                break;
            };
            let full = page.len() == 128;
            let last = page.last().expect("pages are never empty").0;
            let proved_hi = if full { last } else { hi };
            session.resolve(inv, Op::Range(page_start, proved_hi), Ret::Snapshot(page));
            match cursor.resume_key() {
                Some(r) => resume = r,
                None => break,
            }
        }
    }
}

/// A pinned-snapshot reader: each whole multi-page `scan_snapshot` is
/// recorded as ONE `SnapshotScan` event — pin, drive every page, merge —
/// so the checker demands the pages jointly reflect a single instant.
fn snapshot_reader(
    store: Arc<LeapStore<u64>>,
    mut session: Session,
    stop: Arc<AtomicBool>,
    t: u64,
    min_scans: usize,
    max_scans: usize,
) {
    let mut x = 0x9E6D_7A2C_3F8B_0142u64.wrapping_mul(t + 5) | 1;
    for i in 0..max_scans {
        if i >= min_scans && stop.load(Ordering::Relaxed) {
            break;
        }
        let lo = xorshift(&mut x) % (KEY_SPACE - 1_000);
        let hi = lo + 999;
        session.snapshot_scan(lo, hi, || {
            let mut cursor = store.scan_snapshot_pages(lo, hi, 128);
            let ts = cursor.ts();
            let mut merged = Vec::new();
            while let Some(page) = cursor.next_page() {
                merged.extend(page);
            }
            (ts, merged)
        });
    }
}

/// The acceptance scenario: concurrent put/delete/batch/range/Cursor
/// traffic while the driver splits the hot shard and merges a cold
/// adjacent pair, chunk by chunk; the full recorded history must be
/// strictly serializable, the epoch must advance twice, and the
/// key-count spread must strictly narrow.
#[test]
fn concurrent_traffic_survives_split_and_merge() {
    let (store, initial) = build_store(64, false);
    let spread_before = store.stats().key_spread();
    let rec = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..2u64 {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || writer(s, ses, st, t, 40, 150)));
    }
    for t in 0..2u64 {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || {
            range_reader(s, ses, st, t, 10, 40)
        }));
    }
    {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || cursor_reader(s, ses, st, 3, 12)));
    }

    // The rebalance driver (unrecorded — shard moves are not map ops):
    // split the hot shard, then merge the coldest adjacent pair, pacing
    // the chunked drain so worker traffic interleaves with the overlay.
    let hot = {
        let st = store.stats();
        st.shards
            .iter()
            .filter(|s| s.owned)
            .max_by_key(|s| s.keys)
            .expect("some shard owns keys")
            .shard
    };
    assert_eq!(hot, 0, "the prefill made shard 0 hot");
    let (lo, hi) = store.router().shard_interval(hot).expect("hot owns");
    let dst = store
        .split_shard(hot, (lo + hi) / 2)
        .expect("hot split begins");
    let mut completions = 0;
    loop {
        match store.rebalance_step() {
            RebalanceAction::Completed { .. } => {
                completions += 1;
                break;
            }
            RebalanceAction::Moved { .. } => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("unexpected action during split drain: {other:?}"),
        }
    }
    assert!(!store.shard(dst).is_empty(), "split moved keys into {dst}");
    let intervals = store.router().routing().intervals();
    let (i, _) = intervals
        .windows(2)
        .enumerate()
        .map(|(i, w)| (i, store.shard(w[0].0).len() + store.shard(w[1].0).len()))
        .min_by_key(|&(_, keys)| keys)
        .expect("at least two intervals");
    let (cold_src, cold_dst) = (intervals[i].0, intervals[i + 1].0);
    store
        .merge_shards(cold_src, cold_dst)
        .expect("adjacent cold merge begins");
    loop {
        match store.rebalance_step() {
            RebalanceAction::Completed { .. } => {
                completions += 1;
                break;
            }
            RebalanceAction::Moved { .. } => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("unexpected action during merge drain: {other:?}"),
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // A final quiescent full snapshot joins the history: the checker then
    // certifies totality, not just windowed views.
    {
        let mut session = rec.session();
        session.range(0, KEY_SPACE - 1, || store.range(0, KEY_SPACE - 1));
        // At quiescence a whole paged scan is one snapshot too.
        session.range(0, KEY_SPACE - 1, || {
            store.scan_pages(0, KEY_SPACE - 1, 333).flatten().collect()
        });
    }
    let history = rec.history();
    assert!(history.len() > 150, "history too small: {}", history.len());
    let report = check(&history, &initial)
        .unwrap_or_else(|v| panic!("reshard history is not serializable:\n{v}"));
    assert_eq!(report.events, history.len());

    // Structural rebalance assertions.
    assert_eq!(completions, 2);
    let st = store.stats();
    assert_eq!(st.migrations_completed, 2);
    assert_eq!(st.epoch, 2);
    assert!(st.migrations.is_empty());
    assert_eq!(store.router().shard_interval(cold_src), None);
    assert!(
        st.key_spread() < spread_before,
        "spread must strictly narrow: {} -> {}",
        spread_before,
        st.key_spread()
    );
}

/// Two **concurrent disjoint migrations** under full traffic: shard 0 and
/// shard 2 split at the same time (slot-disjoint overlays, both provably
/// in flight), their chunk drains interleaving round-robin, while writers
/// and snapshot readers run — and a dedicated cursor repeatedly scans a
/// window that **straddles both migrating ranges**, each page recorded as
/// the `Range` it proves. The complete history must be strictly
/// serializable; structurally, the peak migration concurrency must reach
/// 2 and both epochs must install.
#[test]
fn two_concurrent_migrations_vs_straddling_cursor() {
    let (store, initial) = build_store(64, false);
    let rec = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..2u64 {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || writer(s, ses, st, t, 40, 150)));
    }
    {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || {
            range_reader(s, ses, st, 11, 10, 40)
        }));
    }
    // The straddling cursor: [400, 2700] covers both migrating ranges
    // ([500, 999] out of shard 0 and [2500, 2999] out of shard 2) plus
    // the stable interval between them.
    {
        let (s, mut session, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || {
            for i in 0..40usize {
                if i >= 4 && st.load(Ordering::Relaxed) {
                    break;
                }
                let (lo, hi) = (400u64, 2_700u64);
                let mut cursor = s.scan_pages(lo, hi, 128);
                let mut resume = lo;
                loop {
                    let page_start = resume;
                    let inv = session.invoke();
                    let Some(page) = cursor.next_page() else {
                        if page_start == lo {
                            session.resolve(inv, Op::Range(lo, hi), Ret::Snapshot(Vec::new()));
                        }
                        break;
                    };
                    let full = page.len() == 128;
                    let last = page.last().expect("pages are never empty").0;
                    let proved_hi = if full { last } else { hi };
                    session.resolve(inv, Op::Range(page_start, proved_hi), Ret::Snapshot(page));
                    match cursor.resume_key() {
                        Some(r) => resume = r,
                        None => break,
                    }
                }
            }
        }));
    }

    // Begin BOTH migrations before draining either: slot-disjoint, so the
    // overlay set holds two at once.
    store.split_shard(0, 500).expect("split hot shard 0");
    store
        .split_shard(2, 2_500)
        .expect("split shard 2 concurrently");
    assert_eq!(
        store.stats().concurrent_migrations(),
        2,
        "both overlays installed before any chunk moved"
    );
    // Drain round-robin, pacing chunks so worker traffic and cursor pages
    // interleave with both overlays in flight.
    let mut completions = 0;
    while completions < 2 {
        match store.rebalance_step() {
            RebalanceAction::Completed { .. } => completions += 1,
            RebalanceAction::Moved { .. } => std::thread::sleep(Duration::from_millis(1)),
            RebalanceAction::SplitStarted { .. } | RebalanceAction::MergeStarted { .. } => {}
            RebalanceAction::Idle => panic!("idle with migrations outstanding"),
            // No fault plan is armed, so a drain can neither fail nor
            // trip the watchdog.
            RebalanceAction::ChunkFailed { .. } | RebalanceAction::Aborted { .. } => {
                panic!("chunk failure without an armed fault plan")
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    // Quiesce whatever the policy may have additionally started, then
    // record a final full snapshot so the checker certifies totality.
    store.rebalance_until_idle();
    {
        let mut session = rec.session();
        session.range(0, KEY_SPACE - 1, || store.range(0, KEY_SPACE - 1));
    }
    let history = rec.history();
    let report = check(&history, &initial)
        .unwrap_or_else(|v| panic!("two-migration history is not serializable:\n{v}"));
    assert_eq!(report.events, history.len());
    let st = store.stats();
    assert!(
        st.peak_concurrent_migrations >= 2,
        "two migrations must have been in flight at once"
    );
    assert!(st.migrations_completed >= 2);
    assert!(st.epoch >= 2);
    assert!(st.migrations.is_empty());
}

/// The background [`Rebalancer`] under skewed load: policy-driven splits
/// must fire on their own while every recorded read and write stays
/// strictly serializable.
#[test]
fn background_rebalancer_balances_skewed_load() {
    let (store, initial) = build_store(128, true);
    let spread_before = store.stats().key_spread();
    let rec = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));
    let rebalancer = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
    let mut workers = Vec::new();
    for t in 0..2u64 {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || writer(s, ses, st, t, 40, 150)));
    }
    {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || {
            range_reader(s, ses, st, 7, 10, 40)
        }));
    }
    // Give the rebalancer time to split the hot shard at least once.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while store.stats().migrations_completed == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    let actions = rebalancer.stop().expect("rebalancer survived the run");
    let history = rec.history();
    check(&history, &initial)
        .unwrap_or_else(|v| panic!("rebalancer history is not serializable:\n{v}"));
    let st = store.stats();
    assert!(
        st.migrations_completed >= 1,
        "policy never split the hot shard (actions: {actions})"
    );
    assert!(st.key_spread() < spread_before);
}

/// Tentpole acceptance: whole multi-page `scan_snapshot`s race
/// put/delete/batch writers AND a background [`Rebalancer`]'s
/// policy-driven migrations. The recorded history must satisfy snapshot
/// isolation — every scan one atomic read of its pinned instant,
/// timestamps never running backwards, equal-timestamp scans agreeing —
/// while the writers themselves stay strictly serializable.
#[test]
fn snapshot_scans_race_writers_and_background_rebalancer() {
    let (store, initial) = build_store(128, true);
    let rec = Recorder::new();
    let stop = Arc::new(AtomicBool::new(false));
    let rebalancer = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
    let mut workers = Vec::new();
    for t in 0..2u64 {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || writer(s, ses, st, t, 40, 150)));
    }
    for t in 0..2u64 {
        let (s, ses, st) = (store.clone(), rec.session(), stop.clone());
        workers.push(std::thread::spawn(move || {
            snapshot_reader(s, ses, st, t, 6, 30)
        }));
    }
    // Give the rebalancer time to split the hot shard at least once, so
    // scans demonstrably span policy-driven migrations.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while store.stats().migrations_completed == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }
    rebalancer.stop().expect("rebalancer survived the run");
    let history = rec.history();
    check_snapshot_isolation(&history, &initial)
        .unwrap_or_else(|v| panic!("snapshot-scan history violates snapshot isolation:\n{v}"));
    let st = store.stats();
    assert!(
        st.snapshot_scans >= 12,
        "both readers ran their minimum scans: {}",
        st.snapshot_scans
    );
    assert!(
        st.bundle_depth >= 2,
        "writers deepened the version bundles: {}",
        st.bundle_depth
    );
}
