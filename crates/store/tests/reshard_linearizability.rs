//! Threaded linearizability tests for live resharding: concurrent
//! `put`/`apply`/`range`/`Cursor` traffic while shards split and merge
//! underneath.
//!
//! Invariants checked while migrations run:
//!
//! * **No key lost or duplicated** — a set of immortal keys (written once,
//!   never churned) must appear exactly once, with its original value, in
//!   every range snapshot and every paged scan covering it.
//! * **Page-internal consistency** — a writer rewrites a sentinel key set
//!   with one version per atomic batch; any snapshot or page containing
//!   two or more sentinels must show a single version (each page is one
//!   transaction).
//! * **Spread narrows** — after the rebalance (hot-shard split + cold-pair
//!   merge) the per-shard key-count spread is strictly smaller.

use leap_store::{
    LeapStore, Partitioning, RebalanceAction, RebalancePolicy, Rebalancer, StoreConfig,
};
use leaplist::Params;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KEY_SPACE: u64 = 10_000;
/// Immortal keys: k % 10 == 0. Written at prefill with value = key,
/// never written again.
fn immortal(k: u64) -> bool {
    k.is_multiple_of(10)
}
/// Sentinels: rewritten atomically as one batch, one version per batch.
/// Two sit inside the hot shard's interval, the rest spread out.
const SENTINELS: [u64; 6] = [15, 1_205, 2_405, 4_005, 6_005, 9_005];
/// Churn keys avoid immortals and sentinels.
fn churnable(k: u64) -> bool {
    !immortal(k) && k % 10 != 5
}

fn build_store() -> Arc<LeapStore<u64>> {
    let store = Arc::new(LeapStore::<u64>::new(
        StoreConfig::new(4, Partitioning::Range)
            .with_key_space(KEY_SPACE)
            .with_params(Params {
                node_size: 8,
                max_level: 8,
                use_trie: true,
                ..Params::default()
            })
            .with_rebalancing(RebalancePolicy {
                chunk: 64,
                ..RebalancePolicy::default()
            }),
    ));
    // Immortal skeleton over the whole keyspace…
    for k in (0..KEY_SPACE).step_by(10) {
        store.put(k, k);
    }
    // …plus a hot pile in shard 0's interval [0, 2499].
    for k in 0..2_500u64 {
        if churnable(k) {
            store.put(k, 1);
        }
    }
    // Sentinels start at version 0.
    let v0: Vec<(u64, u64)> = SENTINELS.iter().map(|&k| (k, 0)).collect();
    store.multi_put(&v0);
    store
}

/// Checks one snapshot (a full range result or a single cursor page):
/// strictly sorted, immortals exact, sentinel versions unanimous.
fn check_snapshot(snap: &[(u64, u64)], lo: u64, hi: u64, full_coverage: bool) {
    assert!(
        snap.windows(2).all(|w| w[0].0 < w[1].0),
        "snapshot not strictly sorted: duplicate or disorder in [{lo}, {hi}]"
    );
    for &(k, v) in snap {
        if immortal(k) {
            assert_eq!(v, k, "immortal key {k} mutated");
        }
    }
    if full_coverage {
        let mut expect = (lo..=hi).filter(|&k| immortal(k));
        let mut got = snap.iter().map(|&(k, _)| k).filter(|&k| immortal(k));
        loop {
            match (expect.next(), got.next()) {
                (None, None) => break,
                (e, g) => assert_eq!(e, g, "immortal key lost or doubled in [{lo}, {hi}]"),
            }
        }
    }
    let versions: Vec<u64> = snap
        .iter()
        .filter(|(k, _)| SENTINELS.contains(k))
        .map(|&(_, v)| v)
        .collect();
    assert!(
        versions.windows(2).all(|w| w[0] == w[1]),
        "torn sentinel batch within one snapshot: {versions:?}"
    );
}

/// The acceptance scenario: concurrent put/apply/range/Cursor traffic
/// while the driver splits the hot shard and merges a cold pair; every
/// page internally consistent, no key lost or duplicated, spread strictly
/// narrowed.
#[test]
fn concurrent_traffic_survives_split_and_merge() {
    let store = build_store();
    let spread_before = store.stats().key_spread();
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();

    // Sentinel writer: one version per atomic cross-shard batch.
    {
        let (store, stop) = (store.clone(), stop.clone());
        workers.push(std::thread::spawn(move || {
            let mut version = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let batch: Vec<(u64, u64)> = SENTINELS.iter().map(|&k| (k, version)).collect();
                store.multi_put(&batch);
                version += 1;
            }
        }));
    }
    // Churn writers: puts, deletes and mixed multi-shard batches.
    for t in 0..2u64 {
        let (store, stop) = (store.clone(), stop.clone());
        workers.push(std::thread::spawn(move || {
            let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1) | 1;
            let mut step = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            while !stop.load(Ordering::Relaxed) {
                // Skew toward the hot interval, like the load that made
                // the shard hot in the first place.
                let draw = |s: u64| {
                    if s.is_multiple_of(3) {
                        s % KEY_SPACE
                    } else {
                        s % 2_500
                    }
                };
                let a = draw(step());
                let b = draw(step());
                let c = draw(step());
                match step() % 3 {
                    0 if churnable(a) => {
                        store.put(a, t + 2);
                    }
                    1 if churnable(a) => {
                        store.delete(a);
                    }
                    _ => {
                        let batch: Vec<(u64, u64)> = [a, b, c]
                            .into_iter()
                            .filter(|&k| churnable(k))
                            .map(|k| (k, t + 2))
                            .collect();
                        store.multi_put(&batch);
                    }
                }
            }
        }));
    }
    // Range readers: full-coverage snapshots over random windows.
    for t in 0..2u64 {
        let (store, stop) = (store.clone(), stop.clone());
        workers.push(std::thread::spawn(move || {
            let mut x = 0xA076_1D64_78BD_642Fu64.wrapping_mul(t + 3) | 1;
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let lo = x % (KEY_SPACE - 1_000);
                let hi = lo + 999;
                let snap = store.range(lo, hi);
                check_snapshot(&snap, lo, hi, true);
            }
        }));
    }
    // Cursor readers: paged scans; each page one transaction, pages tile.
    {
        let (store, stop) = (store.clone(), stop.clone());
        workers.push(std::thread::spawn(move || {
            let mut x = 0x2545F4914F6CDD1Du64;
            while !stop.load(Ordering::Relaxed) {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let lo = x % (KEY_SPACE - 2_000);
                let hi = lo + 1_999;
                let mut pages = 0usize;
                let mut last_key = None;
                for page in store.scan_pages(lo, hi, 128) {
                    assert!(page.len() <= 128);
                    // Pages are disjoint and ascending across the scan.
                    if let (Some(prev), Some(&(first, _))) = (last_key, page.first()) {
                        assert!(first > prev, "pages overlap: {first} after {prev}");
                    }
                    last_key = page.last().map(|&(k, _)| k);
                    // Immortal coverage cannot be asserted per page (a
                    // page is a bounded prefix), but sortedness, immortal
                    // values and sentinel unanimity must hold within it.
                    check_snapshot(&page, lo, hi, false);
                    pages += 1;
                }
                assert!(pages > 0, "non-empty window yielded no pages");
            }
        }));
    }

    // The rebalance driver: split the hot shard, then merge the coldest
    // adjacent pair — chunk by chunk, racing all of the traffic above.
    std::thread::sleep(Duration::from_millis(50));
    let hot = {
        let st = store.stats();
        st.shards
            .iter()
            .filter(|s| s.owned)
            .max_by_key(|s| s.keys)
            .expect("some shard owns keys")
            .shard
    };
    assert_eq!(hot, 0, "the prefill made shard 0 hot");
    let (lo, hi) = store.router().shard_interval(hot).expect("hot owns");
    let dst = store
        .split_shard(hot, (lo + hi) / 2)
        .expect("hot split begins");
    let mut completions = 0;
    loop {
        match store.rebalance_step() {
            RebalanceAction::Completed { .. } => {
                completions += 1;
                break;
            }
            RebalanceAction::Moved { .. } => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("unexpected action during split drain: {other:?}"),
        }
    }
    assert!(!store.shard(dst).is_empty(), "split moved keys into {dst}");
    // Merge the coldest adjacent interval pair.
    let intervals = store.router().routing().intervals();
    let (i, _) = intervals
        .windows(2)
        .enumerate()
        .map(|(i, w)| (i, store.shard(w[0].0).len() + store.shard(w[1].0).len()))
        .min_by_key(|&(_, keys)| keys)
        .expect("at least two intervals");
    let (cold_src, cold_dst) = (intervals[i].0, intervals[i + 1].0);
    store
        .merge_shards(cold_src, cold_dst)
        .expect("adjacent cold merge begins");
    loop {
        match store.rebalance_step() {
            RebalanceAction::Completed { .. } => {
                completions += 1;
                break;
            }
            RebalanceAction::Moved { .. } => {}
            other => panic!("unexpected action during merge drain: {other:?}"),
        }
    }
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // Post-rebalance: the epoch advanced twice, the emptied slot parked,
    // and the key-count spread strictly narrowed.
    assert_eq!(completions, 2);
    let st = store.stats();
    assert_eq!(st.migrations_completed, 2);
    assert_eq!(st.epoch, 2);
    assert!(st.migration.is_none());
    assert_eq!(store.router().shard_interval(cold_src), None);
    assert!(
        st.key_spread() < spread_before,
        "spread must strictly narrow: {} -> {}",
        spread_before,
        st.key_spread()
    );
    // Quiescent full check: immortals all present exactly once.
    let snap = store.range(0, KEY_SPACE - 1);
    check_snapshot(&snap, 0, KEY_SPACE - 1, true);
    assert_eq!(snap.len(), store.len());
    // And the paged scan agrees with the one-shot snapshot at rest.
    let paged: Vec<(u64, u64)> = store.scan_pages(0, KEY_SPACE - 1, 333).flatten().collect();
    assert_eq!(paged, snap);
}

/// The background [`Rebalancer`] under skewed load: policy-driven splits
/// must fire on their own and every invariant must hold throughout.
#[test]
fn background_rebalancer_balances_skewed_load() {
    let store = Arc::new(LeapStore::<u64>::new(
        StoreConfig::new(4, Partitioning::Range)
            .with_key_space(KEY_SPACE)
            .with_params(Params {
                node_size: 8,
                max_level: 8,
                use_trie: true,
                ..Params::default()
            })
            .with_rebalancing(RebalancePolicy {
                chunk: 128,
                split_ratio: 1.5,
                min_split_keys: 256,
                ..RebalancePolicy::default()
            }),
    ));
    for k in 0..2_000u64 {
        store.put(k, k);
    }
    let spread_before = store.stats().key_spread();
    let rebalancer = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let (store, stop) = (store.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut snaps = 0u64;
            // Do-while: at least one full snapshot completes even if the
            // rebalancer finishes before this thread gets scheduled.
            loop {
                let snap = store.range(0, KEY_SPACE - 1);
                assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
                assert_eq!(snap.len(), 2_000, "reads racing the rebalancer");
                snaps += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            snaps
        })
    };
    // Give the rebalancer time to split the hot shard at least once.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while store.stats().migrations_completed == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::Relaxed);
    assert!(reader.join().unwrap() > 0);
    let actions = rebalancer.stop();
    let st = store.stats();
    assert!(
        st.migrations_completed >= 1,
        "policy never split the hot shard (actions: {actions})"
    );
    assert!(st.key_spread() < spread_before);
    assert_eq!(store.len(), 2_000);
    for k in 0..2_000u64 {
        assert_eq!(store.get(k), Some(k), "key {k}");
    }
}
