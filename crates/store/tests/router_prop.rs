//! Property tests for the shard router, under both partitioning modes:
//!
//! 1. every key maps to exactly one shard (total + deterministic + in
//!    bounds);
//! 2. `shards_for_range(lo, hi)` visits **exactly** the shards that can
//!    hold a key in `[lo, hi]` — no shard that owns a key in the range is
//!    missed, and (in range mode) no returned shard is disjoint from it.

use leap_store::{Partitioning, Router};
use proptest::prelude::*;

fn modes() -> [Partitioning; 2] {
    [Partitioning::Hash, Partitioning::Range]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality and determinism: any key, any geometry, one shard.
    #[test]
    fn every_key_maps_to_exactly_one_shard(
        shards in 1usize..32,
        key_space in 1u64..1_000_000,
        key in any::<u64>(),
    ) {
        for mode in modes() {
            let r = Router::new(mode, shards, key_space);
            let s = r.shard_of(key);
            prop_assert!(s < shards, "{mode:?}: shard {} out of {}", s, shards);
            prop_assert_eq!(s, r.shard_of(key), "{mode:?}: routing must be deterministic");
        }
    }

    /// Soundness: for any key within the queried range, the key's shard is
    /// in the visited set (otherwise a range query would miss data).
    #[test]
    fn range_visits_cover_every_member_key(
        shards in 1usize..32,
        key_space in 1u64..1_000_000,
        lo in 0u64..1_000_000,
        width in 0u64..100_000,
        offsets in prop::collection::vec(any::<u64>(), 1..20),
    ) {
        let hi = lo + width;
        for mode in modes() {
            let r = Router::new(mode, shards, key_space);
            let visited = r.shards_for_range(lo, hi);
            for off in &offsets {
                let key = lo + off % (width + 1); // uniform in [lo, hi]
                prop_assert!(
                    visited.contains(&r.shard_of(key)),
                    "{mode:?}: key {} in [{}, {}] maps to shard {} not visited ({:?})",
                    key, lo, hi, r.shard_of(key), visited
                );
            }
        }
    }

    /// Tightness (range mode): every visited shard's owned interval
    /// actually overlaps `[lo, hi]`, and unvisited shards are disjoint
    /// from it — the visited set is exactly the overlapping shards.
    #[test]
    fn range_mode_visits_exactly_overlapping_shards(
        shards in 1usize..32,
        key_space in 32u64..1_000_000,
        lo in 0u64..1_000_000,
        width in 0u64..100_000,
    ) {
        let hi = lo + width;
        let r = Router::new(Partitioning::Range, shards, key_space);
        let visited = r.shards_for_range(lo, hi);
        for s in 0..shards {
            let (slo, shi) = r.shard_interval(s).expect("range mode has intervals");
            let overlaps = slo <= hi && lo <= shi;
            prop_assert_eq!(
                visited.contains(&s),
                overlaps,
                "shard {} [{}, {}] vs range [{}, {}]",
                s, slo, shi, lo, hi
            );
        }
        // Ascending and duplicate-free, so a store can walk it in order.
        prop_assert!(visited.windows(2).all(|w| w[0] < w[1]));
    }

    /// Hash mode must visit all shards for any non-empty range: scattered
    /// placement means any shard may own any key.
    #[test]
    fn hash_mode_visits_all_shards(
        shards in 1usize..32,
        lo in 0u64..1_000_000,
        width in 0u64..100_000,
    ) {
        let r = Router::new(Partitioning::Hash, shards, 1_000_000);
        let visited = r.shards_for_range(lo, lo + width);
        prop_assert_eq!(visited, (0..shards).collect::<Vec<_>>());
    }

    /// Inverted ranges visit nothing in either mode.
    #[test]
    fn inverted_ranges_visit_nothing(
        shards in 1usize..32,
        lo in 1u64..1_000_000,
        gap in 1u64..1_000,
    ) {
        for mode in modes() {
            let r = Router::new(mode, shards, 1_000_000);
            prop_assert_eq!(r.shards_for_range(lo, lo - gap.min(lo)), Vec::<usize>::new());
        }
    }

    /// Range-mode contiguity: shard ids are monotone in the key, so a
    /// shard's key set is one interval — the property the tight range
    /// visiting relies on.
    #[test]
    fn range_mode_is_monotone_in_the_key(
        shards in 1usize..32,
        key_space in 32u64..1_000_000,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let r = Router::new(Partitioning::Range, shards, key_space);
        let (x, y) = (a.min(b), a.max(b));
        prop_assert!(r.shard_of(x) <= r.shard_of(y), "key {} -> {}, key {} -> {}",
            x, r.shard_of(x), y, r.shard_of(y));
    }
}
