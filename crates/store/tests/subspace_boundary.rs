//! Regression tests pinning [`Cursor`] behavior at a [`Subspace`] prefix
//! boundary while a migration overlay straddles it.
//!
//! The scenario that motivates them: `leap-memdb`'s sharded backend scans
//! an index subspace through paged cursors while a rebalance migrates the
//! subspace's keys into a destination shard that **also holds the
//! neighbouring subspace's keys**. A page must then never leak keys from
//! the neighbour (the per-shard visit ranges must stay clipped to the
//! query), and a cursor whose final page ends exactly on the subspace's
//! last key must *not* resume into the next subspace.

use leap_store::{
    LeapStore, Partitioning, RebalanceAction, RebalancePolicy, StoreConfig, Subspace,
};
use leaplist::Params;

/// Two subspaces over two shards (one each), tiny migration chunks.
fn store() -> LeapStore<u64> {
    LeapStore::new(
        StoreConfig::new(2, Partitioning::Range)
            .with_key_space(Subspace::key_space(2))
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
            .with_rebalancing(RebalancePolicy {
                chunk: 2,
                ..RebalancePolicy::default()
            }),
    )
}

/// Keys hugging both sides of the subspace boundary: the top of subspace
/// 0 (including its very last key) and the bottom of subspace 1.
fn prefill(store: &LeapStore<u64>, a: Subspace, b: Subspace) -> (Vec<u64>, Vec<u64>) {
    let top: Vec<u64> = (0..10u64)
        .map(|i| a.key(leap_store::MAX_PAYLOAD - 9 + i))
        .collect();
    let bottom: Vec<u64> = (0..10u64).map(|i| b.key(i)).collect();
    for &k in top.iter().chain(&bottom) {
        store.put(k, k);
    }
    (top, bottom)
}

/// Collects a paged scan over one subspace and asserts every returned key
/// belongs to it.
fn paged_subspace(store: &LeapStore<u64>, ss: Subspace, page: usize) -> Vec<u64> {
    let mut keys = Vec::new();
    for p in store.scan_pages(ss.lo(), ss.hi(), page) {
        assert!(p.len() <= page);
        for &(k, _) in &p {
            assert!(
                ss.contains(k),
                "page over subspace {} leaked key {k:#x}",
                ss.tag()
            );
        }
        keys.extend(p.iter().map(|&(k, _)| k));
    }
    keys
}

/// Mid-migration, with the overlay's destination holding BOTH the
/// migrated subspace-0 keys and all of subspace 1, pages over either
/// subspace must stay inside it and tile exactly.
#[test]
fn cursor_pages_stay_inside_subspace_across_straddling_overlay() {
    let store = store();
    let (a, b) = (Subspace::new(0), Subspace::new(1));
    let (top, bottom) = prefill(&store, a, b);

    // Merge shard 0 (all of subspace 0) into shard 1 (all of subspace 1):
    // the migrating range's end abuts the prefix boundary, and migrated
    // keys interleave into the neighbour's list. Drain only one chunk so
    // the overlay stays in flight.
    store.merge_shards(0, 1).expect("adjacent merge begins");
    assert!(matches!(
        store.rebalance_step(),
        RebalanceAction::Moved { .. }
    ));
    let mig = store.router().migration().expect("overlay in flight");
    assert!(mig.moved > 0 && (mig.moved as usize) < top.len());

    for page in [1usize, 3, 10, 64] {
        assert_eq!(paged_subspace(&store, a, page), top, "subspace 0, {page}");
        assert_eq!(
            paged_subspace(&store, b, page),
            bottom,
            "subspace 1, {page}"
        );
    }
    // One-shot ranges agree (both sides of the overlay in one snapshot).
    assert_eq!(store.range(a.lo(), a.hi()).len(), top.len());
    assert_eq!(store.range(b.lo(), b.hi()).len(), bottom.len());

    // Drain to completion: same story at rest, one list holding all keys.
    store.rebalance_until_idle();
    assert!(store.router().migration().is_none());
    for page in [1usize, 3, 64] {
        assert_eq!(paged_subspace(&store, a, page), top);
        assert_eq!(paged_subspace(&store, b, page), bottom);
    }
    let ss = store.subspace_stats(&[a, b]);
    assert_eq!((ss[0].keys, ss[1].keys), (10, 10));
    assert_eq!(
        ss[0].shards, ss[1].shards,
        "after the merge one shard serves both subspaces"
    );
}

/// Two subspaces over **four** shards (two shards each), for scenarios
/// that need two slot-disjoint migrations in flight at once.
fn store4() -> LeapStore<u64> {
    LeapStore::new(
        StoreConfig::new(4, Partitioning::Range)
            .with_key_space(Subspace::key_space(2))
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
            .with_rebalancing(RebalancePolicy {
                chunk: 2,
                ..RebalancePolicy::default()
            }),
    )
}

/// TWO disjoint overlays in flight at once — one straddling the subspace
/// prefix boundary (shard 1's top-of-subspace-0 keys merging into the
/// shard that holds subspace 1's bottom), one splitting subspace 0's low
/// shard — while paged cursors scan each subspace and a third cursor
/// straddles everything. No page may leak a neighbour's key, every scan
/// must tile exactly, mid-flight and after both drains complete.
#[test]
fn two_concurrent_overlays_vs_subspace_cursors() {
    let store = store4();
    let (a, b) = (Subspace::new(0), Subspace::new(1));
    // Keys hugging the boundary from both sides, plus subspace 0's low
    // end (shard 0), so both migrations have distinct keys to move.
    let a_bottom: Vec<u64> = (0..10u64).map(|i| a.key(i)).collect();
    let a_top: Vec<u64> = (0..10u64)
        .map(|i| a.key(leap_store::MAX_PAYLOAD - 9 + i))
        .collect();
    let b_bottom: Vec<u64> = (0..10u64).map(|i| b.key(i)).collect();
    for &k in a_bottom.iter().chain(&a_top).chain(&b_bottom) {
        store.put(k, k);
    }
    let a_all: Vec<u64> = a_bottom.iter().chain(&a_top).copied().collect();

    // Overlay 1: shard 1 (subspace 0's upper half-interval) merges into
    // shard 2, whose list holds subspace 1's bottom — migrated keys
    // interleave across the prefix boundary. Overlay 2: slot-disjoint
    // split of shard 0 inside subspace 0's low end.
    store.merge_shards(1, 2).expect("boundary merge begins");
    store
        .split_shard(0, a.key(5))
        .expect("disjoint split begins");
    assert_eq!(store.router().migrations().len(), 2, "both in flight");
    // Two round-robin steps: one bounded chunk drained from EACH overlay,
    // both still in flight afterwards.
    assert!(matches!(
        store.rebalance_step(),
        RebalanceAction::Moved { .. }
    ));
    assert!(matches!(
        store.rebalance_step(),
        RebalanceAction::Moved { .. }
    ));
    let migs = store.router().migrations();
    assert_eq!(migs.len(), 2, "chunked drains left both overlays live");
    for m in &migs {
        assert!(
            m.moved > 0,
            "round-robin drained overlay [{}, {}]",
            m.lo,
            m.hi
        );
    }

    for page in [1usize, 3, 10, 64] {
        assert_eq!(paged_subspace(&store, a, page), a_all, "subspace 0, {page}");
        assert_eq!(
            paged_subspace(&store, b, page),
            b_bottom,
            "subspace 1, {page}"
        );
    }
    // A cursor straddling BOTH overlays and the boundary tiles exactly.
    let straddle: Vec<u64> = store
        .scan_pages(a.lo(), b.hi(), 7)
        .flatten()
        .map(|(k, _)| k)
        .collect();
    let mut want = a_all.clone();
    want.extend(&b_bottom);
    assert_eq!(straddle, want, "straddling scan sees each key exactly once");
    assert_eq!(store.range(a.lo(), a.hi()).len(), a_all.len());
    assert_eq!(store.range(b.lo(), b.hi()).len(), b_bottom.len());

    // Drain both to completion: same story at rest.
    store.rebalance_until_idle();
    assert!(store.router().migrations().is_empty());
    assert!(store.stats().peak_concurrent_migrations >= 2);
    for page in [1usize, 3, 64] {
        assert_eq!(paged_subspace(&store, a, page), a_all);
        assert_eq!(paged_subspace(&store, b, page), b_bottom);
    }
    let ss = store.subspace_stats(&[a, b]);
    assert_eq!((ss[0].keys, ss[1].keys), (20, 10));
}

/// The resume-key clamp at the boundary: a cursor whose page comes back
/// full with its last key exactly on the subspace's final key must report
/// exhaustion, not resume into the neighbouring subspace.
#[test]
fn full_page_ending_on_subspace_last_key_does_not_resume_into_neighbour() {
    let store = store();
    let (a, b) = (Subspace::new(0), Subspace::new(1));
    let (top, _bottom) = prefill(&store, a, b);
    assert_eq!(*top.last().unwrap(), a.hi(), "prefill reaches the last key");

    // Overlay straddling the boundary again.
    store.merge_shards(0, 1).expect("merge begins");
    store.rebalance_step();

    // Page size exactly the population: ONE full page ending on a.hi().
    let mut cursor = store.scan_pages(a.lo(), a.hi(), top.len());
    let page = cursor.next_page().expect("full page");
    assert_eq!(page.len(), top.len());
    assert_eq!(page.last().unwrap().0, a.hi());
    assert_eq!(
        cursor.resume_key(),
        None,
        "a full page ending on the range's last key must exhaust the cursor"
    );
    assert_eq!(
        cursor.next_page(),
        None,
        "resuming past the subspace would leak into the neighbour"
    );

    // Same clamp via the iterator surface, at a page size that divides
    // the population (every page full, the final one ending on a.hi()).
    let pages: Vec<Vec<(u64, u64)>> = store.scan_pages(a.lo(), a.hi(), 5).collect();
    assert_eq!(pages.len(), 2);
    assert!(pages.iter().all(|p| p.len() == 5));
    assert!(pages.iter().flatten().all(|&(k, _)| a.contains(k)));
}
