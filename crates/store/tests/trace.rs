//! Deterministic leap-trace integration: a fault-injected retry storm
//! must produce a tail-captured span whose phase breakdown sums to the
//! measured latency and names the STM abort causes and the overlay that
//! interfered; head sampling must gate the get path exactly; typed
//! failures must be retained even when sampling and the SLO would both
//! drop them.

use leap_obs::{AbortCause, TraceConfig};
use leap_store::{
    FaultPlan, FaultPoint, LeapStore, Partitioning, RetryPolicy, StoreConfig, StoreError,
};

const KEY_SPACE: u64 = 1_024;

/// The acceptance scenario: the very first op is a put into a migrating
/// range whose first three commit attempts are failed by injection. The
/// span must be tail-captured (SLO 0) and carry the whole story — three
/// commit-conflict retries, the overlay id that held the write lock, a
/// nonzero commit phase, and phases that sum exactly to the total.
#[test]
fn retry_storm_put_is_tail_captured_with_full_phase_breakdown() {
    let plan = FaultPlan::new(1)
        .always(FaultPoint::StmCommit)
        .with_budget(FaultPoint::StmCommit, 3);
    let store: LeapStore<u64> = LeapStore::new(
        StoreConfig::new(2, Partitioning::Range)
            .with_key_space(KEY_SPACE)
            .with_faults(plan)
            // SLO 0: every finished op is over-threshold, so retention
            // needs no sampling luck. Head sampling off proves the tail
            // path alone captured it.
            .with_tracing(TraceConfig::default().with_slo_ns(0).with_sample_period(0)),
    );
    // Live overlay over [100, 511], never stepped: key 200 stays in the
    // migrating range for the whole test.
    store.split_shard(0, 100).expect("split");
    let m = store.router().migration().expect("overlay is live");

    assert_eq!(store.put(200, 7), None);
    assert_eq!(store.get(200), Some(7));

    let snap = store.tracer().expect("tracing armed").snapshot();
    assert_eq!(snap.dropped, 0, "nothing evicted in a two-op run");
    let span = snap
        .spans
        .iter()
        .find(|s| s.kind == "put" && s.key == 200)
        .expect("put span retained");

    // Retained by tail capture, not sampling, with a healthy outcome.
    assert!(span.tail, "SLO 0 marks every op as tail");
    assert!(!span.sampled, "head sampling was off");
    assert_eq!(span.outcome, "ok");

    // The retry storm is attributed: three injected commit failures,
    // each named as a commit conflict.
    assert_eq!(span.retries, 3, "budgeted faults all landed on this op");
    assert_eq!(span.causes, vec![AbortCause::ConflictCommit; 3]);

    // Migration interference: the overlay id that held the write lock.
    assert_eq!(span.overlay, m.id, "overlay id recorded on the write path");
    assert!(span.lock_hold_ns > 0, "migration lock hold time measured");

    // Phase breakdown sums exactly to the measured latency.
    assert!(span.commit_ns > 0, "commit phase timed");
    assert_eq!(
        span.queue_ns + span.combine_ns + span.commit_ns + span.other_ns(),
        span.total_ns,
        "phases + remainder account for the whole span"
    );

    // The text renderer tells the same story...
    let text = span.render_text();
    for needle in ["conflict_commit", "retries=3", &format!("overlay={}", m.id)] {
        assert!(
            text.contains(needle),
            "render_text missing {needle}:\n{text}"
        );
    }
    // ...and the Chrome export is a complete trace-event document.
    let chrome = snap.to_chrome_trace();
    for needle in [
        "\"traceEvents\":[",
        "\"ph\":\"X\"",
        "\"name\":\"put\"",
        "\"dur\":",
    ] {
        assert!(chrome.contains(needle), "chrome trace missing {needle}");
    }
}

/// Head sampling gates the get path exactly: period 1 elects every get,
/// period 0 (with a huge SLO and no failures) retains nothing at all.
#[test]
fn get_spans_follow_the_shared_sampling_knob() {
    let every = |period: u32| -> LeapStore<u64> {
        LeapStore::new(
            StoreConfig::new(2, Partitioning::Hash)
                .with_key_space(KEY_SPACE)
                .with_sample_period(period)
                .with_tracing(TraceConfig::default().with_slo_ns(u64::MAX)),
        )
    };
    let store = every(1);
    store.put(9, 90);
    for _ in 0..4 {
        assert_eq!(store.get(9), Some(90));
    }
    let snap = store.tracer().expect("tracing armed").snapshot();
    let gets: Vec<_> = snap.spans.iter().filter(|s| s.kind == "get").collect();
    assert_eq!(gets.len(), 4, "period 1 elects every get");
    assert!(gets.iter().all(|s| s.sampled && s.key == 9));

    let store = every(0);
    store.put(9, 90);
    for _ in 0..4 {
        assert_eq!(store.get(9), Some(90));
    }
    let snap = store.tracer().expect("tracing armed").snapshot();
    assert!(
        snap.spans.is_empty(),
        "period 0 + SLO MAX + no failures retains nothing: {:?}",
        snap.spans
    );
}

/// A typed failure is always retained: with sampling off and an SLO no
/// op can exceed, a bounded put that exhausts its retry budget must
/// still land in the ring — outcome `timeout`, every attempt's abort
/// cause named, including the deadline itself.
#[test]
fn timed_out_op_is_retained_despite_sampling_and_slo() {
    let store: LeapStore<u64> = LeapStore::new(
        StoreConfig::new(2, Partitioning::Range)
            .with_key_space(KEY_SPACE)
            .with_faults(FaultPlan::new(7).always(FaultPoint::StmCommit))
            .with_tracing(
                TraceConfig::default()
                    .with_slo_ns(u64::MAX)
                    .with_sample_period(0),
            ),
    );
    match store.put_within(5, 50, RetryPolicy::default().max_attempts(4)) {
        Err(StoreError::Timeout { attempts }) => assert!(attempts >= 4),
        other => panic!("expected Timeout, got {other:?}"),
    }
    let snap = store.tracer().expect("tracing armed").snapshot();
    let span = snap
        .spans
        .iter()
        .find(|s| s.kind == "put" && s.key == 5)
        .expect("failed op retained");
    assert_eq!(span.outcome, "timeout");
    assert!(
        !span.sampled && !span.tail,
        "retained purely for the failure"
    );
    assert!(span.retries >= 4, "every attempt counted: {}", span.retries);
    assert!(span.causes.contains(&AbortCause::ConflictCommit));
    assert!(
        span.causes.contains(&AbortCause::Timeout),
        "the deadline itself is attributed: {:?}",
        span.causes
    );
}
