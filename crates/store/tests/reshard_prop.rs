//! Property test for live resharding: **any** interleaving of migration
//! steps (explicit splits and merges, policy-driven steps, partial chunk
//! drains) with random `apply` batches, puts and deletes preserves the
//! key → value map exactly, compared against a `BTreeMap` model replayed
//! sequentially. After every action the store's linearizable `range` must
//! equal the model; at the end, `get`, paged `Cursor` scans, `count_range`
//! and `len` must all agree with the model too.
//!
//! Since the overlay-set router landed, generated `Split`/`Merge` actions
//! on slot-disjoint shards **succeed while another migration is still
//! draining**, so the random schedules exercise several concurrent
//! overlays; the deterministic companion test below pins the
//! two-concurrent-migrations interleaving explicitly (both overlays
//! provably in flight, steps alternating between them, every read surface
//! checked against the model after each step).

use leap_store::{BatchOp, LeapStore, Partitioning, RebalancePolicy, StoreConfig};
use leaplist::Params;
use proptest::prelude::*;
use std::collections::BTreeMap;

const KEYS: u64 = 64;

#[derive(Clone, Debug)]
enum Action {
    /// One atomic mixed batch: (key, value, is_put) per component.
    Apply(Vec<(u64, u64, bool)>),
    Put(u64, u64),
    Delete(u64),
    /// One bounded rebalance step (chunk move, completion, or a
    /// policy-initiated split/merge).
    Step,
    /// Split a (selected) owning shard somewhere inside its interval.
    Split(usize, u64),
    /// Merge an adjacent interval pair (selected by index).
    Merge(usize),
}

fn store() -> LeapStore<u64> {
    LeapStore::new(
        StoreConfig::new(4, Partitioning::Range)
            .with_key_space(KEYS)
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
            // Tiny chunks: most migrations stay in flight across several
            // interleaved ops, which is the interesting schedule.
            .with_rebalancing(RebalancePolicy {
                chunk: 3,
                ..RebalancePolicy::default()
            }),
    )
}

/// Applies one action to the store; mirrors mutations into the model.
fn run(store: &LeapStore<u64>, model: &mut BTreeMap<u64, u64>, action: &Action) {
    match action {
        Action::Apply(parts) => {
            let batch: Vec<BatchOp<u64>> = parts
                .iter()
                .map(|&(k, v, put)| {
                    if put {
                        BatchOp::Update(k, v)
                    } else {
                        BatchOp::Remove(k)
                    }
                })
                .collect();
            let got = store.apply(&batch);
            let want: Vec<Option<u64>> = parts
                .iter()
                .map(|&(k, v, put)| {
                    if put {
                        model.insert(k, v)
                    } else {
                        model.remove(&k)
                    }
                })
                .collect();
            assert_eq!(got, want, "batch previous values diverged");
        }
        Action::Put(k, v) => {
            assert_eq!(store.put(*k, *v), model.insert(*k, *v), "put prev");
        }
        Action::Delete(k) => {
            assert_eq!(store.delete(*k), model.remove(k), "delete prev");
        }
        Action::Step => {
            store.rebalance_step();
        }
        Action::Split(sel, at_raw) => {
            // Target a currently-owning shard and a key inside its
            // interval, so most generated splits actually begin.
            let intervals = store.router().routing().intervals();
            let (s, lo, hi) = intervals[sel % intervals.len()];
            if lo < hi {
                let at = lo + 1 + at_raw % (hi - lo);
                let _ = store.split_shard(s, at);
            }
        }
        Action::Merge(sel) => {
            let intervals = store.router().routing().intervals();
            if intervals.len() >= 2 {
                let i = sel % (intervals.len() - 1);
                let _ = store.merge_shards(intervals[i].0, intervals[i + 1].0);
            }
        }
    }
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => prop::collection::vec((0u64..KEYS, 0u64..1_000, any::<bool>()), 1..6)
            .prop_map(Action::Apply),
        2 => (0u64..KEYS, 0u64..1_000).prop_map(|(k, v)| Action::Put(k, v)),
        1 => (0u64..KEYS).prop_map(Action::Delete),
        4 => Just(Action::Step),
        1 => (0usize..8, 1u64..KEYS).prop_map(|(s, at)| Action::Split(s, at)),
        1 => (0usize..8).prop_map(Action::Merge),
    ]
}

/// Two disjoint migrations provably in flight at once, their chunk drains
/// interleaved round-robin with writes that straddle both overlays — the
/// store must match the sequentially-replayed `BTreeMap` model after
/// every single action.
#[test]
fn two_concurrent_migrations_interleave_against_model() {
    let store = store();
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for k in 0..KEYS {
        store.put(k, k * 7);
        model.insert(k, k * 7);
    }
    let check = |model: &BTreeMap<u64, u64>, what: &str| {
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(store.range(0, KEYS), want, "{what}");
    };
    // KEYS = 64 over 4 shards: intervals of 16. Split shards 0 and 2 —
    // slot-disjoint, so both overlays install concurrently.
    let d0 = store.split_shard(0, 8).expect("split shard 0 at 8");
    let d2 = store.split_shard(2, 40).expect("split shard 2 at 40");
    assert_eq!(store.router().migrations().len(), 2, "both in flight");
    assert_eq!(store.stats().concurrent_migrations(), 2);
    let ranges: Vec<(u64, u64)> = store
        .router()
        .migrations()
        .iter()
        .map(|m| (m.lo, m.hi))
        .collect();
    assert_eq!(ranges, vec![(8, 15), (40, 47)], "disjoint migrating ranges");
    // Interleave: one bounded drain step (round-robin over the two
    // overlays), then writes inside overlay 0, inside overlay 1,
    // straddling both in ONE atomic batch, and outside both.
    let mut steps = 0u64;
    while !store.router().migrations().is_empty() {
        store.rebalance_step();
        steps += 1;
        let i = steps;
        assert_eq!(store.put(9, i), model.insert(9, i), "overlay-0 put");
        assert_eq!(store.delete(41), model.remove(&41), "overlay-1 delete");
        let batch = [
            BatchOp::Update(10, i),
            BatchOp::Update(44, i),
            BatchOp::Remove(11),
            BatchOp::Update(30, i),
        ];
        let got = store.apply(&batch);
        let want = vec![
            model.insert(10, i),
            model.insert(44, i),
            model.remove(&11),
            model.insert(30, i),
        ];
        assert_eq!(got, want, "cross-overlay atomic batch, step {steps}");
        check(&model, "after interleaved step");
        assert!(steps < 1_000, "drains must converge");
    }
    // Both completed: ownership flipped to both destinations, and the
    // peak concurrency is recorded for the stats surface.
    assert!(steps > 2, "drains were actually chunked");
    let st = store.stats();
    assert!(st.migrations_completed >= 2);
    assert!(st.peak_concurrent_migrations >= 2);
    assert_eq!(store.router().shard_of(12), d0);
    assert_eq!(store.router().shard_of(44), d2);
    check(&model, "after both completions");
    assert_eq!(store.len(), model.len());
    for (&k, &v) in &model {
        assert_eq!(store.get(k), Some(v), "key {k}");
    }
    let paged: Vec<(u64, u64)> = store.scan_pages(0, KEYS, 5).flatten().collect();
    assert_eq!(
        paged,
        model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn resharding_interleaved_with_batches_preserves_the_map(
        prefill in prop::collection::vec((0u64..KEYS, 0u64..1_000), 0..32),
        actions in prop::collection::vec(action_strategy(), 1..40),
    ) {
        let store = store();
        let mut model = BTreeMap::new();
        for &(k, v) in &prefill {
            store.put(k, v);
            model.insert(k, v);
        }
        for action in &actions {
            run(&store, &mut model, action);
            // The linearizable range must equal the model after every
            // action — including mid-migration, where some keys live in
            // the destination and some still in the source.
            let snapshot = store.range(0, KEYS);
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&snapshot, &want, "after {:?}", action);
        }
        // Quiesce any in-flight migration, then check every read surface.
        store.rebalance_until_idle();
        prop_assert!(store.router().migration().is_none());
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(store.range(0, KEYS), want.clone());
        prop_assert_eq!(store.len(), model.len());
        prop_assert_eq!(store.count_range(0, KEYS), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(store.get(k), Some(v), "key {}", k);
        }
        let paged: Vec<(u64, u64)> = store.scan_pages(0, KEYS, 5).flatten().collect();
        prop_assert_eq!(paged, want);
        // Structural invariants survive arbitrary resharding.
        let st = store.stats();
        prop_assert_eq!(
            st.shards.iter().map(|s| s.keys as usize).sum::<usize>(),
            model.len(),
            "shard key counts must add up"
        );
        for s in 0..store.shards() {
            for size in store.shard(s).node_sizes() {
                prop_assert!(size <= 4, "shard {} node exceeds K", s);
            }
        }
    }
}
