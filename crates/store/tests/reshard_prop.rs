//! Property test for live resharding: **any** interleaving of migration
//! steps (explicit splits and merges, policy-driven steps, partial chunk
//! drains) with random `apply` batches, puts and deletes preserves the
//! key → value map exactly, compared against a `BTreeMap` model replayed
//! sequentially. After every action the store's linearizable `range` must
//! equal the model; at the end, `get`, paged `Cursor` scans, `count_range`
//! and `len` must all agree with the model too.

use leap_store::{BatchOp, LeapStore, Partitioning, RebalancePolicy, StoreConfig};
use leaplist::Params;
use proptest::prelude::*;
use std::collections::BTreeMap;

const KEYS: u64 = 64;

#[derive(Clone, Debug)]
enum Action {
    /// One atomic mixed batch: (key, value, is_put) per component.
    Apply(Vec<(u64, u64, bool)>),
    Put(u64, u64),
    Delete(u64),
    /// One bounded rebalance step (chunk move, completion, or a
    /// policy-initiated split/merge).
    Step,
    /// Split a (selected) owning shard somewhere inside its interval.
    Split(usize, u64),
    /// Merge an adjacent interval pair (selected by index).
    Merge(usize),
}

fn store() -> LeapStore<u64> {
    LeapStore::new(
        StoreConfig::new(4, Partitioning::Range)
            .with_key_space(KEYS)
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
            // Tiny chunks: most migrations stay in flight across several
            // interleaved ops, which is the interesting schedule.
            .with_rebalancing(RebalancePolicy {
                chunk: 3,
                ..RebalancePolicy::default()
            }),
    )
}

/// Applies one action to the store; mirrors mutations into the model.
fn run(store: &LeapStore<u64>, model: &mut BTreeMap<u64, u64>, action: &Action) {
    match action {
        Action::Apply(parts) => {
            let batch: Vec<BatchOp<u64>> = parts
                .iter()
                .map(|&(k, v, put)| {
                    if put {
                        BatchOp::Update(k, v)
                    } else {
                        BatchOp::Remove(k)
                    }
                })
                .collect();
            let got = store.apply(&batch);
            let want: Vec<Option<u64>> = parts
                .iter()
                .map(|&(k, v, put)| {
                    if put {
                        model.insert(k, v)
                    } else {
                        model.remove(&k)
                    }
                })
                .collect();
            assert_eq!(got, want, "batch previous values diverged");
        }
        Action::Put(k, v) => {
            assert_eq!(store.put(*k, *v), model.insert(*k, *v), "put prev");
        }
        Action::Delete(k) => {
            assert_eq!(store.delete(*k), model.remove(k), "delete prev");
        }
        Action::Step => {
            store.rebalance_step();
        }
        Action::Split(sel, at_raw) => {
            // Target a currently-owning shard and a key inside its
            // interval, so most generated splits actually begin.
            let intervals = store.router().routing().intervals();
            let (s, lo, hi) = intervals[sel % intervals.len()];
            if lo < hi {
                let at = lo + 1 + at_raw % (hi - lo);
                let _ = store.split_shard(s, at);
            }
        }
        Action::Merge(sel) => {
            let intervals = store.router().routing().intervals();
            if intervals.len() >= 2 {
                let i = sel % (intervals.len() - 1);
                let _ = store.merge_shards(intervals[i].0, intervals[i + 1].0);
            }
        }
    }
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => prop::collection::vec((0u64..KEYS, 0u64..1_000, any::<bool>()), 1..6)
            .prop_map(Action::Apply),
        2 => (0u64..KEYS, 0u64..1_000).prop_map(|(k, v)| Action::Put(k, v)),
        1 => (0u64..KEYS).prop_map(Action::Delete),
        4 => Just(Action::Step),
        1 => (0usize..8, 1u64..KEYS).prop_map(|(s, at)| Action::Split(s, at)),
        1 => (0usize..8).prop_map(Action::Merge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn resharding_interleaved_with_batches_preserves_the_map(
        prefill in prop::collection::vec((0u64..KEYS, 0u64..1_000), 0..32),
        actions in prop::collection::vec(action_strategy(), 1..40),
    ) {
        let store = store();
        let mut model = BTreeMap::new();
        for &(k, v) in &prefill {
            store.put(k, v);
            model.insert(k, v);
        }
        for action in &actions {
            run(&store, &mut model, action);
            // The linearizable range must equal the model after every
            // action — including mid-migration, where some keys live in
            // the destination and some still in the source.
            let snapshot = store.range(0, KEYS);
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(&snapshot, &want, "after {:?}", action);
        }
        // Quiesce any in-flight migration, then check every read surface.
        store.rebalance_until_idle();
        prop_assert!(store.router().migration().is_none());
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(store.range(0, KEYS), want.clone());
        prop_assert_eq!(store.len(), model.len());
        prop_assert_eq!(store.count_range(0, KEYS), model.len());
        for (&k, &v) in &model {
            prop_assert_eq!(store.get(k), Some(v), "key {}", k);
        }
        let paged: Vec<(u64, u64)> = store.scan_pages(0, KEYS, 5).flatten().collect();
        prop_assert_eq!(paged, want);
        // Structural invariants survive arbitrary resharding.
        let st = store.stats();
        prop_assert_eq!(
            st.shards.iter().map(|s| s.keys as usize).sum::<usize>(),
            model.len(),
            "shard key counts must add up"
        );
        for s in 0..store.shards() {
            for size in store.shard(s).node_sizes() {
                prop_assert!(size <= 4, "shard {} node exceeds K", s);
            }
        }
    }
}
