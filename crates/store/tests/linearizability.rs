//! Concurrency and linearizability tests for LeapStore: concurrent
//! cross-shard batch writers versus cross-shard range readers must never
//! expose a torn batch — whether the batch maps one key per shard or
//! piles several keys onto one shard (the multi-op chain-rebuild path,
//! which commits in a single transaction; the seed's seqlock rounds are
//! gone).

use leap_store::{Batcher, LeapStore, Partitioning, StoreConfig};
use leaplist::Params;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn small_params() -> Params {
    Params {
        node_size: 4,
        max_level: 6,
        use_trie: true,
        ..Params::default()
    }
}

fn cfg(shards: usize, mode: Partitioning, key_space: u64) -> StoreConfig {
    StoreConfig::new(shards, mode)
        .with_key_space(key_space)
        .with_params(small_params())
}

/// Fast path: each batch writes one key per shard (guaranteed by range
/// partitioning), all tagged with the same version. Any range snapshot
/// must see one version across the whole group — a mix means the batch
/// tore.
#[test]
fn cross_shard_batches_are_never_torn_fast_path() {
    for mode in [Partitioning::Range, Partitioning::Hash] {
        let shards = 4;
        let store = Arc::new(LeapStore::<u64>::new(cfg(shards, mode, 1_000)));
        // One key per shard under range partitioning (stride 250); under
        // hash partitioning the same keys may collide on a shard, which
        // exercises the slow path too — the invariant must hold either way.
        let keys: Vec<u64> = (0..shards as u64).map(|s| s * 250 + 7).collect();
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let (store, keys, stop) = (store.clone(), keys.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut version = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, version)).collect();
                    store.multi_put(&entries);
                    version += 1;
                }
                version
            })
        };

        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (store, keys, stop) = (store.clone(), keys.clone(), stop.clone());
                std::thread::spawn(move || {
                    let mut snapshots = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = store.range(0, 999);
                        let versions: Vec<u64> = keys
                            .iter()
                            .filter_map(|k| snap.iter().find(|(sk, _)| sk == k).map(|(_, v)| *v))
                            .collect();
                        // Before the first batch commits the snapshot may be
                        // partial; afterwards all keys exist. Either way all
                        // *present* versions must be identical.
                        assert!(
                            versions.windows(2).all(|w| w[0] == w[1]),
                            "torn batch observed ({mode:?}): versions {versions:?}"
                        );
                        snapshots += 1;
                    }
                    snapshots
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        let rounds = writer.join().unwrap();
        let mut total_snaps = 0;
        for r in readers {
            total_snaps += r.join().unwrap();
        }
        assert!(rounds > 1, "writer made progress");
        assert!(total_snaps > 0, "readers made progress");
        // Quiescent check: final state holds exactly one version everywhere.
        let snap = store.range(0, 999);
        assert_eq!(snap.len(), keys.len());
        assert!(snap.windows(2).all(|w| w[0].1 == w[1].1));
    }
}

/// Collision path: every batch deliberately maps several keys to ONE
/// shard (a multi-op chain rebuild on that shard) plus one key on another
/// shard. The whole batch commits in a single transaction, so readers
/// must never see a partially applied same-shard chain: any snapshot
/// shows one version across every present key. This replaces the seed's
/// seqlock torn-batch test — the invariant survives the seqlock's removal
/// because atomicity now comes from the transaction itself.
#[test]
fn same_shard_collisions_are_never_torn() {
    let store = Arc::new(LeapStore::<u64>::new(cfg(4, Partitioning::Range, 1_000)));
    // Keys 1, 2, 3 all in shard 0; key 700 in shard 2.
    let keys = [1u64, 2, 3, 700];
    let stop = Arc::new(AtomicBool::new(false));

    let writer = {
        let (store, stop) = (store.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut version = 1u64;
            while !stop.load(Ordering::Relaxed) {
                let entries: Vec<(u64, u64)> = keys.iter().map(|&k| (k, version)).collect();
                store.multi_put(&entries);
                version += 1;
            }
            version
        })
    };

    let reader = {
        let (store, stop) = (store.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut seen_any = false;
            while !stop.load(Ordering::Relaxed) {
                let snap = store.range(0, 999);
                let versions: Vec<u64> = snap.iter().map(|(_, v)| *v).collect();
                assert!(
                    versions.windows(2).all(|w| w[0] == w[1]),
                    "collision batch torn: {snap:?}"
                );
                // get() must agree with the snapshot order: a key read
                // right after the range is from version >= the snapshot's.
                if let (Some((_, snap_v)), Some(got)) = (snap.first(), store.get(keys[0])) {
                    assert!(got >= *snap_v, "get went backwards: {got} < {snap_v}");
                    seen_any = true;
                }
            }
            seen_any
        })
    };

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    let rounds = writer.join().unwrap();
    assert!(rounds > 1);
    assert!(reader.join().unwrap(), "reader observed data");
    let stats = store.stats();
    assert!(
        stats.collision_batches > 0,
        "collisions must have been counted"
    );
    assert_eq!(store.range(0, 999).len(), keys.len());
}

/// Mixed churn: concurrent single-key puts/deletes, cross-shard batches
/// and range queries; afterwards the store must reconcile exactly with a
/// sequential replay oracle is impossible under concurrency, so instead
/// check structural invariants: sorted unique ranges, len consistency,
/// and every surviving key readable.
#[test]
fn mixed_churn_keeps_structure_coherent() {
    let store = Arc::new(LeapStore::<u64>::new(cfg(8, Partitioning::Hash, 10_000)));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for t in 0..3u64 {
        let (store, stop) = (store.clone(), stop.clone());
        handles.push(std::thread::spawn(move || {
            let mut x = 0x9E3779B97F4A7C15u64.wrapping_mul(t + 1) | 1;
            let mut step = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            while !stop.load(Ordering::Relaxed) {
                match step() % 5 {
                    0 => {
                        let base = step() % 9_000;
                        store.multi_put(&[(base, t), (base + 500, t), (base + 900, t)]);
                    }
                    1 => {
                        store.delete(step() % 10_000);
                    }
                    2 => {
                        let lo = step() % 9_000;
                        let snap = store.range(lo, lo + 1_000);
                        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "unsorted range");
                    }
                    _ => {
                        store.put(step() % 10_000, t);
                    }
                }
            }
        }));
    }
    std::thread::sleep(std::time::Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let snap = store.range(0, 10_000);
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    assert_eq!(snap.len(), store.len(), "range snapshot and len disagree");
    assert_eq!(snap.len(), store.count_range(0, 10_000));
    for (k, v) in snap.iter().take(50) {
        assert_eq!(store.get(*k), Some(*v));
    }
}

/// Writer-vs-collision-batch linearizability: a duplicate-key batch
/// `[Put(k,10), Put(k,11)]` resolves inside one chain rebuild; a
/// concurrent single `put(k, 99)` must never return the batch's internal
/// intermediate value `Some(10)` — only states some sequential order
/// explains (`None` before any batch, `Some(11)` after a batch, or
/// `Some(99)` after a previous put). The seed enforced this with an
/// exclusive writer-phase lock; now it follows from the batch being one
/// transaction, with no writer serialization at all.
#[test]
fn single_key_put_never_observes_batch_intermediate() {
    let store = Arc::new(LeapStore::<u64>::new(cfg(4, Partitioning::Range, 1_000)));
    let k = 5u64; // shard 0
    let stop = Arc::new(AtomicBool::new(false));
    let batcher_thread = {
        let (store, stop) = (store.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut batches = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Duplicate key -> same shard -> multi-op chain rebuild.
                store.multi_put(&[(k, 10), (k, 11)]);
                batches += 1;
            }
            batches
        })
    };
    let putter = {
        let (store, stop) = (store.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut puts = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let prev = store.put(k, 99);
                assert!(
                    matches!(prev, None | Some(11) | Some(99)),
                    "put observed the batch's intermediate state: {prev:?}"
                );
                puts += 1;
            }
            puts
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    assert!(batcher_thread.join().unwrap() > 0);
    assert!(putter.join().unwrap() > 0);
    assert!(store.stats().collision_batches > 0);
}

/// A documented caller error (`u64::MAX` key) in a collision batch must
/// panic *before* any shard mutation: the store stays fully usable from
/// other threads afterwards.
#[test]
fn reserved_key_batch_panic_does_not_wedge_the_store() {
    let store = Arc::new(LeapStore::<u64>::new(cfg(4, Partitioning::Range, 1_000)));
    store.put(1, 1);
    let panicked = {
        let store = store.clone();
        std::thread::spawn(move || {
            // Two reserved keys on one shard: without up-front validation
            // this would die mid-planning with peers' results unknown.
            store.multi_put(&[(u64::MAX, 1), (u64::MAX, 2)]);
        })
        .join()
    };
    assert!(panicked.is_err(), "reserved key must panic");
    // Readers and writers still work; nothing was applied.
    assert_eq!(store.get(1), Some(1));
    assert_eq!(store.put(2, 2), None);
    assert_eq!(store.range(0, 999), vec![(1, 1), (2, 2)]);
    assert_eq!(store.multi_put(&[(3, 3), (3, 4)]), vec![None, Some(3)]);
    assert_eq!(
        store.stats().collision_batches,
        1,
        "only the valid batch ran"
    );
}

/// The batcher front-end under concurrency: results must match what the
/// bare store would return (per-key last-write-wins), and coalescing must
/// actually group ops when threads contend.
#[test]
fn batcher_preserves_store_semantics_under_concurrency() {
    let store = Arc::new(LeapStore::<u64>::new(cfg(8, Partitioning::Hash, 100_000)));
    let batcher = Arc::new(Batcher::new(store.clone()));
    let threads = 4u64;
    let per = 300u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let b = batcher.clone();
            std::thread::spawn(move || {
                for i in 0..per {
                    let k = t * 10_000 + i;
                    assert_eq!(b.put(k, k), None);
                    if i % 3 == 0 {
                        assert_eq!(b.delete(k), Some(k));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut expected = 0u64;
    for t in 0..threads {
        for i in 0..per {
            let k = t * 10_000 + i;
            let want = if i % 3 == 0 { None } else { Some(k) };
            assert_eq!(store.get(k), want, "key {k}");
            expected += u64::from(want.is_some());
        }
    }
    assert_eq!(store.len() as u64, expected);
    let s = batcher.stats();
    assert_eq!(s.ops, threads * per + threads * per.div_ceil(3));
    assert!(s.max_batch >= 1);
}
