//! Deterministic chaos suite: every fault point armed from one seed, a
//! concurrent mixed workload over disjoint per-thread key sets, and the
//! convergence contract checked at the end — every migration completes
//! or aborts (no permanent `SlotBusy`), the store is model-equivalent,
//! and the degradation counters (`aborted_migrations`, `shed_ops`,
//! `timeouts`) surface in stats and on the event timeline.
//!
//! The fault schedule is a pure function of the seed
//! ([`leap_fault::FaultPlan`]), so a CI failure is replayable verbatim:
//! every assertion message carries the seed, and
//! `CHAOS_SEED=<n>[,<n>...]` overrides the built-in seed list.

use leap_obs::{AbortCause, TraceConfig};
use leap_store::{
    AbortOutcome, Batcher, FaultPlan, FaultPoint, LeapStore, Partitioning, RebalanceAction,
    RebalancePolicy, Rebalancer, RetryPolicy, StoreConfig, StoreError,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const KEY_SPACE: u64 = 10_000;
/// Worker threads; each owns the keys `k < WORKER_KEYS` with
/// `k % WORKERS == t`, so per-thread models merge without conflicts.
const WORKERS: u64 = 4;
const WORKER_KEYS: u64 = 8_000;
const OPS_PER_WORKER: u64 = 3_000;

fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEED") {
        Ok(list) => {
            let parsed: Vec<u64> = list
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .collect();
            assert!(!parsed.is_empty(), "CHAOS_SEED set but unparsable: {list}");
            parsed
        }
        Err(_) => vec![1, 7, 42],
    }
}

/// xorshift64*: deterministic per-worker op stream without dev-deps.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Every point armed, every point budgeted: the schedule is hostile at
/// the start and provably quiet at the end, so convergence must happen.
fn hostile_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        // Rates spread the stm fires across the whole run (an `always`
        // point would burn its budget inside the first op's retry loop);
        // the per-visit decisions are still a pure function of the seed.
        .with_rate(FaultPoint::StmCommit, 100_000)
        .with_budget(FaultPoint::StmCommit, 300)
        .with_rate(FaultPoint::StmValidate, 100_000)
        .with_budget(FaultPoint::StmValidate, 100)
        .always(FaultPoint::MigrationChunk)
        .with_budget(FaultPoint::MigrationChunk, 10)
        .always(FaultPoint::BatcherDrain)
        .with_budget(FaultPoint::BatcherDrain, 20)
}

fn chaos_store(seed: u64) -> Arc<LeapStore<u64>> {
    Arc::new(LeapStore::new(
        StoreConfig::new(4, Partitioning::Range)
            .with_key_space(KEY_SPACE)
            .with_rebalancing(RebalancePolicy {
                chunk: 32,
                watchdog_stalls: 3,
                ..RebalancePolicy::default()
            })
            .with_faults(hostile_plan(seed)),
    ))
}

/// One worker's slice of the mixed workload; returns its model.
fn worker(
    store: Arc<LeapStore<u64>>,
    batcher: Arc<Batcher<u64>>,
    seed: u64,
    t: u64,
) -> BTreeMap<u64, u64> {
    let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (t + 1));
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    let policy = RetryPolicy::default().max_attempts(64);
    for _ in 0..OPS_PER_WORKER {
        let key = (rng.next() % (WORKER_KEYS / WORKERS)) * WORKERS + t;
        let val = rng.next();
        match rng.next() % 100 {
            0..=39 => {
                let prev = store.put(key, val);
                assert_eq!(model.insert(key, val), prev, "seed {seed}: put({key})");
            }
            40..=54 => {
                assert_eq!(
                    store.get(key),
                    model.get(&key).copied(),
                    "seed {seed}: get({key})"
                );
            }
            55..=64 => {
                let prev = store.delete(key);
                assert_eq!(model.remove(&key), prev, "seed {seed}: delete({key})");
            }
            65..=84 => match batcher.try_put(key, val) {
                Ok(prev) => {
                    assert_eq!(
                        model.insert(key, val),
                        prev,
                        "seed {seed}: batched put({key})"
                    );
                }
                // Shed (admission or injected drain drop): the op
                // provably did not run — the model is untouched.
                Err(StoreError::Overloaded { .. }) => {}
                Err(e) => panic!("seed {seed}: unexpected batcher error {e}"),
            },
            _ => match store.put_within(key, val, policy) {
                Ok(prev) => {
                    assert_eq!(
                        model.insert(key, val),
                        prev,
                        "seed {seed}: bounded put({key})"
                    );
                }
                // Budget exhausted pre-commit: nothing was written.
                Err(StoreError::Timeout { .. }) => {}
                Err(e) => panic!("seed {seed}: unexpected bounded-op error {e}"),
            },
        }
    }
    model
}

/// The headline property: under any seeded fault schedule, a concurrent
/// workload with live (and aborted) migrations converges to exactly the
/// model, with no overlay left in flight and the keyspace still
/// reshardable afterwards.
#[test]
fn converges_and_stays_model_equivalent_under_seeded_faults() {
    for seed in seeds() {
        let store = chaos_store(seed);
        let batcher = Arc::new(Batcher::new(store.clone()));
        // Dense prefill of the abort playground [8000, 8399] — outside
        // every worker's key set.
        let mut main_model: BTreeMap<u64, u64> = BTreeMap::new();
        for k in 8_000..8_400u64 {
            store.put(k, k);
            main_model.insert(k, k);
        }
        // Rebalance driver racing the workers: policy steps plus an
        // occasional explicit abort of whatever is in flight.
        let stop = Arc::new(AtomicBool::new(false));
        let driver = {
            let (store, stop) = (store.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    store.rebalance_step();
                    i += 1;
                    if i.is_multiple_of(97) {
                        if let Some(m) = store.router().migration() {
                            let _ = store.abort_migration(m.id);
                        }
                    }
                    std::thread::yield_now();
                }
            })
        };
        let handles: Vec<_> = (0..WORKERS)
            .map(|t| {
                let (store, batcher) = (store.clone(), batcher.clone());
                std::thread::spawn(move || worker(store, batcher, seed, t))
            })
            .collect();
        let mut model = main_model;
        for h in handles {
            model.extend(h.join().expect("worker must not panic"));
        }
        stop.store(true, Ordering::Relaxed);
        driver.join().expect("driver must not panic");

        // Deterministic mid-drain abort: split the dense playground,
        // move at least one chunk, then roll the migration back.
        store.rebalance_until_idle();
        let dst = store
            .split_shard(store.router().shard_of(8_100), 8_100)
            .unwrap_or_else(|e| panic!("seed {seed}: no permanent SlotBusy, got {e}"));
        let mut moved = false;
        for _ in 0..64 {
            match store.rebalance_step() {
                RebalanceAction::Moved { .. } => {
                    moved = true;
                    break;
                }
                RebalanceAction::ChunkFailed { .. } => {}
                RebalanceAction::Aborted { .. } | RebalanceAction::Completed { .. } => break,
                other => panic!("seed {seed}: unexpected action {other:?}"),
            }
        }
        if let Some(m) = store.router().migration() {
            assert!(moved, "seed {seed}: drain never progressed");
            match store.abort_migration(m.id) {
                Ok(AbortOutcome::RolledBack { moved_back }) => {
                    assert!(moved_back > 0, "seed {seed}: rollback swept nothing")
                }
                other => panic!("seed {seed}: expected rollback, got {other:?}"),
            }
            assert!(
                store.shard(dst).is_empty(),
                "seed {seed}: aborted destination not swept clean"
            );
        }

        // Convergence: no overlay survives, and the map is the model.
        store.rebalance_until_idle();
        assert!(
            store.router().migrations().is_empty(),
            "seed {seed}: migrations still in flight"
        );
        let got = store.range(0, KEY_SPACE - 1);
        let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want, "seed {seed}: final state diverged from model");

        // Degradation is observable: the injected drain sheds and the
        // explicit abort both surface in stats, JSON and the timeline.
        let stats = store.stats();
        assert!(
            stats.aborted_migrations >= 1,
            "seed {seed}: no abort recorded"
        );
        assert!(stats.shed_ops >= 1, "seed {seed}: no shed recorded");
        let json = stats.to_json();
        for key in ["\"aborted_migrations\":", "\"shed_ops\":", "\"timeouts\":"] {
            assert!(json.contains(key), "seed {seed}: stats JSON missing {key}");
        }
        let events = store.obs().expect("obs on by default").snapshot().events;
        let kinds: Vec<&str> = events.events.iter().map(|e| e.kind.name()).collect();
        assert!(
            kinds.contains(&"migration_abort"),
            "seed {seed}: no migration_abort event"
        );
        // Sheds happen early in the run (the drain-fault budget), so on
        // a busy timeline the bounded ring may have evicted them — but
        // then the eviction counter must say so.
        assert!(
            kinds.contains(&"shed") || events.dropped > 0,
            "seed {seed}: no shed event and nothing was evicted"
        );

        // Post-convergence health: the keyspace is still reshardable —
        // a fresh split begins and drains to completion.
        let src = store.router().shard_of(4_000);
        if let Some((lo, hi)) = store.router().shard_interval(src) {
            if lo < hi {
                store
                    .split_shard(src, lo + (hi - lo) / 2 + 1)
                    .unwrap_or_else(|e| panic!("seed {seed}: post-convergence split: {e}"));
                store.rebalance_until_idle();
                assert!(
                    store.router().migrations().is_empty(),
                    "seed {seed}: post-convergence split never resolved"
                );
            }
        }
        assert_eq!(
            store.range(0, KEY_SPACE - 1),
            want,
            "seed {seed}: resharding after convergence moved data"
        );
    }
}

/// Bounded retry under a workload that can never commit: every commit
/// attempt is failed by injection (no budget), so `put_within` must give
/// up with a typed `Timeout` — and the timeout must be attributed in stm
/// stats and on the event timeline.
#[test]
fn bounded_ops_time_out_when_commits_never_succeed() {
    for seed in seeds() {
        let plan = FaultPlan::new(seed).always(FaultPoint::StmCommit);
        let store: LeapStore<u64> = LeapStore::new(
            StoreConfig::new(2, Partitioning::Range)
                .with_key_space(KEY_SPACE)
                .with_faults(plan),
        );
        let policy = RetryPolicy::default().max_attempts(8);
        match store.put_within(5, 50, policy) {
            Err(StoreError::Timeout { attempts }) => {
                assert!(attempts >= 8, "seed {seed}: gave up after {attempts}")
            }
            other => panic!("seed {seed}: expected Timeout, got {other:?}"),
        }
        // Deadline-based budgets give up too, even mid-livelock.
        let policy = RetryPolicy::default().timeout(Duration::from_millis(10));
        assert!(
            matches!(
                store.put_within(6, 60, policy),
                Err(StoreError::Timeout { .. })
            ),
            "seed {seed}: deadline budget must fire"
        );
        let stats = store.stats();
        assert!(
            stats.stm.timeouts >= 2,
            "seed {seed}: timeouts unattributed"
        );
        assert!(
            stats.to_json().contains("\"timeouts\":"),
            "seed {seed}: stats JSON missing timeouts"
        );
        let events = store.obs().expect("obs on by default").snapshot().events;
        assert!(
            events
                .events
                .iter()
                .any(|e| e.kind.name() == "txn_deadline"),
            "seed {seed}: no txn_deadline event"
        );
    }
}

/// A rebalancer whose every tick panics (injected) dies loudly: `stop()`
/// returns the typed error instead of a fake action count — and the
/// store converges anyway once a healthy driver takes over.
#[test]
fn dead_rebalancer_is_reported_and_manual_convergence_still_works() {
    for seed in seeds() {
        let plan = FaultPlan::new(seed).always(FaultPoint::RebalancerTick);
        let store: Arc<LeapStore<u64>> = Arc::new(LeapStore::new(
            StoreConfig::new(2, Partitioning::Range)
                .with_key_space(KEY_SPACE)
                .with_rebalancing(RebalancePolicy {
                    chunk: 32,
                    ..RebalancePolicy::default()
                })
                .with_faults(plan),
        ));
        for k in 0..512u64 {
            store.put(k, k + 1);
        }
        let reb = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !reb.is_dead() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let err = reb
            .stop()
            .expect_err(&format!("seed {seed}: worker death must surface"));
        assert!(err.panics > 0, "seed {seed}: no panic recorded");
        // Manual convergence with the dead driver out of the way: the
        // tick fault only arms the worker-thread path.
        store.split_shard(0, 256).expect("split after worker death");
        store.rebalance_until_idle();
        assert!(
            store.router().migrations().is_empty(),
            "seed {seed}: manual convergence failed"
        );
        for k in 0..512u64 {
            assert_eq!(store.get(k), Some(k + 1), "seed {seed}: key {k}");
        }
    }
}

/// Tracing under chaos: with head sampling off and an SLO no op can
/// exceed, the only retention path left is the failure arm of tail
/// capture — and every typed failure the fault plan can produce
/// (bounded-retry timeout, injected drain shed, explicit migration
/// abort) must land in the span ring with a matching cause annotation.
#[test]
fn typed_failures_are_always_retained_as_spans() {
    for seed in seeds() {
        let plan = FaultPlan::new(seed)
            .always(FaultPoint::StmCommit)
            .with_budget(FaultPoint::StmCommit, 6)
            .always(FaultPoint::BatcherDrain)
            .with_budget(FaultPoint::BatcherDrain, 1);
        let store: Arc<LeapStore<u64>> = Arc::new(LeapStore::new(
            StoreConfig::new(2, Partitioning::Range)
                .with_key_space(KEY_SPACE)
                .with_faults(plan)
                .with_tracing(
                    TraceConfig::default()
                        .with_slo_ns(u64::MAX)
                        .with_sample_period(0),
                ),
        ));
        // Timeout: the first four commits in the store's life are failed
        // by injection, exhausting the bounded put's attempt budget.
        match store.put_within(5, 50, RetryPolicy::default().max_attempts(4)) {
            Err(StoreError::Timeout { .. }) => {}
            other => panic!("seed {seed}: expected Timeout, got {other:?}"),
        }
        // Overloaded: the first batcher drain drops its batch by injection.
        let batcher = Batcher::new(store.clone());
        match batcher.try_put(8, 80) {
            Err(StoreError::Overloaded { .. }) => {}
            other => panic!("seed {seed}: expected injected shed, got {other:?}"),
        }
        // Migration abort: a live overlay over populated keys (so the
        // abort rolls back instead of completing forward), never stepped.
        for k in 600..640u64 {
            store.put(k, k);
        }
        store.split_shard(0, 600).expect("split");
        let m = store.router().migration().expect("overlay is live");
        match store.abort_migration(m.id) {
            Ok(AbortOutcome::RolledBack { .. }) => {}
            other => panic!("seed {seed}: expected rollback, got {other:?}"),
        }

        let spans = store.tracer().expect("tracing armed").snapshot().spans;
        let timeout = spans
            .iter()
            .find(|s| s.outcome == "timeout")
            .unwrap_or_else(|| panic!("seed {seed}: timeout span not retained"));
        assert_eq!(timeout.kind, "put");
        assert!(
            timeout.causes.contains(&AbortCause::Timeout),
            "seed {seed}: deadline cause unattributed: {:?}",
            timeout.causes
        );
        let shed = spans
            .iter()
            .find(|s| s.outcome == "overloaded")
            .unwrap_or_else(|| panic!("seed {seed}: shed span not retained"));
        assert_eq!((shed.kind, shed.key), ("batch", 8), "seed {seed}");
        let abort = spans
            .iter()
            .find(|s| s.outcome == "migration_abort")
            .unwrap_or_else(|| panic!("seed {seed}: abort span not retained"));
        assert_eq!(abort.kind, "migration", "seed {seed}");
        assert_eq!(abort.overlay, m.id, "seed {seed}: wrong overlay named");
        // Retention really was failure-driven: nothing was head-sampled
        // and nothing crossed the (unreachable) SLO.
        assert!(
            spans.iter().all(|s| !s.sampled && !s.tail),
            "seed {seed}: unexpected sampled/tail span"
        );
    }
}

/// Admission control under real contention: a tiny queue bound plus many
/// threads must shed some ops with typed errors — and every op that
/// reported success is actually in the store.
#[test]
fn admission_overflow_sheds_with_typed_errors_under_contention() {
    let store: Arc<LeapStore<u64>> = Arc::new(LeapStore::new(
        StoreConfig::new(4, Partitioning::Hash).with_key_space(KEY_SPACE),
    ));
    let batcher = Arc::new(Batcher::new(store.clone()).with_admission(2));
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let batcher = batcher.clone();
            std::thread::spawn(move || {
                let mut ok = Vec::new();
                for i in 0..500u64 {
                    let key = t * 1_000 + i;
                    match batcher.try_put(key, key) {
                        Ok(_) => ok.push(key),
                        Err(StoreError::Overloaded { .. }) => {}
                        Err(e) => panic!("unexpected batcher error {e}"),
                    }
                }
                ok
            })
        })
        .collect();
    let accepted: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("worker must not panic"))
        .collect();
    for key in &accepted {
        assert_eq!(store.get(*key), Some(*key), "accepted op must be durable");
    }
    let stats = batcher.stats();
    assert_eq!(stats.ops, accepted.len() as u64, "only accepted ops count");
    assert_eq!(
        stats.shed + stats.ops,
        8 * 500,
        "every op either landed or was shed — no silent loss"
    );
}
