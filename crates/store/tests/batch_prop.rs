//! Property test: [`LeapStore::apply`] with arbitrary batches — duplicate
//! keys, heavy same-shard collisions, mixed puts and deletes — is
//! observationally equivalent to applying the same ops one at a time, in
//! order, on a twin store: same per-op previous values, same final
//! contents. This pins down the multi-op chain-rebuild path against the
//! trivially correct sequential semantics.

use leap_store::{BatchOp, LeapStore, Partitioning, StoreConfig};
use leaplist::Params;
use proptest::prelude::*;

/// Tiny nodes and a tiny keyspace: 4 shards over 48 keys means nearly
/// every batch collides within a shard, and node_size 4 forces the chain
/// rebuild to split and merge constantly.
fn store(mode: Partitioning) -> LeapStore<u64> {
    LeapStore::new(
        StoreConfig::new(4, mode)
            .with_key_space(48)
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            }),
    )
}

fn modes() -> [Partitioning; 2] {
    [Partitioning::Hash, Partitioning::Range]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batch_apply_equals_sequential_application(
        prefill in prop::collection::vec(0u64..48, 0..16),
        ops in prop::collection::vec((0u64..48, 0u64..1_000, any::<bool>()), 1..24),
    ) {
        for mode in modes() {
            let batched = store(mode);
            let sequential = store(mode);
            for &k in &prefill {
                batched.put(k, k + 10_000);
                sequential.put(k, k + 10_000);
            }
            let batch: Vec<BatchOp<u64>> = ops
                .iter()
                .map(|&(k, v, put)| {
                    if put {
                        BatchOp::Update(k, v)
                    } else {
                        BatchOp::Remove(k)
                    }
                })
                .collect();
            // One transaction on the left, one op at a time on the right.
            let got = batched.apply(&batch);
            let want: Vec<Option<u64>> = batch
                .iter()
                .map(|op| match op {
                    BatchOp::Update(k, v) => sequential.put(*k, *v),
                    BatchOp::Remove(k) => sequential.delete(*k),
                })
                .collect();
            prop_assert_eq!(&got, &want, "{:?}: previous values diverged", mode);
            prop_assert_eq!(
                batched.range(0, 1_000),
                sequential.range(0, 1_000),
                "{:?}: final contents diverged",
                mode
            );
            prop_assert_eq!(batched.len(), sequential.len());
            // Structural invariant: no shard's chain rebuild may overflow K.
            for s in 0..batched.shards() {
                for size in batched.shard(s).node_sizes() {
                    prop_assert!(size <= 4, "{:?}: shard {} node exceeds K", mode, s);
                }
            }
        }
    }
}
