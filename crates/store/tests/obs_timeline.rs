//! Integration tests for the store's observability surface: the
//! migration/drain event timeline (ordering and the drop-oldest overflow
//! contract) and STM abort-cause attribution as exposed through
//! [`LeapStore::stats`].

use leap_obs::EventKind;
use leap_stm::{TVar, Txn};
use leap_store::{Batcher, LeapStore, Partitioning, RebalancePolicy, Rebalancer, StoreConfig};
use leaplist::Params;
use std::sync::Arc;
use std::time::Duration;

fn cfg(shards: usize) -> StoreConfig {
    StoreConfig::new(shards, Partitioning::Range)
        .with_key_space(1_000)
        .with_params(Params {
            node_size: 4,
            max_level: 6,
            use_trie: true,
            ..Params::default()
        })
        .with_rebalancing(RebalancePolicy {
            chunk: 16,
            ..RebalancePolicy::default()
        })
}

/// Every migration's timeline reads begin -> at least one chunk ->
/// complete, in publication order, keyed by the migration id — and at the
/// default ring capacity a reshard this size drops nothing.
#[test]
fn migration_timeline_orders_begin_chunks_complete() {
    // Policy auto-actions off: only the two explicit splits may appear on
    // the timeline, keeping the expected event set exact.
    let store: LeapStore<u64> = LeapStore::new(cfg(2).with_rebalancing(RebalancePolicy {
        chunk: 16,
        min_split_keys: 1_000_000,
        merge_ratio: 0.0,
        ..RebalancePolicy::default()
    }));
    // 200 keys per shard: shard 0 owns [0, 499], shard 1 owns [500, 999].
    for k in 0..200u64 {
        store.put(k, k);
        store.put(500 + k, k);
    }
    // Two disjoint migrations: a split of shard 0 and one of shard 1.
    store.split_shard(0, 100).expect("split shard 0");
    store.split_shard(1, 600).expect("split shard 1");
    store.rebalance_until_idle();
    let obs = store.obs().expect("obs on by default");
    let snap = obs.events().snapshot();
    assert_eq!(snap.dropped, 0, "default capacity loses nothing here");
    // Strictly increasing seq = publication order.
    for w in snap.events.windows(2) {
        assert!(w[0].seq < w[1].seq, "snapshot must be seq-ordered");
    }
    // Collect each migration's lifecycle positions.
    let mut ids: Vec<u64> = Vec::new();
    for e in &snap.events {
        if let EventKind::MigrationBegin { id, .. } = e.kind {
            ids.push(id);
        }
    }
    assert_eq!(ids.len(), 2, "two migrations began");
    for id in ids {
        let begin = snap
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::MigrationBegin { id: i, .. } if i == id))
            .expect("begin event");
        let chunks: Vec<usize> = snap
            .events
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EventKind::MigrationChunk { id: i, .. } if i == id))
            .map(|(p, _)| p)
            .collect();
        let complete = snap
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::MigrationComplete { id: i, .. } if i == id))
            .expect("complete event");
        assert!(
            !chunks.is_empty(),
            "migration {id} moved at least one chunk"
        );
        assert!(
            begin < chunks[0] && *chunks.last().unwrap() < complete,
            "begin ({begin}) -> chunks ({chunks:?}) -> complete ({complete}) for migration {id}"
        );
        // Chunk sizes on the timeline sum to the keys the migration moved.
        let moved: u64 = snap
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::MigrationChunk { id: i, moved } if i == id => Some(moved),
                _ => None,
            })
            .sum();
        assert_eq!(
            moved, 100,
            "each split moved the upper half of its 200-key shard"
        );
    }
    // Each completion is chased by its epoch flip.
    let completes = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MigrationComplete { .. }))
        .count();
    let flips = snap
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::EpochFlip { .. }))
        .count();
    assert_eq!(completes, 2);
    assert_eq!(flips, 2);
    // The same timeline arrives through the stats JSON.
    let json = store.stats().to_json();
    assert!(json.contains("\"kind\":\"migration_begin\""), "{json}");
    assert!(json.contains("\"kind\":\"migration_complete\""), "{json}");
    assert!(json.contains("\"dropped\":0"), "{json}");
}

/// A tiny ring under a background [`Rebalancer`] plus batcher traffic
/// overflows: old events are dropped oldest-first, the `dropped` counter
/// is monotone and exact, and the ring never exceeds its capacity.
#[test]
fn tiny_ring_drops_oldest_with_monotone_counter() {
    const CAP: usize = 8;
    let store: Arc<LeapStore<u64>> = Arc::new(LeapStore::new(cfg(2).with_obs_ring_capacity(CAP)));
    let obs = store.obs().expect("obs on by default").clone();
    let rebalancer = Rebalancer::spawn(store.clone(), Duration::from_micros(100));
    let batcher = Batcher::new(store.clone());
    // Hammer: batcher drains emit events continuously while the
    // background rebalancer splits/merges the shifting key mass.
    let mut last_dropped = 0u64;
    for round in 0..6u64 {
        for k in 0..120u64 {
            batcher.put((round * 120 + k) % 900, k);
        }
        let snap = obs.events().snapshot();
        assert!(snap.events.len() <= CAP, "ring never exceeds capacity");
        assert!(
            snap.dropped >= last_dropped,
            "dropped counter is monotone: {} -> {}",
            last_dropped,
            snap.dropped
        );
        last_dropped = snap.dropped;
    }
    rebalancer.stop().expect("rebalancer survived the run");
    let snap = obs.events().snapshot();
    assert!(
        snap.dropped > 0,
        "6 x 120 drains through an 8-slot ring must overflow"
    );
    assert_eq!(snap.capacity, CAP);
    assert!(snap.events.len() <= CAP);
    // dropped is exact: published = dropped + survivors once full.
    for w in snap.events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

/// Abort-cause attribution through the store surface: deterministic raw
/// transactions on the store's shared domain produce one conflict of each
/// cause, the sum invariant holds, and the JSON carries the breakdown.
#[test]
fn stats_attribute_abort_causes() {
    let store: LeapStore<u64> = LeapStore::new(cfg(2));
    let d = store.domain();
    let v = TVar::new(0u64);
    // Commit-time conflict (the store's domains are write-back): t1 reads
    // v, a peer commits a newer version, t1's own commit fails validation.
    let mut t1 = Txn::begin(d);
    let _ = t1.read(&v).expect("fresh read");
    let mut t2 = Txn::begin(d);
    let x = t2.read(&v).expect("read");
    t2.write(&v, x + 1).expect("write");
    t2.commit().expect("t2 commits");
    let failed = t1.write(&v, 99).and_then(|_| t1.commit());
    assert!(failed.is_err(), "stale snapshot must not commit");
    // Read-time conflict: t3 already holds `w` in its read set when a
    // peer commits new versions of both `w` and `v` — t3's read of `v`
    // finds a newer orec, its snapshot extension revalidates `w`, fails,
    // and the transaction aborts at the read.
    let w = TVar::new(0u64);
    let mut t3 = Txn::begin(d);
    let _ = t3.read(&w).expect("fresh read");
    let mut t4 = Txn::begin(d);
    let a = t4.read(&w).expect("read");
    t4.write(&w, a + 1).expect("write");
    let b = t4.read(&v).expect("read");
    t4.write(&v, b + 1).expect("write");
    t4.commit().expect("t4 commits");
    assert!(t3.read(&v).is_err(), "stale snapshot detected at the read");
    drop(t3);
    let stats = store.stats();
    assert!(
        stats.stm.conflict_commit_aborts >= 1,
        "commit-time cause attributed: {:?}",
        stats.stm
    );
    assert!(
        stats.stm.conflict_read_aborts >= 1,
        "read-time cause attributed: {:?}",
        stats.stm
    );
    assert_eq!(
        stats.stm.conflict_aborts,
        stats.stm.conflict_read_aborts + stats.stm.conflict_commit_aborts,
        "causes partition the conflict total"
    );
    let json = stats.to_json();
    assert!(json.contains("\"conflict_read_aborts\":"), "{json}");
    assert!(json.contains("\"conflict_commit_aborts\":"), "{json}");
}

/// The cause partition survives a genuinely colliding threaded workload,
/// and the retry histogram records every committed transaction.
#[test]
fn colliding_workload_keeps_cause_partition_and_feeds_retry_histogram() {
    let store: Arc<LeapStore<u64>> = Arc::new(LeapStore::new(
        StoreConfig::new(4, Partitioning::Hash).with_params(Params {
            node_size: 4,
            max_level: 6,
            use_trie: true,
            ..Params::default()
        }),
    ));
    let threads = 8;
    let per = 200u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let store = store.clone();
            std::thread::spawn(move || {
                for i in 0..per {
                    // All threads fight over the same 8 keys.
                    let k = (t + i) % 8;
                    store.multi_put(&[(k, i), (k + 8, i)]);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = store.stats();
    assert_eq!(
        stats.stm.conflict_aborts,
        stats.stm.conflict_read_aborts + stats.stm.conflict_commit_aborts,
        "cause partition holds under contention: {:?}",
        stats.stm
    );
    let obs = stats.obs.as_ref().expect("obs on by default");
    assert!(
        obs.txn_retries.count >= threads * per,
        "every committed batch recorded its attempt count"
    );
    assert!(obs.txn_retries.max >= 1);
}
