//! The batching front-end: a flat-combining funnel that coalesces
//! independent single-key operations arriving on many worker threads into
//! grouped [`LeapStore::apply`] calls, so `k` concurrent puts cost one
//! multi-list transaction instead of `k` — and, with the multi-op chain
//! rebuild underneath, even `k` puts to the *same* shard form one
//! transaction.
//!
//! Under lock contention the combiner lock itself creates batches (ops
//! pile up behind the holder). On hosts with few cores, threads interleave
//! instead of contending, so the combiner additionally waits an **adaptive
//! window** before draining: the window doubles whenever waiting actually
//! coalesced ops and halves toward zero when the combiner found itself
//! alone, so an idle caller never pays latency for company that is not
//! coming.
//!
//! The window is additionally **latency-aware**: the combiner times every
//! drain, and a coalesced drain only doubles the window when its latency
//! did not degrade against the previous drain's — batching that makes the
//! underlying transactions slower (e.g. chain rebuilds colliding on one
//! node) stops growing instead of compounding. [`BatcherStats::p99_ns`]
//! exposes the p99 drain latency over a sliding window of recent drains.

use crate::error::StoreError;
use crate::store::LeapStore;
use leap_fault::FaultPoint;
use leap_obs::{EventKind, SlidingQuantile};
use leaplist::BatchOp;
use std::any::Any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, TryLockError};
use std::time::{Duration, Instant};

/// Smallest non-zero combining window.
const WINDOW_BASE_NS: u64 = 1_000;
/// Largest combining window (well under any op's transaction cost at
/// contention levels that reach it).
const WINDOW_MAX_NS: u64 = 20_000;
/// Queue population at which the combiner stops waiting and drains.
const COALESCE_CAP: usize = 8;
/// Drain latencies kept for the sliding p99 window.
const LAT_WINDOW: usize = 64;

/// Next combining window: double (from at least the base) whenever the
/// drain actually coalesced **and** did not run slower than the previous
/// drain (25% tolerance — waiting longer to build batches that commit
/// slower is a loss on both axes); hold when coalescing degraded latency;
/// decay toward zero when the combiner was alone.
fn next_window(cur: u64, batch: usize, drain_ns: u64, prev_drain_ns: u64) -> u64 {
    if batch < 2 {
        return cur / 2;
    }
    let degraded = prev_drain_ns > 0 && drain_ns > prev_drain_ns.saturating_add(prev_drain_ns / 4);
    if degraded {
        cur
    } else {
        cur.saturating_mul(2).clamp(WINDOW_BASE_NS, WINDOW_MAX_NS)
    }
}

/// Panic payload re-raised to the submitter of an op that poisoned a
/// combined batch (its `V: Clone` panicked while the combiner probed it):
/// carries the op's index within the combined batch plus the original
/// panic payload, so the owner knows exactly which op died — and every
/// other op in the batch proceeds unharmed.
pub struct PoisonedOp {
    /// The op's position in the combined batch that the combiner drained.
    pub index: usize,
    /// The original panic payload from the poisoned clone.
    pub payload: Box<dyn Any + Send>,
}

impl std::fmt::Debug for PoisonedOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoisonedOp")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

/// How a combined op ended.
enum Outcome<V> {
    /// The grouped `apply` committed; this is the op's previous value.
    Done(Option<V>),
    /// This op's value poisoned the batch probe; the rest of the batch
    /// ran without it. The owner re-raises with the op's batch index.
    Poisoned(PoisonedOp),
    /// The combiner panicked mid-`apply` (after the probe): the op's fate
    /// is unknown, so the waiting submitter re-raises.
    Aborted,
    /// An injected drain fault dropped the whole batch before any apply:
    /// the op was never attempted and the owner reports
    /// [`StoreError::Overloaded`].
    Shed {
        /// Queue population observed when the drain was shed.
        queued: usize,
    },
}

/// One submitted op's result slot, filled by whichever thread combines it.
struct Slot<V> {
    result: Mutex<Option<Outcome<V>>>,
    /// Leap-trace phase breakdown (ns), written by the combiner before it
    /// settles the outcome: time queued, time combining (probe), time in
    /// the grouped apply. The result mutex orders these relaxed writes
    /// for the waiter reading them back.
    queue_ns: AtomicU64,
    combine_ns: AtomicU64,
    commit_ns: AtomicU64,
}

impl<V> Slot<V> {
    fn empty() -> Self {
        Slot {
            result: Mutex::new(None),
            queue_ns: AtomicU64::new(0),
            combine_ns: AtomicU64::new(0),
            commit_ns: AtomicU64::new(0),
        }
    }
}

struct Pending<V> {
    op: BatchOp<V>,
    slot: Arc<Slot<V>>,
    /// When the op entered the queue — the start of its queue-wait phase.
    enqueued: Instant,
}

/// Locks a slot, recovering from poison (a panicking peer must not wedge
/// the batcher for everyone else).
fn lock_slot<V>(slot: &Slot<V>) -> std::sync::MutexGuard<'_, Option<Outcome<V>>> {
    slot.result
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Point-in-time counters for a [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatcherStats {
    /// Combined `apply` calls issued.
    pub batches: u64,
    /// Operations carried by those calls.
    pub ops: u64,
    /// Largest single combined batch.
    pub max_batch: u64,
    /// Current adaptive combining window in nanoseconds (0 = drain
    /// immediately).
    pub window_ns: u64,
    /// p99 drain latency in nanoseconds over a sliding window of recent
    /// drains (0 until the first drain).
    pub p99_ns: u64,
    /// Operations shed — refused at the admission gate or dropped by an
    /// injected drain fault. Every shed op surfaced a typed
    /// [`StoreError::Overloaded`] to its submitter.
    pub shed: u64,
}

impl BatcherStats {
    /// Mean ops per combined call (1.0 means no coalescing happened).
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }
}

/// A flat-combining batcher over a shared [`LeapStore`].
///
/// Threads call [`Batcher::put`] / [`Batcher::delete`] as if they were the
/// store's own methods; internally each call enqueues the op and then
/// either *combines* (drains every queued op into one grouped
/// [`LeapStore::apply`]) or finds its op already combined by another
/// thread. Under contention this turns `k` single-key transactions into
/// one `k`-op transaction — the multi-list composite the paper builds,
/// including several ops per shard.
///
/// # Example
///
/// ```
/// use leap_store::{Batcher, LeapStore, StoreConfig};
/// use std::sync::Arc;
///
/// let store = Arc::new(LeapStore::<u64>::new(StoreConfig::default()));
/// let batcher = Batcher::new(store.clone());
/// assert_eq!(batcher.put(5, 50), None);
/// assert_eq!(batcher.put(5, 51), Some(50));
/// assert_eq!(batcher.delete(5), Some(51));
/// assert!(batcher.stats().batches >= 3);
/// ```
pub struct Batcher<V> {
    store: Arc<LeapStore<V>>,
    queue: Mutex<Vec<Pending<V>>>,
    /// Approximate queue population, readable without the queue lock (the
    /// adaptive wait polls it).
    queue_len: AtomicUsize,
    /// Admission bound: ops arriving while `queue_len` is at this depth
    /// are refused with [`StoreError::Overloaded`] instead of enqueued
    /// (`usize::MAX` = unbounded, the default).
    max_depth: usize,
    /// How long a submitter waits for the combiner lock before declaring
    /// it wedged and withdrawing its op (`None` = wait forever, the
    /// default).
    wedge_timeout: Option<Duration>,
    /// Ops shed (admission refusals plus injected drain drops).
    shed: AtomicU64,
    combiner: Mutex<()>,
    window_ns: AtomicU64,
    batches: AtomicU64,
    ops: AtomicU64,
    max_batch: AtomicU64,
    /// Latency of the most recent drain (the doubling guard's baseline).
    prev_drain_ns: AtomicU64,
    /// Sliding window of the last [`LAT_WINDOW`] drain latencies; only the
    /// combiner writes, so its lock is uncontended.
    drain_lats: SlidingQuantile,
}

impl<V: Clone + Send + Sync + 'static> Batcher<V> {
    /// Creates a batcher front-end for `store`.
    pub fn new(store: Arc<LeapStore<V>>) -> Self {
        Batcher {
            store,
            queue: Mutex::new(Vec::new()),
            queue_len: AtomicUsize::new(0),
            max_depth: usize::MAX,
            wedge_timeout: None,
            shed: AtomicU64::new(0),
            combiner: Mutex::new(()),
            window_ns: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            prev_drain_ns: AtomicU64::new(0),
            drain_lats: SlidingQuantile::new(LAT_WINDOW),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<LeapStore<V>> {
        &self.store
    }

    /// Caps the admission queue at `max_depth` queued ops (clamped to at
    /// least 1): an op arriving at a full queue is refused with
    /// [`StoreError::Overloaded`] — shed at the door, never a silent
    /// block behind a backlog that is not draining. Default: unbounded.
    pub fn with_admission(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth.max(1);
        self
    }

    /// Bounds how long a submitter waits for the combiner lock before
    /// declaring the combiner wedged: past `timeout`, an op still in the
    /// queue (not yet claimed by any combiner) is withdrawn and the
    /// caller gets [`StoreError::CombinerWedged`]. An op a combiner has
    /// already claimed is waited out — its fate is the batch's. Default:
    /// wait forever.
    pub fn with_wedge_timeout(mut self, timeout: Duration) -> Self {
        self.wedge_timeout = Some(timeout);
        self
    }

    /// Inserts or updates `key -> value` (possibly batched with other
    /// threads' ops); returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`, with a [`PoisonedOp`] payload if
    /// this op's `V: Clone` panicked inside a combined batch, or on
    /// admission refusal / combiner wedge when the batcher was built
    /// with [`Batcher::with_admission`] / [`Batcher::with_wedge_timeout`]
    /// (use [`Batcher::try_put`] to handle degradation as a value).
    pub fn put(&self, key: u64, value: V) -> Option<V> {
        self.try_put(key, value)
            // INVARIANT: documented panic — degradation surfaces here by
            // contract; `try_put` is the non-panicking form.
            .unwrap_or_else(|e| panic!("batcher op refused: {e}; use try_put to handle this"))
    }

    /// Removes `key` (possibly batched); returns its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`; see [`Batcher::put`] for the
    /// degradation panics.
    pub fn delete(&self, key: u64) -> Option<V> {
        self.try_delete(key)
            // INVARIANT: documented panic — degradation surfaces here by
            // contract; `try_delete` is the non-panicking form.
            .unwrap_or_else(|e| panic!("batcher op refused: {e}; use try_delete to handle this"))
    }

    /// [`Batcher::put`] with graceful degradation: admission refusals,
    /// injected drain sheds and combiner wedges come back as typed
    /// errors instead of panics.
    ///
    /// # Errors
    ///
    /// [`StoreError::Overloaded`] when the queue is at its admission
    /// bound (or an injected fault shed the drain);
    /// [`StoreError::CombinerWedged`] when the combiner lock stayed held
    /// past the configured wedge timeout.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX` (caller error, not degradation).
    pub fn try_put(&self, key: u64, value: V) -> Result<Option<V>, StoreError> {
        self.try_submit(BatchOp::Update(key, value))
    }

    /// [`Batcher::delete`] with graceful degradation; see
    /// [`Batcher::try_put`].
    ///
    /// # Errors
    ///
    /// As [`Batcher::try_put`].
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn try_delete(&self, key: u64) -> Result<Option<V>, StoreError> {
        self.try_submit(BatchOp::Remove(key))
    }

    /// Coalescing counters.
    pub fn stats(&self) -> BatcherStats {
        // ORDERING: monotonic stat counters (window_ns is a tuning knob);
        // readers only need eventually-consistent values.
        let ld = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        BatcherStats {
            batches: ld(&self.batches),
            ops: ld(&self.ops),
            max_batch: ld(&self.max_batch),
            window_ns: ld(&self.window_ns),
            p99_ns: self.drain_lats.p99(),
            shed: ld(&self.shed),
        }
    }

    /// Records one drain's latency into the sliding window and the
    /// previous-drain baseline.
    fn record_drain(&self, drain_ns: u64) {
        // ORDERING: read only by the next combiner; the combiner mutex
        // orders the hand-off.
        self.prev_drain_ns.store(drain_ns, Ordering::Relaxed);
        self.drain_lats.record(drain_ns);
    }

    /// Turns a filled outcome into the submitter's result — previous
    /// value, typed shed error, or the re-raised poison/abort panic.
    fn settle(&self, outcome: Outcome<V>) -> Result<Option<V>, StoreError> {
        match outcome {
            Outcome::Done(r) => Ok(r),
            Outcome::Shed { queued } => {
                leap_obs::trace::note_outcome(leap_obs::OpOutcome::Overloaded);
                Err(StoreError::Overloaded { queued })
            }
            Outcome::Poisoned(p) => {
                leap_obs::trace::note_outcome(leap_obs::OpOutcome::Poisoned);
                std::panic::panic_any(p)
            }
            Outcome::Aborted => {
                leap_obs::trace::note_outcome(leap_obs::OpOutcome::Aborted);
                // INVARIANT: documented panic propagation — the combiner
                // aborted under us and re-raised; we cannot report a result.
                panic!("a combining peer panicked mid-batch; this op's fate is unknown")
            }
        }
    }

    /// Acquires the combiner lock bounded by `timeout`: `Ok(Some(guard))`
    /// on acquisition; `Ok(None)` when a combiner settled our slot while
    /// we waited (no lock needed); `Err(CombinerWedged)` once the
    /// deadline passes with the op still **unclaimed** in the queue —
    /// the op is withdrawn under the queue lock first, so no later
    /// combiner can apply it after the caller gave up. An op a combiner
    /// already claimed is waited out: its slot will be filled, and
    /// withdrawing would race the in-flight drain.
    fn acquire_combiner_within(
        &self,
        slot: &Arc<Slot<V>>,
        timeout: Duration,
    ) -> Result<Option<MutexGuard<'_, ()>>, StoreError> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.combiner.try_lock() {
                Ok(g) => return Ok(Some(g)),
                Err(TryLockError::Poisoned(p)) => return Ok(Some(p.into_inner())),
                Err(TryLockError::WouldBlock) => {}
            }
            if lock_slot(slot).is_some() {
                return Ok(None);
            }
            if Instant::now() >= deadline {
                let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(pos) = q.iter().position(|p| Arc::ptr_eq(&p.slot, slot)) {
                    q.remove(pos);
                    drop(q);
                    // ORDERING: approximate depth counter for admission only.
                    self.queue_len.fetch_sub(1, Ordering::Relaxed);
                    // ORDERING: monotonic stat counter; no publication rides on it.
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    leap_obs::trace::note_outcome(leap_obs::OpOutcome::Wedged);
                    return Err(StoreError::CombinerWedged);
                }
            }
            std::thread::yield_now();
        }
    }

    fn try_submit(&self, op: BatchOp<V>) -> Result<Option<V>, StoreError> {
        // Validate before enqueueing: a documented caller error must panic
        // here, in the caller's frame, not inside a combiner that is
        // carrying other threads' ops (whose slots would never be filled).
        let key = match &op {
            BatchOp::Update(k, _) => *k,
            BatchOp::Remove(k) => *k,
        };
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        // The whole submission is one traced op: queue wait, combining and
        // the grouped apply all land in this span's phase breakdown (the
        // combiner's inner `store.apply` begin is nested, hence inert).
        let _span = self.store.span_keyed(leap_obs::OpClass::Batch, key);
        // Admission control: a full queue refuses the op at the door —
        // the caller learns *now* that the batcher is not keeping up,
        // instead of blocking behind a backlog that is not draining.
        // ORDERING: admission is advisory — a slightly stale depth only
        // shifts the refusal point by a few ops.
        let queued = self.queue_len.load(Ordering::Relaxed);
        if queued >= self.max_depth {
            // ORDERING: monotonic stat counter; no publication rides on it.
            self.shed.fetch_add(1, Ordering::Relaxed);
            self.store.note_shed(1, queued);
            leap_obs::trace::note_outcome(leap_obs::OpOutcome::Overloaded);
            return Err(StoreError::Overloaded { queued });
        }
        let slot = Arc::new(Slot::empty());
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Pending {
                op,
                slot: slot.clone(),
                enqueued: Instant::now(),
            });
        // ORDERING: approximate depth counter for admission only.
        self.queue_len.fetch_add(1, Ordering::Relaxed);
        // While another thread holds the combiner lock it is (or soon will
        // be) draining the queue — ops pile up behind it and the next
        // holder combines them all. Blocking here is the coalescing (bounded
        // by the wedge timeout when one is configured).
        let guard = match self.wedge_timeout {
            None => Some(
                self.combiner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            ),
            Some(t) => self.acquire_combiner_within(&slot, t)?,
        };
        if let Some(outcome) = lock_slot(&slot).take() {
            // A combiner carried our op; it wrote the phase breakdown into
            // the slot before settling (the mutex above orders the reads).
            leap_obs::trace::note_batch_phases(
                // ORDERING: the slot-mutex acquire above ordered this write.
                slot.queue_ns.load(Ordering::Relaxed),
                // ORDERING: as above — ordered by the slot mutex.
                slot.combine_ns.load(Ordering::Relaxed),
                // ORDERING: as above — ordered by the slot mutex.
                slot.commit_ns.load(Ordering::Relaxed),
            );
            return self.settle(outcome);
        }
        // INVARIANT: a `None` guard means a combiner settled our slot, and
        // we just observed the slot empty under its mutex.
        let _c = guard.expect("unfilled slot implies the combiner lock is held");
        // Wait-a-little: when recent drains coalesced, give stragglers a
        // moment to enqueue before draining (see the module docs). The
        // wait yields rather than pure-spins: on the few-core hosts this
        // window exists for, the stragglers need this CPU to enqueue at
        // all.
        // ORDERING: tuning knob owned by the combiner lock we hold.
        let window = self.window_ns.load(Ordering::Relaxed);
        if window > 0 {
            let deadline = Instant::now() + Duration::from_nanos(window);
            // ORDERING: approximate depth probe; stragglers we miss are
            // simply carried by the next drain.
            while self.queue_len.load(Ordering::Relaxed) < COALESCE_CAP && Instant::now() < deadline
            {
                std::thread::yield_now();
            }
        }
        let drained: Vec<Pending<V>> = {
            let mut q = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *q)
        };
        debug_assert!(!drained.is_empty(), "our own op must still be queued");
        // ORDERING: approximate depth counter for admission only.
        self.queue_len.fetch_sub(drained.len(), Ordering::Relaxed);
        let drain_size = drained.len();
        // Every drained op's queue-wait phase ends here.
        let pickup = Instant::now();
        // Injected drain fault: the whole batch is dropped before any
        // apply — but never silently. Every carried peer's slot gets a
        // typed Shed outcome and our own op reports Overloaded, so each
        // submitter knows its op did not run.
        if let Some(f) = self.store.faults() {
            if f.should_fire(FaultPoint::BatcherDrain) {
                // ORDERING: diagnostic depth for the error payload.
                let queued = self.queue_len.load(Ordering::Relaxed);
                self.store.note_shed(drain_size as u64, queued);
                // ORDERING: monotonic stat counter; no publication rides on it.
                self.shed.fetch_add(drain_size as u64, Ordering::Relaxed);
                for p in &drained {
                    if !Arc::ptr_eq(&p.slot, &slot) {
                        p.slot.queue_ns.store(
                            pickup.saturating_duration_since(p.enqueued).as_nanos() as u64,
                            // ORDERING: the slot mutex below publishes it.
                            Ordering::Relaxed,
                        );
                        *lock_slot(&p.slot) = Some(Outcome::Shed { queued });
                    }
                }
                // No apply ran, so there is no latency signal; decay the
                // window as if the combiner were alone.
                // ORDERING: tuning knob owned by the combiner lock we hold.
                let window = self.window_ns.load(Ordering::Relaxed);
                self.window_ns
                    // ORDERING: as above — combiner-lock owned.
                    .store(next_window(window, 1, 0, 0), Ordering::Relaxed);
                leap_obs::trace::note_outcome(leap_obs::OpOutcome::Overloaded);
                return Err(StoreError::Overloaded { queued });
            }
        }
        // Probe every op's clone before combining a multi-op batch: a
        // panicking `V::Clone` (the only way `apply` can panic pre-commit
        // after up-front key validation) is caught here with its batch
        // index, poisons only its own slot, and the rest of the batch
        // proceeds without it. Solo drains skip the probe — the combiner
        // IS the submitter, so a panicking clone inside `apply` already
        // unwinds to the right thread with no peers to protect.
        let probe = drained.len() > 1;
        let mut ops: Vec<BatchOp<V>> = Vec::with_capacity(drained.len());
        let mut slots: Vec<Arc<Slot<V>>> = Vec::with_capacity(drained.len());
        let mut enqueues: Vec<Instant> = Vec::with_capacity(drained.len());
        let mut own_poison: Option<PoisonedOp> = None;
        for (index, p) in drained.into_iter().enumerate() {
            let poisoned = probe
                && std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.op.clone()))
                    .map_err(|payload| {
                        self.store.emit(EventKind::PoisonedOp {
                            index: index as u64,
                        });
                        let poisoned = PoisonedOp { index, payload };
                        if Arc::ptr_eq(&p.slot, &slot) {
                            own_poison = Some(poisoned);
                        } else {
                            *lock_slot(&p.slot) = Some(Outcome::Poisoned(poisoned));
                        }
                    })
                    .is_err();
            if !poisoned {
                ops.push(p.op);
                slots.push(p.slot);
                enqueues.push(p.enqueued);
            }
        }
        let mut own = None;
        if !ops.is_empty() {
            // If apply still panics (e.g. a clone that fails only on its
            // second call), tell every carried peer before re-raising, so
            // none of them waits on a slot that will never be filled.
            let drain_started = Instant::now();
            let results =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.store.apply(&ops)))
                    .unwrap_or_else(|payload| {
                        for p in &slots {
                            *lock_slot(p) = Some(Outcome::Aborted);
                        }
                        std::panic::resume_unwind(payload);
                    });
            // Latency-aware window adaptation: a coalesced drain that ran
            // slower than the previous one holds the window instead of
            // doubling it (see `next_window`).
            let drain_ns = drain_started.elapsed().as_nanos() as u64;
            // ORDERING: baseline handed over under the combiner lock.
            let prev_ns = self.prev_drain_ns.load(Ordering::Relaxed);
            self.window_ns.store(
                next_window(window, drain_size, drain_ns, prev_ns),
                // ORDERING: tuning knob owned by the combiner lock we hold.
                Ordering::Relaxed,
            );
            self.record_drain(drain_ns);
            self.store.emit(EventKind::BatcherDrain {
                ops: ops.len() as u64,
                drain_ns,
                window_ns: window,
            });
            // ORDERING: monotonic stat counter; no publication rides on it.
            self.batches.fetch_add(1, Ordering::Relaxed);
            // ORDERING: monotonic stat counter; no publication rides on it.
            self.ops.fetch_add(ops.len() as u64, Ordering::Relaxed);
            self.max_batch
                // ORDERING: eventual high-water mark; readers tolerate lag.
                .fetch_max(ops.len() as u64, Ordering::Relaxed);
            // Phase breakdown shared by every op in the batch: combine is
            // the probe (pickup -> apply), commit is the grouped apply;
            // queue wait is per-op. Peers get theirs via the slot, our own
            // op annotates the open span directly.
            let combine_ns = drain_started.saturating_duration_since(pickup).as_nanos() as u64;
            for ((p, r), enq) in slots.into_iter().zip(results).zip(enqueues) {
                let queue_ns = pickup.saturating_duration_since(enq).as_nanos() as u64;
                if Arc::ptr_eq(&p, &slot) {
                    leap_obs::trace::note_batch_phases(queue_ns, combine_ns, drain_ns);
                    own = Some(r);
                } else {
                    // ORDERING: the slot mutex below publishes this write.
                    p.queue_ns.store(queue_ns, Ordering::Relaxed);
                    // ORDERING: as above — published by the slot mutex.
                    p.combine_ns.store(combine_ns, Ordering::Relaxed);
                    // ORDERING: as above — published by the slot mutex.
                    p.commit_ns.store(drain_ns, Ordering::Relaxed);
                    *lock_slot(&p) = Some(Outcome::Done(r));
                }
            }
        }
        if ops.is_empty() {
            // Every drained op was poisoned: no apply ran, so there is no
            // latency signal; decay as if the combiner were alone.
            self.window_ns
                // ORDERING: tuning knob owned by the combiner lock we hold.
                .store(next_window(window, 1, 0, 0), Ordering::Relaxed);
        }
        if let Some(poisoned) = own_poison {
            std::panic::panic_any(poisoned);
        }
        // INVARIANT: our op is withdrawn from the queue only on the error
        // paths above; otherwise it is in `ops` and `apply` returned for it.
        Ok(own.expect("the drain carried our own op"))
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for Batcher<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Batcher")
            .field("batches", &s.batches)
            .field("ops", &s.ops)
            .field("avg_batch", &s.avg_batch())
            .field("window_ns", &s.window_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Partitioning;
    use crate::store::StoreConfig;

    #[test]
    fn sequential_ops_behave_like_the_store() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            4,
            Partitioning::Hash,
        )));
        let b = Batcher::new(store.clone());
        assert_eq!(b.put(1, 10), None);
        assert_eq!(b.put(1, 11), Some(10));
        assert_eq!(b.delete(1), Some(11));
        assert_eq!(b.delete(1), None);
        assert_eq!(store.get(1), None);
        let s = b.stats();
        assert_eq!(s.ops, 4);
        assert!(
            (s.avg_batch() - 1.0).abs() < 1e-9,
            "no contention, no coalescing"
        );
        assert_eq!(
            s.window_ns, 0,
            "solo drains must keep the adaptive window closed"
        );
        assert_eq!(BatcherStats::default().avg_batch(), 0.0);
    }

    #[test]
    fn window_doubles_on_coalescing_and_decays_alone() {
        // Growth: any coalesced drain opens the window from zero…
        assert_eq!(next_window(0, 2, 100, 100), WINDOW_BASE_NS);
        // …then doubles…
        assert_eq!(next_window(WINDOW_BASE_NS, 3, 100, 100), 2 * WINDOW_BASE_NS);
        // …up to the cap.
        assert_eq!(next_window(WINDOW_MAX_NS, 9, 100, 100), WINDOW_MAX_NS);
        assert_eq!(next_window(u64::MAX, 2, 100, 100), WINDOW_MAX_NS);
        // Decay: solo drains halve toward zero and stay there.
        assert_eq!(next_window(WINDOW_BASE_NS, 1, 100, 100), WINDOW_BASE_NS / 2);
        assert_eq!(next_window(1, 1, 100, 100), 0);
        assert_eq!(next_window(0, 1, 100, 100), 0);
        assert_eq!(next_window(0, 0, 100, 100), 0);
    }

    #[test]
    fn window_holds_when_latency_degrades() {
        // A coalesced drain 25%+ slower than the previous one holds the
        // window instead of doubling.
        assert_eq!(next_window(WINDOW_BASE_NS, 4, 126, 100), WINDOW_BASE_NS);
        // Within tolerance (or faster): doubling proceeds.
        assert_eq!(next_window(WINDOW_BASE_NS, 4, 125, 100), 2 * WINDOW_BASE_NS);
        assert_eq!(next_window(WINDOW_BASE_NS, 4, 60, 100), 2 * WINDOW_BASE_NS);
        // No baseline yet: doubling proceeds.
        assert_eq!(next_window(WINDOW_BASE_NS, 4, 500, 0), 2 * WINDOW_BASE_NS);
        // Degradation never blocks the solo decay path.
        assert_eq!(next_window(WINDOW_BASE_NS, 1, 900, 100), WINDOW_BASE_NS / 2);
    }

    #[test]
    fn stats_expose_drain_p99() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Batcher::new(store.clone());
        assert_eq!(b.stats().p99_ns, 0, "no drains yet");
        for k in 0..100u64 {
            b.put(k, k);
        }
        assert!(b.stats().p99_ns > 0, "drains recorded a latency");
        // The sliding window stays bounded at LAT_WINDOW drains.
        assert!(b.drain_lats.len() <= LAT_WINDOW);
        assert_eq!(b.drain_lats.len(), 64, "100 drains, last 64 kept");
        // Every drain also landed on the store's event timeline.
        let snap = store.obs().expect("obs on by default").events().snapshot();
        assert!(
            snap.events
                .iter()
                .any(|e| matches!(e.kind, EventKind::BatcherDrain { ops: 1, .. })),
            "solo drains appear in the timeline"
        );
    }

    #[test]
    fn reserved_key_panic_does_not_wedge_the_batcher() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Arc::new(Batcher::new(store.clone()));
        let panicked = {
            let b = b.clone();
            std::thread::spawn(move || {
                b.put(u64::MAX, 1);
            })
            .join()
        };
        assert!(panicked.is_err(), "reserved key must panic");
        // The panic happened before any lock was taken: the batcher (and
        // its combiner mutex) must still serve every other thread.
        assert_eq!(b.put(7, 70), None);
        assert_eq!(b.delete(7), Some(70));
        assert_eq!(b.stats().ops, 2, "the rejected op was never enqueued");
    }

    /// A value whose Clone panics when armed: the only way a combined
    /// batch can die after up-front key validation.
    #[derive(Debug, PartialEq)]
    struct Bomb(u64, bool);
    impl Clone for Bomb {
        fn clone(&self) -> Self {
            assert!(!self.1, "armed bomb cloned");
            Bomb(self.0, false)
        }
    }

    #[test]
    fn solo_bomb_panics_in_its_own_frame_and_batcher_survives() {
        let store = Arc::new(LeapStore::<Bomb>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Arc::new(Batcher::new(store.clone()));
        let panicked = {
            let b = b.clone();
            std::thread::spawn(move || {
                b.put(3, Bomb(30, true));
            })
            .join()
        };
        // A solo drain has no peers to protect: the original panic payload
        // reaches the submitter unwrapped (no probe ran).
        let payload = panicked.expect_err("armed bomb must panic");
        assert!(
            payload.downcast_ref::<PoisonedOp>().is_none(),
            "solo drains skip the probe"
        );
        // The combiner marked no stray slots; the batcher still serves.
        assert!(b.put(4, Bomb(40, false)).is_none());
        assert_eq!(store.get(4), Some(Bomb(40, false)));
    }

    #[test]
    fn poisoned_op_does_not_take_down_its_batch_peers() {
        let store = Arc::new(LeapStore::<Bomb>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Batcher::new(store.clone());
        // Plant a peer's armed op directly in the queue (as if a thread
        // had enqueued it and were waiting on the combiner lock), then
        // combine via a healthy own op: the drain carries both.
        let peer_slot = Arc::new(Slot::empty());
        b.queue.lock().unwrap().push(Pending {
            op: BatchOp::Update(9, Bomb(90, true)),
            slot: peer_slot.clone(),
            enqueued: Instant::now(),
        });
        b.queue_len.fetch_add(1, Ordering::Relaxed);
        assert_eq!(b.put(5, Bomb(50, false)), None, "healthy op lands");
        assert_eq!(store.get(5), Some(Bomb(50, false)));
        assert_eq!(store.get(9), None, "poisoned op was never applied");
        match lock_slot(&peer_slot).take() {
            Some(Outcome::Poisoned(p)) => {
                assert_eq!(p.index, 0, "the planted bomb was first in the drain");
                assert!(
                    p.payload.downcast_ref::<String>().is_some()
                        || p.payload.downcast_ref::<&str>().is_some(),
                    "original panic payload is preserved"
                );
                assert!(format!("{p:?}").contains("index: 0"));
            }
            _ => panic!("peer slot must carry the poisoned-op report"),
        }
        let s = b.stats();
        assert_eq!(s.ops, 1, "only the healthy op counted");
        assert!(s.max_batch >= 1);
    }

    #[test]
    fn admission_refuses_ops_at_the_bound() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Batcher::new(store.clone()).with_admission(1);
        // Plant a queued op (as if its thread were parked on the combiner
        // lock): the queue sits at the bound, so the next arrival is shed
        // at the door instead of blocking behind it.
        let parked = Arc::new(Slot::empty());
        b.queue.lock().unwrap().push(Pending {
            op: BatchOp::Update(1, 10),
            slot: parked.clone(),
            enqueued: Instant::now(),
        });
        b.queue_len.fetch_add(1, Ordering::Relaxed);
        match b.try_put(2, 20) {
            Err(StoreError::Overloaded { queued }) => assert_eq!(queued, 1),
            other => panic!("expected an admission refusal, got {other:?}"),
        }
        assert_eq!(store.get(2), None, "the shed op never ran");
        assert_eq!(b.stats().shed, 1);
        assert_eq!(store.stats().shed_ops, 1, "shed surfaces in store stats");
        // The infallible front-end panics with the typed error's message.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b.put(2, 20)));
        let payload = panicked.expect_err("put must refuse at the bound");
        let msg = payload.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("overloaded"), "{msg}");
        assert!(msg.contains("try_put"), "{msg}");
        // Un-park the planted op: admission opens again.
        b.queue.lock().unwrap().clear();
        b.queue_len.fetch_sub(1, Ordering::Relaxed);
        assert_eq!(b.try_put(2, 20).unwrap(), None);
        assert_eq!(store.get(2), Some(20));
        // Every shed op landed on the store's event timeline.
        let snap = store.obs().expect("obs on by default").events().snapshot();
        assert!(snap
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Shed { ops: 1, queued: 1 })));
    }

    #[test]
    fn wedged_combiner_times_out_with_a_typed_error() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Arc::new(Batcher::new(store.clone()).with_wedge_timeout(Duration::from_millis(20)));
        // Wedge the combiner: hold its lock so no drain can ever run.
        let held = b.combiner.lock().unwrap();
        let res = {
            let b = b.clone();
            std::thread::spawn(move || b.try_put(3, 30)).join().unwrap()
        };
        assert!(matches!(res, Err(StoreError::CombinerWedged)), "{res:?}");
        // The op was withdrawn under the queue lock: no later combiner
        // can apply it after its caller gave up.
        assert_eq!(b.queue_len.load(Ordering::Relaxed), 0);
        assert!(b.queue.lock().unwrap().is_empty());
        assert_eq!(b.stats().shed, 1);
        assert_eq!(store.get(3), None);
        drop(held);
        // Wedge gone: the same op goes through within the same timeout.
        assert_eq!(b.try_put(3, 30).unwrap(), None);
        assert_eq!(store.get(3), Some(30));
    }

    #[test]
    fn injected_drain_fault_sheds_the_whole_batch() {
        let plan = leap_fault::FaultPlan::new(11)
            .always(FaultPoint::BatcherDrain)
            .with_budget(FaultPoint::BatcherDrain, 1);
        let store = Arc::new(LeapStore::<u64>::new(
            StoreConfig::new(2, Partitioning::Hash).with_faults(plan),
        ));
        let b = Batcher::new(store.clone());
        // Plant a peer so the shed batch carries more than our own op.
        let peer = Arc::new(Slot::empty());
        b.queue.lock().unwrap().push(Pending {
            op: BatchOp::Update(8, 80),
            slot: peer.clone(),
            enqueued: Instant::now(),
        });
        b.queue_len.fetch_add(1, Ordering::Relaxed);
        // The first drain hits the injected fault: nothing applies, and
        // every submitter learns it — us via the typed error, the peer
        // via its slot.
        assert!(matches!(
            b.try_put(4, 40),
            Err(StoreError::Overloaded { .. })
        ));
        assert!(matches!(
            lock_slot(&peer).take(),
            Some(Outcome::Shed { .. })
        ));
        assert_eq!(store.get(4), None);
        assert_eq!(store.get(8), None);
        assert_eq!(b.stats().shed, 2, "both carried ops count as shed");
        assert_eq!(store.stats().shed_ops, 2);
        // The budget is spent: the next drain applies normally.
        assert_eq!(b.try_put(4, 40).unwrap(), None);
        assert_eq!(store.get(4), Some(40));
    }

    /// A value whose shared clone counter detonates on exactly the
    /// `fuse`-th clone (0 = never). Fuse 3 is calibrated to the combined
    /// write path: clone 1 is the combiner's probe, clone 2 the batch
    /// grouping, clone 3 the plan build inside `apply_batch_grouped` —
    /// which runs *while the migration overlay's write lock is held*.
    #[derive(Debug)]
    struct StagedBomb {
        clones: Arc<AtomicU64>,
        fuse: u64,
        val: u64,
    }
    impl StagedBomb {
        fn healthy(val: u64) -> Self {
            StagedBomb {
                clones: Arc::new(AtomicU64::new(0)),
                fuse: 0,
                val,
            }
        }
    }
    impl Clone for StagedBomb {
        fn clone(&self) -> Self {
            let n = self.clones.fetch_add(1, Ordering::Relaxed) + 1;
            assert!(
                self.fuse == 0 || n != self.fuse,
                "staged bomb detonated on clone {n}"
            );
            StagedBomb {
                clones: self.clones.clone(),
                fuse: self.fuse,
                val: self.val,
            }
        }
    }

    /// Poisoned-op isolation during a *live migration*: a clone that
    /// panics inside the grouped apply — after the probe, while the
    /// drain holds the migration overlay's write lock — must release
    /// the lock on unwind, report the peers, and leave the migration
    /// fully completable.
    #[test]
    fn poisoned_op_mid_migration_releases_overlay_locks() {
        use crate::rebalance::{RebalanceAction, RebalancePolicy};
        let store = Arc::new(LeapStore::<StagedBomb>::new(
            StoreConfig::new(2, Partitioning::Range)
                .with_key_space(1_000)
                .with_rebalancing(RebalancePolicy {
                    chunk: 8,
                    ..RebalancePolicy::default()
                }),
        ));
        for k in 0..40u64 {
            store.put(k, StagedBomb::healthy(k));
        }
        // Split [20, 499] away and move one chunk: the migration is live,
        // its overlay routes in-range writes.
        store.split_shard(0, 20).expect("valid split");
        assert!(matches!(
            store.rebalance_step(),
            RebalanceAction::Moved { .. }
        ));
        let b = Arc::new(Batcher::new(store.clone()));
        // A healthy peer op on a migrating key, parked in the queue.
        let peer = Arc::new(Slot::empty());
        b.queue.lock().unwrap().push(Pending {
            op: BatchOp::Update(25, StagedBomb::healthy(250)),
            slot: peer.clone(),
            enqueued: Instant::now(),
        });
        b.queue_len.fetch_add(1, Ordering::Relaxed);
        // The bomb targets a migrating key too: the grouped apply takes
        // the overlay write lock, then detonates on the plan-build clone.
        let bomb = StagedBomb {
            clones: Arc::new(AtomicU64::new(0)),
            fuse: 3,
            val: 300,
        };
        let panicked = {
            let b = b.clone();
            std::thread::spawn(move || b.put(30, bomb)).join()
        };
        assert!(panicked.is_err(), "the armed clone must panic the drain");
        // The peer was told its fate (mid-apply abort, not silence)...
        assert!(matches!(lock_slot(&peer).take(), Some(Outcome::Aborted)));
        // ...and the overlay write lock was released on unwind: in-range
        // ops proceed, from this thread, without deadlock.
        let prev = store.put(25, StagedBomb::healthy(251));
        assert_eq!(prev.map(|v| v.val), Some(25), "peer's update never landed");
        assert_eq!(store.get(25).map(|v| v.val), Some(251));
        assert_eq!(store.get(30).map(|v| v.val), Some(30), "bomb never landed");
        // The migration itself is still healthy and completes.
        store.rebalance_until_idle();
        assert!(store.router().migrations().is_empty());
        assert!(store.router().epoch() >= 1);
        for k in 0..40u64 {
            let want = if k == 25 { 251 } else { k };
            assert_eq!(store.get(k).map(|v| v.val), Some(want), "key {k}");
        }
    }

    #[test]
    fn concurrent_ops_all_land_and_coalesce() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            8,
            Partitioning::Hash,
        )));
        let b = Arc::new(Batcher::new(store.clone()));
        let threads = 4;
        let per = 200u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = t * per + i;
                        assert_eq!(b.put(k, k + 1), None, "keys are disjoint per thread");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for k in 0..threads * per {
            assert_eq!(store.get(k), Some(k + 1));
        }
        let s = b.stats();
        assert_eq!(s.ops, threads * per);
        assert!(s.batches <= s.ops, "combined calls never exceed ops");
    }
}
