//! The batching front-end: a flat-combining funnel that coalesces
//! independent single-key operations arriving on many worker threads into
//! grouped [`LeapStore::apply`] calls, so `k` concurrent puts to `k`
//! distinct shards cost one multi-list transaction instead of `k`.

use crate::store::LeapStore;
use leaplist::BatchOp;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a combined op ended.
enum Outcome<V> {
    /// The grouped `apply` committed; this is the op's previous value.
    Done(Option<V>),
    /// The combiner panicked mid-batch (e.g. a panicking `V::Clone`): the
    /// op's fate is unknown, so the waiting submitter re-raises.
    Aborted,
}

/// One submitted op's result slot, filled by whichever thread combines it.
struct Slot<V> {
    result: Mutex<Option<Outcome<V>>>,
}

struct Pending<V> {
    op: BatchOp<V>,
    slot: Arc<Slot<V>>,
}

/// Locks a slot, recovering from poison (a panicking peer must not wedge
/// the batcher for everyone else).
fn lock_slot<V>(slot: &Slot<V>) -> std::sync::MutexGuard<'_, Option<Outcome<V>>> {
    slot.result
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Point-in-time counters for a [`Batcher`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatcherStats {
    /// Combined `apply` calls issued.
    pub batches: u64,
    /// Operations carried by those calls.
    pub ops: u64,
    /// Largest single combined batch.
    pub max_batch: u64,
}

impl BatcherStats {
    /// Mean ops per combined call (1.0 means no coalescing happened).
    pub fn avg_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.ops as f64 / self.batches as f64
        }
    }
}

/// A flat-combining batcher over a shared [`LeapStore`].
///
/// Threads call [`Batcher::put`] / [`Batcher::delete`] as if they were the
/// store's own methods; internally each call enqueues the op and then
/// either *combines* (drains every queued op into one grouped
/// [`LeapStore::apply`]) or finds its op already combined by another
/// thread. Under contention this turns `k` single-key transactions into
/// one `k`-list transaction — the multi-list composite the paper builds.
///
/// # Example
///
/// ```
/// use leap_store::{Batcher, LeapStore, StoreConfig};
/// use std::sync::Arc;
///
/// let store = Arc::new(LeapStore::<u64>::new(StoreConfig::default()));
/// let batcher = Batcher::new(store.clone());
/// assert_eq!(batcher.put(5, 50), None);
/// assert_eq!(batcher.put(5, 51), Some(50));
/// assert_eq!(batcher.delete(5), Some(51));
/// assert!(batcher.stats().batches >= 3);
/// ```
pub struct Batcher<V> {
    store: Arc<LeapStore<V>>,
    queue: Mutex<Vec<Pending<V>>>,
    combiner: Mutex<()>,
    batches: AtomicU64,
    ops: AtomicU64,
    max_batch: AtomicU64,
}

impl<V: Clone + Send + Sync + 'static> Batcher<V> {
    /// Creates a batcher front-end for `store`.
    pub fn new(store: Arc<LeapStore<V>>) -> Self {
        Batcher {
            store,
            queue: Mutex::new(Vec::new()),
            combiner: Mutex::new(()),
            batches: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<LeapStore<V>> {
        &self.store
    }

    /// Inserts or updates `key -> value` (possibly batched with other
    /// threads' ops); returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn put(&self, key: u64, value: V) -> Option<V> {
        self.submit(BatchOp::Update(key, value))
    }

    /// Removes `key` (possibly batched); returns its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn delete(&self, key: u64) -> Option<V> {
        self.submit(BatchOp::Remove(key))
    }

    /// Coalescing counters.
    pub fn stats(&self) -> BatcherStats {
        BatcherStats {
            batches: self.batches.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    fn submit(&self, op: BatchOp<V>) -> Option<V> {
        // Validate before enqueueing: a documented caller error must panic
        // here, in the caller's frame, not inside a combiner that is
        // carrying other threads' ops (whose slots would never be filled).
        let key = match &op {
            BatchOp::Update(k, _) => *k,
            BatchOp::Remove(k) => *k,
        };
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
        });
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Pending {
                op,
                slot: slot.clone(),
            });
        // While another thread holds the combiner lock it is (or soon will
        // be) draining the queue — ops pile up behind it and the next
        // holder combines them all. Blocking here is the coalescing.
        let _c = self
            .combiner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match lock_slot(&slot).take() {
            Some(Outcome::Done(r)) => return r, // a combiner carried our op
            Some(Outcome::Aborted) => {
                panic!("a combining peer panicked mid-batch; this op's fate is unknown")
            }
            None => {}
        }
        let drained: Vec<Pending<V>> = {
            let mut q = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            std::mem::take(&mut *q)
        };
        debug_assert!(!drained.is_empty(), "our own op must still be queued");
        let (ops, slots): (Vec<BatchOp<V>>, Vec<Arc<Slot<V>>>) =
            drained.into_iter().map(|p| (p.op, p.slot)).unzip();
        // If apply itself panics (it cannot from key validation — that
        // happened in every submitter's own frame — but e.g. a panicking
        // V::Clone could), tell every drained peer before re-raising, so
        // none of them waits on a slot that will never be filled.
        let results =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.store.apply(&ops)))
                .unwrap_or_else(|payload| {
                    for p in &slots {
                        *lock_slot(p) = Some(Outcome::Aborted);
                    }
                    std::panic::resume_unwind(payload);
                });
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.ops.fetch_add(ops.len() as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(ops.len() as u64, Ordering::Relaxed);
        let mut own = None;
        for (p, r) in slots.into_iter().zip(results) {
            if Arc::ptr_eq(&p, &slot) {
                own = Some(r);
            } else {
                *lock_slot(&p) = Some(Outcome::Done(r));
            }
        }
        own.expect("the drain carried our own op")
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for Batcher<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Batcher")
            .field("batches", &s.batches)
            .field("ops", &s.ops)
            .field("avg_batch", &s.avg_batch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Partitioning;
    use crate::store::StoreConfig;

    #[test]
    fn sequential_ops_behave_like_the_store() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            4,
            Partitioning::Hash,
        )));
        let b = Batcher::new(store.clone());
        assert_eq!(b.put(1, 10), None);
        assert_eq!(b.put(1, 11), Some(10));
        assert_eq!(b.delete(1), Some(11));
        assert_eq!(b.delete(1), None);
        assert_eq!(store.get(1), None);
        let s = b.stats();
        assert_eq!(s.ops, 4);
        assert!(
            (s.avg_batch() - 1.0).abs() < 1e-9,
            "no contention, no coalescing"
        );
        assert_eq!(BatcherStats::default().avg_batch(), 0.0);
    }

    #[test]
    fn reserved_key_panic_does_not_wedge_the_batcher() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Arc::new(Batcher::new(store.clone()));
        let panicked = {
            let b = b.clone();
            std::thread::spawn(move || {
                b.put(u64::MAX, 1);
            })
            .join()
        };
        assert!(panicked.is_err(), "reserved key must panic");
        // The panic happened before any lock was taken: the batcher (and
        // its combiner mutex) must still serve every other thread.
        assert_eq!(b.put(7, 70), None);
        assert_eq!(b.delete(7), Some(70));
        assert_eq!(b.stats().ops, 2, "the rejected op was never enqueued");
    }

    #[test]
    fn combiner_panic_is_reraised_and_batcher_survives() {
        // A value whose Clone panics when armed: the only way apply itself
        // can panic after up-front key validation.
        #[derive(Debug, PartialEq)]
        struct Bomb(u64, bool);
        impl Clone for Bomb {
            fn clone(&self) -> Self {
                assert!(!self.1, "armed bomb cloned");
                Bomb(self.0, false)
            }
        }
        let store = Arc::new(LeapStore::<Bomb>::new(StoreConfig::new(
            2,
            Partitioning::Hash,
        )));
        let b = Arc::new(Batcher::new(store.clone()));
        let panicked = {
            let b = b.clone();
            std::thread::spawn(move || {
                b.put(3, Bomb(30, true));
            })
            .join()
        };
        assert!(panicked.is_err(), "armed bomb must panic inside apply");
        // The combiner marked affected slots and re-raised; the batcher
        // still serves subsequent ops.
        assert!(b.put(4, Bomb(40, false)).is_none());
        assert_eq!(store.get(4), Some(Bomb(40, false)));
    }

    #[test]
    fn concurrent_ops_all_land_and_coalesce() {
        let store = Arc::new(LeapStore::<u64>::new(StoreConfig::new(
            8,
            Partitioning::Hash,
        )));
        let b = Arc::new(Batcher::new(store.clone()));
        let threads = 4;
        let per = 200u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let b = b.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        let k = t * per + i;
                        assert_eq!(b.put(k, k + 1), None, "keys are disjoint per thread");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for k in 0..threads * per {
            assert_eq!(store.get(k), Some(k + 1));
        }
        let s = b.stats();
        assert_eq!(s.ops, threads * per);
        assert!(s.batches <= s.ops, "combined calls never exceed ops");
    }
}
