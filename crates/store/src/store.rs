//! The store proper: N Leap-List shards on one transactional domain, a
//! router deciding placement, and a seqlock that keeps even multi-round
//! batches invisible-in-part to readers.

use crate::router::{Partitioning, Router};
use crate::stats::{ShardCounters, StoreStats};
use leap_stm::StmDomain;
use leaplist::{BatchOp, LeapListLt, Params};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Construction parameters for a [`LeapStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of Leap-List shards.
    pub shards: usize,
    /// How keys map to shards.
    pub partitioning: Partitioning,
    /// Expected key upper bound (exclusive) — range partitioning slices
    /// `[0, key_space)` into equal strides; keys at or beyond it fall in
    /// the trailing shards (exactly the last shard whenever
    /// `key_space >= shards`). Hash partitioning ignores it.
    pub key_space: u64,
    /// Per-shard Leap-List structure parameters.
    pub params: Params,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 8,
            partitioning: Partitioning::Hash,
            key_space: u64::MAX,
            params: Params::default(),
        }
    }
}

impl StoreConfig {
    /// A config with the given shard count and partitioning mode.
    pub fn new(shards: usize, partitioning: Partitioning) -> Self {
        StoreConfig {
            shards,
            partitioning,
            ..Default::default()
        }
    }

    /// Sets the expected key upper bound (exclusive).
    pub fn with_key_space(mut self, key_space: u64) -> Self {
        self.key_space = key_space;
        self
    }

    /// Sets the per-shard Leap-List parameters.
    pub fn with_params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }
}

/// A sharded, concurrent range-store over Leap-List shards sharing one
/// transactional domain.
///
/// * [`LeapStore::get`] / [`LeapStore::put`] / [`LeapStore::delete`] —
///   single-key operations routed to one shard.
/// * [`LeapStore::multi_put`] / [`LeapStore::apply`] — cross-shard batches
///   applied as **one linearizable action**.
/// * [`LeapStore::range`] — a cross-shard range query assembled from
///   per-shard snapshots taken inside **one** transaction
///   ([`LeapListLt::range_query_group`]), so the combined result is a
///   single consistent snapshot: it can never observe part of a batch.
///
/// # Batch atomicity
///
/// A batch with at most one key per shard commits through one multi-list
/// `apply_batch` transaction (the fast path). A batch that maps two or
/// more keys to one shard cannot — Leap-List plans are one-op-per-list —
/// so it is applied in rounds, hidden behind two mechanisms: a sequence
/// lock makes readers retry rather than observe the gap between rounds,
/// and an exclusive writer-phase lock keeps other writers (whose
/// previous-value returns would expose intermediate state) out for the
/// batch's duration. Single-key ops and fast-path batches hold the
/// writer-phase lock shared, so they run concurrently with each other.
///
/// # Example
///
/// ```
/// use leap_store::{LeapStore, Partitioning, StoreConfig};
///
/// let store: LeapStore<u64> =
///     LeapStore::new(StoreConfig::new(4, Partitioning::Range).with_key_space(1000));
/// store.put(10, 100);
/// store.put(600, 900);
/// // Atomic across shards:
/// store.multi_put(&[(20, 1), (400, 2), (800, 3)]);
/// assert_eq!(store.get(400), Some(2));
/// assert_eq!(store.range(0, 999).len(), 5);
/// ```
pub struct LeapStore<V> {
    shards: Vec<LeapListLt<V>>,
    router: Router,
    domain: Arc<StmDomain>,
    counters: Vec<ShardCounters>,
    /// Sequence lock: odd while a multi-round (slow-path) batch is
    /// mid-flight. Readers retry around odd values and around observed
    /// transitions.
    seq: AtomicU64,
    /// Writer-phase lock: every writer holds it shared (single-key ops
    /// and fast-path batches run concurrently); a slow-path batch holds
    /// it exclusively, so no other write can land between its rounds and
    /// observe — or expose, via previous-value returns — the gap.
    write_phase: RwLock<()>,
    slow_batches: AtomicU64,
}

/// Restores the seqlock to even if a slow-path round panics; without it
/// a panicking batch would leave `seq` odd and spin every future reader.
struct SeqGuard<'a>(&'a AtomicU64);

impl Drop for SeqGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Shared (writer) acquisition of the write-phase lock; a panic in some
/// other writer must not poison the store.
fn read_phase(lock: &RwLock<()>) -> std::sync::RwLockReadGuard<'_, ()> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Exclusive (slow-batch) acquisition of the write-phase lock.
fn write_phase(lock: &RwLock<()>) -> std::sync::RwLockWriteGuard<'_, ()> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<V: Clone + Send + Sync + 'static> LeapStore<V> {
    /// Creates an empty store: `config.shards` Leap-Lists sharing one
    /// fresh transactional domain.
    pub fn new(config: StoreConfig) -> Self {
        // The router owns the shard-count validation; build it first so a
        // zero-shard config panics with the router's diagnostic.
        let router = Router::new(config.partitioning, config.shards, config.key_space);
        let shards = LeapListLt::group(config.shards, config.params.clone());
        let domain = shards
            .first()
            .expect("router rejected shards == 0 above")
            .domain()
            .clone();
        let counters = (0..config.shards)
            .map(|_| ShardCounters::default())
            .collect();
        LeapStore {
            shards,
            router,
            domain,
            counters,
            seq: AtomicU64::new(0),
            write_phase: RwLock::new(()),
            slow_batches: AtomicU64::new(0),
        }
    }

    /// The router (placement inspection).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's Leap-List (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard(&self, s: usize) -> &LeapListLt<V> {
        &self.shards[s]
    }

    /// The shared transactional domain.
    pub fn domain(&self) -> &Arc<StmDomain> {
        &self.domain
    }

    /// Point lookup.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn get(&self, key: u64) -> Option<V> {
        let s = self.router.shard_of(key);
        ShardCounters::bump(&self.counters[s].gets);
        loop {
            let s1 = self.read_enter();
            let v = self.shards[s].lookup(key);
            if self.read_exit(s1) {
                return v;
            }
        }
    }

    /// Inserts or updates `key -> value`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn put(&self, key: u64, value: V) -> Option<V> {
        let s = self.router.shard_of(key);
        ShardCounters::bump(&self.counters[s].puts);
        let _w = read_phase(&self.write_phase);
        self.shards[s].update(key, value)
    }

    /// Removes `key`; returns its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn delete(&self, key: u64) -> Option<V> {
        let s = self.router.shard_of(key);
        ShardCounters::bump(&self.counters[s].deletes);
        let _w = read_phase(&self.write_phase);
        self.shards[s].remove(key)
    }

    /// Inserts all `(key, value)` pairs as **one linearizable action**
    /// across their shards; returns previous values in input order.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn multi_put(&self, entries: &[(u64, V)]) -> Vec<Option<V>> {
        let ops: Vec<BatchOp<V>> = entries
            .iter()
            .map(|(k, v)| BatchOp::Update(*k, v.clone()))
            .collect();
        self.apply(&ops)
    }

    /// Removes all `keys` as one linearizable action; returns the removed
    /// values in input order.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn multi_delete(&self, keys: &[u64]) -> Vec<Option<V>> {
        let ops: Vec<BatchOp<V>> = keys.iter().map(|k| BatchOp::Remove(*k)).collect();
        self.apply(&ops)
    }

    /// Applies a mixed put/delete batch as one linearizable action;
    /// returns previous values in input order. Ops sharing a shard apply
    /// in input order.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn apply(&self, ops: &[BatchOp<V>]) -> Vec<Option<V>> {
        if ops.is_empty() {
            return Vec::new();
        }
        let key_of = |op: &BatchOp<V>| match op {
            BatchOp::Update(k, _) => *k,
            BatchOp::Remove(k) => *k,
        };
        // Validate every key before touching any lock or shard, so a
        // documented caller error cannot panic mid-batch with the seqlock
        // odd or part of the batch applied.
        for op in ops {
            assert!(key_of(op) < u64::MAX, "key u64::MAX is reserved");
        }
        // Single-op batches (the Batcher's uncontended hot path) route
        // straight to their shard: no queues, no round vectors.
        if let [op] = ops {
            let shard = self.router.shard_of(key_of(op));
            self.counters[shard]
                .batch_parts
                .fetch_add(1, Ordering::Relaxed);
            let _w = read_phase(&self.write_phase);
            return vec![match op {
                BatchOp::Update(k, v) => self.shards[shard].update(*k, v.clone()),
                BatchOp::Remove(k) => self.shards[shard].remove(*k),
            }];
        }
        // FIFO of input indexes per shard, preserving per-shard op order.
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); self.shards.len()];
        for (i, op) in ops.iter().enumerate() {
            queues[self.router.shard_of(key_of(op))].push_back(i);
        }
        for (s, q) in queues.iter().enumerate() {
            self.counters[s]
                .batch_parts
                .fetch_add(q.len() as u64, Ordering::Relaxed);
        }
        let mut out: Vec<Option<V>> = vec![None; ops.len()];
        if queues.iter().all(|q| q.len() <= 1) {
            // Fast path: one op per shard — a single multi-list
            // transaction, running concurrently with other writers.
            let _w = read_phase(&self.write_phase);
            self.apply_round(&mut queues, ops, &mut out);
            return out;
        }
        // Slow path: some shard holds several keys; Leap-List plans are
        // one-op-per-list, so apply in rounds. The exclusive write-phase
        // lock keeps other writers (whose previous-value returns would
        // otherwise expose the gap between rounds) out, and the sequence
        // lock makes readers retry instead of observing it.
        let _w = write_phase(&self.write_phase);
        self.slow_batches.fetch_add(1, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::SeqCst); // -> odd: readers hold off
        let _even_again = SeqGuard(&self.seq); // -> even on exit OR panic
        while queues.iter().any(|q| !q.is_empty()) {
            self.apply_round(&mut queues, ops, &mut out);
        }
        out
    }

    /// Pops the front op of every non-empty queue and commits them as one
    /// multi-list transaction.
    fn apply_round(
        &self,
        queues: &mut [VecDeque<usize>],
        ops: &[BatchOp<V>],
        out: &mut [Option<V>],
    ) {
        let mut lists = Vec::new();
        let mut round_ops = Vec::new();
        let mut idxs = Vec::new();
        for (s, q) in queues.iter_mut().enumerate() {
            if let Some(i) = q.pop_front() {
                lists.push(&self.shards[s]);
                round_ops.push(ops[i].clone());
                idxs.push(i);
            }
        }
        for (i, r) in idxs
            .into_iter()
            .zip(LeapListLt::apply_batch(&lists, &round_ops))
        {
            out[i] = r;
        }
    }

    /// Linearizable cross-shard range query: all pairs with keys in
    /// `[lo, hi]`, ascending, from **one** consistent snapshot (one
    /// transaction spans every visited shard).
    ///
    /// Returns an empty vector when `lo > hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return Vec::new();
        }
        let (lists, ranges) = self.visit_plan(lo, hi);
        loop {
            let s1 = self.read_enter();
            let per_shard = LeapListLt::range_query_group(&lists, &ranges);
            if !self.read_exit(s1) {
                continue;
            }
            let mut merged: Vec<(u64, V)> = per_shard.into_iter().flatten().collect();
            if self.router.mode() == Partitioning::Hash {
                // Contiguous shards concatenate in order; hashed shards
                // interleave and need the merge sort.
                merged.sort_unstable_by_key(|(k, _)| *k);
            }
            return merged;
        }
    }

    /// Number of keys in `[lo, hi]` from one consistent cross-shard
    /// snapshot, without cloning values
    /// ([`LeapListLt::count_range_group`]).
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn count_range(&self, lo: u64, hi: u64) -> usize {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return 0;
        }
        let (lists, ranges) = self.visit_plan(lo, hi);
        loop {
            let s1 = self.read_enter();
            let per_shard = LeapListLt::count_range_group(&lists, &ranges);
            if self.read_exit(s1) {
                return per_shard.iter().sum();
            }
        }
    }

    /// The shards a `[lo, hi]` query must visit, with per-shard range
    /// arguments, bumping each visited shard's range counter.
    fn visit_plan(&self, lo: u64, hi: u64) -> (Vec<&LeapListLt<V>>, Vec<(u64, u64)>) {
        let visit = self.router.shards_for_range(lo, hi);
        for &s in &visit {
            ShardCounters::bump(&self.counters[s].ranges);
        }
        let lists: Vec<&LeapListLt<V>> = visit.iter().map(|&s| &self.shards[s]).collect();
        let ranges = vec![(lo, hi); lists.len()];
        (lists, ranges)
    }

    /// Approximate number of keys (exact when quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(LeapListLt::len).sum()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time statistics snapshot: per-shard op counters plus the
    /// shared domain's commit/abort counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            shards: self
                .counters
                .iter()
                .enumerate()
                .map(|(s, c)| c.snapshot(s))
                .collect(),
            stm: self.domain.stats(),
            slow_batches: self.slow_batches.load(Ordering::Relaxed),
        }
    }

    /// Seqlock read-side entry: waits out any in-flight slow batch and
    /// returns the even sequence observed.
    fn read_enter(&self) -> u64 {
        loop {
            let s = self.seq.load(Ordering::Acquire);
            if s & 1 == 0 {
                return s;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Seqlock read-side exit: true iff no slow batch intervened. The
    /// acquire fence keeps the preceding data reads from sinking below the
    /// validation load (an acquire *load* alone only orders later accesses,
    /// so on weakly-ordered hardware the load could be hoisted above the
    /// data reads and validate a stale sequence).
    fn read_exit(&self, entered: u64) -> bool {
        std::sync::atomic::fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == entered
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for LeapStore<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeapStore")
            .field("shards", &self.shards.len())
            .field("partitioning", &self.router.mode())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, mode: Partitioning) -> StoreConfig {
        StoreConfig::new(shards, mode)
            .with_key_space(1_000)
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
    }

    #[test]
    fn single_key_roundtrip_both_modes() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let store: LeapStore<u64> = LeapStore::new(cfg(4, mode));
            assert!(store.is_empty());
            assert_eq!(store.put(7, 70), None);
            assert_eq!(store.put(7, 71), Some(70));
            assert_eq!(store.get(7), Some(71));
            assert_eq!(store.delete(7), Some(71));
            assert_eq!(store.get(7), None);
            assert_eq!(store.delete(7), None);
        }
    }

    #[test]
    fn range_merges_across_shards_sorted() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let store: LeapStore<u64> = LeapStore::new(cfg(4, mode));
            for k in (0..100u64).rev() {
                store.put(k * 10, k);
            }
            let r = store.range(100, 200);
            assert_eq!(
                r,
                (10..=20).map(|k| (k * 10, k)).collect::<Vec<_>>(),
                "mode {mode:?}"
            );
            assert_eq!(store.range(5, 3), vec![]);
            assert_eq!(store.count_range(100, 200), 11);
            assert_eq!(store.len(), 100);
        }
    }

    #[test]
    fn fast_path_batch_hits_each_shard_once() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        // key_space 1000 over 4 shards: strides of 250.
        let old = store.multi_put(&[(10, 1), (260, 2), (510, 3), (760, 4)]);
        assert_eq!(old, vec![None; 4]);
        assert_eq!(store.stats().slow_batches, 0, "distinct shards → fast path");
        let old = store.multi_delete(&[10, 260, 999]);
        assert_eq!(old, vec![Some(1), Some(2), None]);
    }

    #[test]
    fn slow_path_handles_same_shard_collisions_in_order() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        // All four keys land in shard 0 (0..250).
        let old = store.multi_put(&[(1, 10), (2, 20), (1, 11), (3, 30)]);
        assert_eq!(old, vec![None, None, Some(10), None]);
        assert_eq!(store.get(1), Some(11), "later op on same key wins");
        assert_eq!(store.stats().slow_batches, 1);
        // Mixed put+delete of one key, in order: delete sees the put.
        let old = store.apply(&[BatchOp::Update(9, 90), BatchOp::Remove(9)]);
        assert_eq!(old, vec![None, Some(90)]);
        assert_eq!(store.get(9), None);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Hash));
        assert_eq!(store.multi_put(&[]), vec![]);
        assert_eq!(store.stats().slow_batches, 0);
    }

    #[test]
    fn stats_count_routed_ops() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Range));
        store.put(1, 1);
        store.put(600, 2);
        store.get(1);
        store.delete(600);
        store.range(0, 999);
        let st = store.stats();
        assert_eq!(st.shards.iter().map(|s| s.puts).sum::<u64>(), 2);
        assert_eq!(st.shards.iter().map(|s| s.gets).sum::<u64>(), 1);
        assert_eq!(st.shards.iter().map(|s| s.deletes).sum::<u64>(), 1);
        assert_eq!(st.shards.iter().map(|s| s.ranges).sum::<u64>(), 2);
        assert!(st.stm.total_commits() > 0, "ops commit through the domain");
        assert!(st.to_json().contains("\"stm\""));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn max_key_rejected_in_batches() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Hash));
        store.multi_put(&[(u64::MAX, 1)]);
    }
}
