//! The store proper: Leap-List shards on one transactional domain and an
//! epoch-versioned router deciding placement. Every batch — including one
//! mapping several keys to a single shard — commits through **one**
//! multi-list transaction (`LeapListLt::apply_batch_grouped`), and the
//! shard set itself can change online: a [`crate::Rebalancer`] migrates
//! key sub-ranges between shards in bounded cross-list transactions while
//! readers and writers proceed (see `rebalance.rs` for the protocol).

use crate::error::StoreError;
use crate::obs::{OpKind, StoreObs};
use crate::rebalance::RebalancePolicy;
use crate::router::{Partitioning, Router, WriteRoute};
use crate::stats::{ShardCounters, ShardStats, StoreStats};
use leap_fault::{FaultInjector, FaultPlan, FaultPoint};
use leap_stm::{RetryPolicy, StmDomain, StmFaultPoint, StmRecorder};
use leaplist::{BatchOp, LeapListLt, Params};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

/// Construction parameters for a [`LeapStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of Leap-List shards at construction (splits may add more).
    pub shards: usize,
    /// How keys map to shards.
    pub partitioning: Partitioning,
    /// Expected key upper bound (exclusive) — range partitioning slices
    /// `[0, key_space)` into equal strides; keys at or beyond it fall in
    /// the trailing shards (exactly the last shard whenever
    /// `key_space >= shards`). Hash partitioning ignores it.
    pub key_space: u64,
    /// Per-shard Leap-List structure parameters.
    pub params: Params,
    /// Policy driving [`LeapStore::rebalance_step`] (chunk size, split and
    /// merge thresholds).
    pub rebalance: RebalancePolicy,
    /// Whether the store carries observability instruments ([`StoreObs`]:
    /// per-op latency histograms, the STM retry histogram and the event
    /// timeline). On by default; when off the hot paths' only overhead is
    /// one `Option` branch.
    pub obs: bool,
    /// Capacity of the event timeline ring (drop-oldest on overflow, with
    /// a monotone dropped counter — never silent).
    pub obs_ring_capacity: usize,
    /// Per-thread sampling period shared by the `get` latency histogram
    /// and leap-trace head sampling: 1 op in `sample_period` is elected
    /// (`1` = every op, `0` = never). Default
    /// [`crate::obs::GET_SAMPLE_PERIOD`].
    pub sample_period: u32,
    /// Arms leap-trace per-op spans ([`leap_obs::TraceConfig`]): phase
    /// breakdowns, STM abort causes per attempt and
    /// migration-interference marks, head-sampled at `sample_period`
    /// (unless the config overrides it) plus tail capture above the SLO
    /// threshold. `None` (the default) keeps tracing entirely off the hot
    /// paths.
    pub trace: Option<leap_obs::TraceConfig>,
    /// Deterministic fault-injection schedule ([`leap_fault::FaultPlan`]),
    /// `None` in production. When set, the store builds one
    /// [`FaultInjector`] shared by every injection point (STM
    /// commit/validate, migration chunks, batcher drains, rebalancer
    /// ticks); when unset the hot paths carry only an `Option` branch.
    pub faults: Option<FaultPlan>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 8,
            partitioning: Partitioning::Hash,
            key_space: u64::MAX,
            params: Params::default(),
            rebalance: RebalancePolicy::default(),
            obs: true,
            obs_ring_capacity: leap_obs::DEFAULT_RING_CAPACITY,
            sample_period: crate::obs::GET_SAMPLE_PERIOD,
            trace: None,
            faults: None,
        }
    }
}

impl StoreConfig {
    /// A config with the given shard count and partitioning mode.
    pub fn new(shards: usize, partitioning: Partitioning) -> Self {
        StoreConfig {
            shards,
            partitioning,
            ..Default::default()
        }
    }

    /// Sets the expected key upper bound (exclusive).
    pub fn with_key_space(mut self, key_space: u64) -> Self {
        self.key_space = key_space;
        self
    }

    /// Sets the per-shard Leap-List parameters.
    pub fn with_params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Sets the rebalancing policy (see [`RebalancePolicy`]). The policy
    /// only acts when [`LeapStore::rebalance_step`] is driven — explicitly
    /// or by a [`crate::Rebalancer`] thread.
    pub fn with_rebalancing(mut self, rebalance: RebalancePolicy) -> Self {
        self.rebalance = rebalance;
        self
    }

    /// Enables or disables observability instruments (default: enabled).
    pub fn with_obs(mut self, obs: bool) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the event-timeline ring capacity (default
    /// [`leap_obs::DEFAULT_RING_CAPACITY`]). Tiny capacities are useful in
    /// tests that exercise the drop-oldest overflow contract.
    pub fn with_obs_ring_capacity(mut self, capacity: usize) -> Self {
        self.obs_ring_capacity = capacity;
        self
    }

    /// Sets the shared sampling period for the `get` latency histogram
    /// and trace head sampling (`1` = every op, `0` = never; default
    /// [`crate::obs::GET_SAMPLE_PERIOD`]).
    pub fn with_sample_period(mut self, period: u32) -> Self {
        self.sample_period = period;
        self
    }

    /// Arms leap-trace per-op spans (see [`StoreConfig::trace`]).
    pub fn with_tracing(mut self, trace: leap_obs::TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Arms deterministic fault injection with `plan` (chaos tests only;
    /// see [`leap_fault`]). The same seed always yields the same fire
    /// schedule at every injection point.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }
}

/// One multi-shard read plan: the lists to visit in one snapshot
/// transaction, their (clipped) per-list key ranges, and whether the
/// merged result needs sorting.
pub(crate) type VisitPlan<V> = (Vec<Arc<LeapListLt<V>>>, Vec<(u64, u64)>, bool);

/// One shard slot: the Leap-List and its op counters, kept side by side
/// so the hot paths reach both with a single lock acquisition.
struct ShardSlot<V> {
    list: Arc<LeapListLt<V>>,
    counters: Arc<ShardCounters>,
}

/// A sharded, concurrent range-store over Leap-List shards sharing one
/// transactional domain, with **online resharding**.
///
/// * [`LeapStore::get`] / [`LeapStore::put`] / [`LeapStore::delete`] —
///   single-key operations routed to one shard (or, mid-migration, to the
///   source/destination pair as one cross-list transaction).
/// * [`LeapStore::multi_put`] / [`LeapStore::apply`] — cross-shard batches
///   applied as **one linearizable action**.
/// * [`LeapStore::range`] — a cross-shard range query assembled from
///   per-shard snapshots taken inside **one** transaction
///   ([`LeapListLt::range_query_group`]), so the combined result is a
///   single consistent snapshot: it can never observe part of a batch —
///   or half of a shard migration.
/// * [`LeapStore::scan`] — a paged cursor over a range: each page is one
///   bounded linearizable transaction with a resume key, so scanning a
///   million keys never materializes them in one transaction.
/// * [`LeapStore::scan_snapshot`] — a paged cursor whose every page reads
///   at **one** pinned commit timestamp via the shards' version bundles:
///   the whole scan is one consistent snapshot, and pages never retry
///   against concurrent commits or migrations.
/// * [`LeapStore::split_shard`] / [`LeapStore::merge_shards`] /
///   [`LeapStore::rebalance_step`] — online shard migration (range
///   partitioning), driven deterministically or by a background
///   [`crate::Rebalancer`].
///
/// # Batch atomicity
///
/// Every batch commits through a single multi-list transaction
/// ([`LeapListLt::apply_batch_grouped`]): ops are grouped per shard in
/// input order, each shard's group becomes one chain-rebuild plan, and one
/// locking transaction validates and acquires every affected chain across
/// every shard. A batch mapping two or more keys to one shard therefore
/// costs the same protocol as the one-key-per-shard case — there is no
/// seqlock, no writer-phase lock and no multi-round fallback; readers and
/// other writers proceed concurrently throughout.
///
/// # Example
///
/// ```
/// use leap_store::{LeapStore, Partitioning, StoreConfig};
///
/// let store: LeapStore<u64> =
///     LeapStore::new(StoreConfig::new(4, Partitioning::Range).with_key_space(1000));
/// store.put(10, 100);
/// store.put(600, 900);
/// // Atomic across shards:
/// store.multi_put(&[(20, 1), (400, 2), (800, 3)]);
/// assert_eq!(store.get(400), Some(2));
/// assert_eq!(store.range(0, 999).len(), 5);
/// ```
pub struct LeapStore<V> {
    /// Shard slots; grows when a split allocates a new slot, never
    /// shrinks (merged-away slots are recycled through `free_slots`).
    slots: RwLock<Vec<ShardSlot<V>>>,
    router: Router,
    domain: Arc<StmDomain>,
    params: Params,
    pub(crate) policy: RebalancePolicy,
    /// Slots emptied by completed merges, reusable by the next split.
    pub(crate) free_slots: Mutex<Vec<usize>>,
    /// Serializes rebalance steps and split/merge initiation.
    pub(crate) step_lock: Mutex<()>,
    /// Round-robin cursor over the in-flight migration set (the drain
    /// picks `rr % inflight.len()` each step).
    pub(crate) rebalance_rr: AtomicUsize,
    /// Pairs created by recently completed splits with the completion
    /// count at the time, shielded from immediate auto-merging (policy
    /// hysteresis; the shield expires after later completions); newest
    /// first, capped.
    pub(crate) recent_splits: Mutex<VecDeque<((usize, usize), u64)>>,
    /// Per-slot op-rate state for the policy's load score: the op totals
    /// seen at the last census and the decaying average of the deltas.
    op_census: Mutex<(Vec<u64>, Vec<f64>)>,
    /// Batches that mapped at least two keys to one shard — the load that
    /// the seed's seqlock slow path serialized and that now commits in a
    /// single transaction.
    collision_batches: AtomicU64,
    pub(crate) migrations_completed: AtomicU64,
    /// Migrations resolved by rollback ([`LeapStore::abort_migration`] or
    /// the stuck-migration watchdog) rather than by completing forward.
    pub(crate) aborted_migrations: AtomicU64,
    /// Operations refused by batcher admission control or dropped by an
    /// injected drain fault (each one surfaced to its caller as
    /// [`StoreError::Overloaded`], never silently).
    pub(crate) shed_ops: AtomicU64,
    /// Snapshot-isolated scans started ([`LeapStore::scan_snapshot`]
    /// cursors pinned).
    pub(crate) snapshot_scans: AtomicU64,
    /// Deterministic fault injector shared by every injection point;
    /// `None` (a single branch on the hot paths) in production.
    pub(crate) faults: Option<Arc<FaultInjector>>,
    /// Observability instruments ([`StoreConfig::obs`], on by default):
    /// per-op latency histograms, the STM retry histogram and the
    /// migration/drain event timeline.
    obs: Option<Arc<StoreObs>>,
    /// Shared `get`-histogram / trace head-sampling period
    /// ([`StoreConfig::sample_period`]).
    sample_period: u32,
    /// leap-trace span layer ([`StoreConfig::trace`]); `None` keeps every
    /// op boundary at one `Option` branch.
    tracer: Option<Arc<leap_obs::Tracer>>,
}

impl<V: Clone + Send + Sync + 'static> LeapStore<V> {
    /// Creates an empty store: `config.shards` Leap-Lists sharing one
    /// fresh transactional domain.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` or `config.key_space` is zero, or if
    /// `config.rebalance` fails [`RebalancePolicy::validate`] — a
    /// thrash-prone policy (e.g. overlapping split/merge thresholds) is
    /// rejected at construction rather than livelocking
    /// [`LeapStore::rebalance_until_idle`] later.
    pub fn new(config: StoreConfig) -> Self {
        if let Err(e) = config.rebalance.validate() {
            // INVARIANT: documented constructor panic — a thrash-prone
            // policy must fail loudly at build time, not livelock later.
            panic!("rejected rebalance policy: {e}");
        }
        // The router owns the shard-count validation; build it first so a
        // zero-shard config panics with the router's diagnostic.
        let router = Router::new(config.partitioning, config.shards, config.key_space);
        let slots: Vec<ShardSlot<V>> = LeapListLt::group(config.shards, config.params.clone())
            .into_iter()
            .map(|list| ShardSlot {
                list: Arc::new(list),
                counters: Arc::new(ShardCounters::default()),
            })
            .collect();
        let domain = slots
            .first()
            // INVARIANT: Router::new panicked on shards == 0 above.
            .expect("router rejected shards == 0 above")
            .list
            .domain()
            .clone();
        let obs = config.obs.then(|| {
            let obs = Arc::new(StoreObs::new(config.obs_ring_capacity));
            // The domain reports attempts-per-commit straight into the
            // store's retry histogram. A domain records to at most one
            // recorder for its lifetime; only the first store sharing a
            // domain wires one (set_recorder is first-wins).
            domain.set_recorder(StmRecorder::new(obs.txn_retries.clone()));
            obs
        });
        let tracer = config
            .trace
            .as_ref()
            .map(|t| Arc::new(leap_obs::Tracer::from_config(t, config.sample_period)));
        let faults = config.faults.map(|plan| Arc::new(FaultInjector::new(plan)));
        if let Some(f) = &faults {
            // Route the domain's STM fault points through the shared
            // injector so one seeded plan drives every layer.
            // set_fault_hook is first-wins, like set_recorder: only the
            // first store sharing a domain arms it.
            let hook = f.clone();
            domain.set_fault_hook(Arc::new(move |point| match point {
                StmFaultPoint::Commit => hook.should_fire(FaultPoint::StmCommit),
                StmFaultPoint::Validate => hook.should_fire(FaultPoint::StmValidate),
            }));
        }
        LeapStore {
            slots: RwLock::new(slots),
            router,
            domain,
            params: config.params,
            policy: config.rebalance,
            free_slots: Mutex::new(Vec::new()),
            step_lock: Mutex::new(()),
            rebalance_rr: AtomicUsize::new(0),
            recent_splits: Mutex::new(VecDeque::new()),
            op_census: Mutex::new((Vec::new(), Vec::new())),
            collision_batches: AtomicU64::new(0),
            migrations_completed: AtomicU64::new(0),
            aborted_migrations: AtomicU64::new(0),
            shed_ops: AtomicU64::new(0),
            snapshot_scans: AtomicU64::new(0),
            faults,
            obs,
            sample_period: config.sample_period,
            tracer,
        }
    }

    /// The fault injector, when the store was built
    /// [`StoreConfig::with_faults`] — chaos tests read per-point
    /// visit/fire tallies off it.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The store's observability instruments, if enabled
    /// ([`StoreConfig::obs`]). The registry behind it renders the full
    /// series set as JSON or Prometheus text.
    pub fn obs(&self) -> Option<&Arc<StoreObs>> {
        self.obs.as_ref()
    }

    /// The leap-trace span layer, if armed ([`StoreConfig::with_tracing`]).
    /// Snapshot it for the retained spans, their Chrome trace-event export
    /// and the drop counter.
    pub fn tracer(&self) -> Option<&Arc<leap_obs::Tracer>> {
        self.tracer.as_ref()
    }

    /// Begins a leap-trace span for a public op when tracing is armed; the
    /// returned guard measures, applies the retention rule and publishes
    /// on drop. Declare it before doing any work so it brackets the whole
    /// op. The routed shard is only computed when a tracer is armed.
    #[inline]
    pub(crate) fn span_keyed(&self, kind: leap_obs::OpClass, key: u64) -> leap_obs::SpanGuard<'_> {
        match &self.tracer {
            Some(t) => t.begin(kind, key, self.router.shard_of(key) as u32),
            None => leap_obs::SpanGuard::inactive(),
        }
    }

    /// Appends one event to the timeline when observability is on.
    #[inline]
    pub(crate) fn emit(&self, kind: leap_obs::EventKind) {
        if let Some(obs) = &self.obs {
            obs.events().push(kind);
        }
    }

    /// Records `ops` operations shed by batcher admission control (or an
    /// injected drain fault) against the store's counter and timeline.
    pub(crate) fn note_shed(&self, ops: u64, queued: usize) {
        // ORDERING: monotonic stat counter; no publication rides on it.
        self.shed_ops.fetch_add(ops, Ordering::Relaxed);
        self.emit(leap_obs::EventKind::Shed {
            ops,
            queued: queued as u64,
        });
    }

    /// Times `f` into the `kind` histogram when observability is on.
    #[inline]
    fn timed<T>(&self, kind: OpKind, f: impl FnOnce() -> T) -> T {
        match &self.obs {
            Some(obs) => {
                let start = Instant::now();
                let r = f();
                obs.record_op(kind, start.elapsed().as_nanos() as u64);
                r
            }
            None => f(),
        }
    }

    /// The router (placement inspection: epochs, intervals, migrations).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Times `f` into the active leap-trace span's commit phase — the
    /// shard transaction(s) an op runs, retries included. One
    /// thread-local check when no span is active.
    #[inline]
    fn commit_phase<T>(f: impl FnOnce() -> T) -> T {
        if leap_obs::trace::in_span() {
            let start = Instant::now();
            let r = f();
            leap_obs::trace::note_commit_phase(start.elapsed().as_nanos() as u64);
            r
        } else {
            f()
        }
    }

    /// Number of shard slots (including any emptied by merges and not yet
    /// reused by splits).
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// Read access to one shard's Leap-List (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard(&self, s: usize) -> Arc<LeapListLt<V>> {
        self.list(s)
    }

    /// The shared transactional domain.
    pub fn domain(&self) -> &Arc<StmDomain> {
        &self.domain
    }

    fn slots_read(&self) -> std::sync::RwLockReadGuard<'_, Vec<ShardSlot<V>>> {
        self.slots.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub(crate) fn list(&self, s: usize) -> Arc<LeapListLt<V>> {
        self.slots_read()[s].list.clone()
    }

    /// Bumps `bump` on slot `s`'s counters and returns its list — one
    /// lock acquisition for the single-key hot paths.
    fn routed(&self, s: usize, bump: impl FnOnce(&ShardCounters)) -> Arc<LeapListLt<V>> {
        let slots = self.slots_read();
        bump(&slots[s].counters);
        slots[s].list.clone()
    }

    /// Allocates a shard slot for a split destination: reuses a slot a
    /// completed merge emptied, or grows the slot vector (and the
    /// router's slot count) by one. Returns the slot index.
    pub(crate) fn allocate_slot(&self) -> usize {
        if let Some(s) = self
            .free_slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
        {
            debug_assert!(self.list(s).is_empty(), "free slots must be drained");
            return s;
        }
        let mut slots = self.slots.write().unwrap_or_else(PoisonError::into_inner);
        let slot = self.router.add_slot();
        debug_assert_eq!(slot, slots.len(), "router and slot vector in lock step");
        slots.push(ShardSlot {
            list: Arc::new(LeapListLt::with_domain(
                self.params.clone(),
                self.domain.clone(),
            )),
            counters: Arc::new(ShardCounters::default()),
        });
        slot
    }

    /// The per-slot op-rate signal for the rebalance policy: a decaying
    /// average (halved each census, then fed the new delta) of the
    /// operations each slot served since the previous census.
    pub(crate) fn op_rate_census(&self) -> Vec<f64> {
        let slots = self.slots_read();
        let mut census = self
            .op_census
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let (last, ema) = &mut *census;
        last.resize(slots.len(), 0);
        ema.resize(slots.len(), 0.0);
        for (s, slot) in slots.iter().enumerate() {
            let total = slot.counters.snapshot(s, 0, true).total_ops();
            let delta = total.saturating_sub(last[s]);
            last[s] = total;
            ema[s] = ema[s] / 2.0 + delta as f64;
        }
        ema.clone()
    }

    /// Point lookup. During a migration of the key's sub-range the lookup
    /// consults source-then-destination; a miss re-checks that no
    /// migration **of that key's range** began or completed mid-lookup
    /// (and retries if one did), so the result is always explained by
    /// some linearization. Migrations of disjoint ranges never force a
    /// retry.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn get(&self, key: u64) -> Option<V> {
        // Point gets are tens of nanoseconds; timing every one would
        // dominate the op. Sample 1 in `sample_period` per thread — and
        // only a sampled get begins a trace span (the span's own two
        // `Instant` reads would otherwise blow the overhead budget at
        // point-get scale); the shared tick already elected it, so the
        // span is marked head-sampled directly.
        match &self.obs {
            Some(obs) if crate::obs::sample_get(self.sample_period) => {
                let _span = match &self.tracer {
                    Some(t) => t.begin_elected(
                        leap_obs::OpClass::Get,
                        key,
                        self.router.shard_of(key) as u32,
                    ),
                    None => leap_obs::SpanGuard::inactive(),
                };
                let start = Instant::now();
                let r = self.get_inner(key);
                obs.record_op(OpKind::Get, start.elapsed().as_nanos() as u64);
                r
            }
            _ => self.get_inner(key),
        }
    }

    fn get_inner(&self, key: u64) -> Option<V> {
        loop {
            let stamp = self.router.overlay_stamp(key, key);
            let mut overlay_id = 0;
            let res = match self.router.overlay_for(key) {
                Some(m) => {
                    overlay_id = m.id;
                    let (src, dst) = {
                        let slots = self.slots_read();
                        ShardCounters::bump(&slots[m.src].counters.gets);
                        (slots[m.src].list.clone(), slots[m.dst].list.clone())
                    };
                    // Keys move atomically in one direction: src -> dst
                    // while draining, dst -> src while a rollback sweeps
                    // them back. Probing the from-side first means a miss
                    // there reads "absent or already moved", and the
                    // to-side lookup happens after — so a present key is
                    // always found. A direction flip mid-lookup changes
                    // the overlay stamp (the aborting bit is part of it),
                    // which the caller's stamp re-check turns into a
                    // retry.
                    if m.aborting.load(Ordering::Acquire) {
                        dst.lookup(key).or_else(|| src.lookup(key))
                    } else {
                        src.lookup(key).or_else(|| dst.lookup(key))
                    }
                }
                None => {
                    let s = self.router.shard_of(key);
                    self.routed(s, |c| ShardCounters::bump(&c.gets)).lookup(key)
                }
            };
            if res.is_some() || self.router.overlay_stamp(key, key) == stamp {
                return res;
            }
            // The overlay set changed under the lookup: annotate which
            // migration forced the retry before going around again.
            leap_obs::trace::note_stamp_retry(overlay_id);
        }
    }

    /// Inserts or updates `key -> value`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn put(&self, key: u64, value: V) -> Option<V> {
        let _span = self.span_keyed(leap_obs::OpClass::Put, key);
        self.timed(OpKind::Put, || self.put_inner(key, value))
    }

    fn put_inner(&self, key: u64, value: V) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let _w = self.router.enter_write();
        match self.router.write_route(key) {
            WriteRoute::Direct(s) => {
                // No commit_phase here: a direct put is one transaction
                // with no queue/combine/lock around it, so the phase
                // would re-measure what the span total already says —
                // two clock reads on the hottest write path for nothing.
                // Phases are timed where they genuinely diverge (batched
                // and migrating ops).
                let list = self.routed(s, |c| ShardCounters::bump(&c.puts));
                list.update(key, value)
            }
            WriteRoute::Migrating(m) => {
                let (src, dst) = {
                    let slots = self.slots_read();
                    ShardCounters::bump(&slots[m.src].counters.puts);
                    (slots[m.src].list.clone(), slots[m.dst].list.clone())
                };
                // One cross-list transaction removes the from-side copy
                // and writes the to-side: the key has a single home from
                // here on, and the chunk mover / rollback sweeper (which
                // holds the same lock) can never clobber this write with a
                // stale value. The direction follows the overlay's state —
                // dst-ward while draining, src-ward while a rollback is
                // sweeping keys back — checked under the lock, which is
                // exactly where the aborting flag flips.
                let traced = leap_obs::trace::in_span();
                let lock_requested = traced.then(Instant::now);
                let _l = m.write_lock.lock().unwrap_or_else(PoisonError::into_inner);
                let lock_acquired = traced.then(Instant::now);
                let rm = [BatchOp::Remove(key)];
                let up = [BatchOp::Update(key, value)];
                let (from, to) = if m.aborting.load(Ordering::Acquire) {
                    (&*dst, &*src)
                } else {
                    (&*src, &*dst)
                };
                let mut res = Self::commit_phase(|| {
                    LeapListLt::apply_batch_grouped(&[from, to], &[&rm, &up])
                });
                // INVARIANT: each group above holds exactly one op, and
                // apply_batch_grouped returns one result per op.
                let to_prev = res[1].pop().expect("one op in to group");
                // INVARIANT: as above — one op, one result.
                let from_prev = res[0].pop().expect("one op in from group");
                if let (Some(req), Some(acq)) = (lock_requested, lock_acquired) {
                    leap_obs::trace::note_overlay_lock(
                        m.id,
                        acq.saturating_duration_since(req).as_nanos() as u64,
                        acq.elapsed().as_nanos() as u64,
                    );
                }
                from_prev.or(to_prev)
            }
        }
    }

    /// Removes `key`; returns its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn delete(&self, key: u64) -> Option<V> {
        let _span = self.span_keyed(leap_obs::OpClass::Delete, key);
        self.timed(OpKind::Delete, || self.delete_inner(key))
    }

    fn delete_inner(&self, key: u64) -> Option<V> {
        assert!(key < u64::MAX, "key u64::MAX is reserved");
        let _w = self.router.enter_write();
        match self.router.write_route(key) {
            WriteRoute::Direct(s) => {
                // Unphased for the same reason as the direct put arm.
                let list = self.routed(s, |c| ShardCounters::bump(&c.deletes));
                list.remove(key)
            }
            WriteRoute::Migrating(m) => {
                let (src, dst) = {
                    let slots = self.slots_read();
                    ShardCounters::bump(&slots[m.src].counters.deletes);
                    (slots[m.src].list.clone(), slots[m.dst].list.clone())
                };
                // Deletes are direction-agnostic: removing the key from
                // both lists in one transaction is correct whether the
                // overlay is draining or rolling back (at most one list
                // holds it, by the migration invariant).
                let traced = leap_obs::trace::in_span();
                let lock_requested = traced.then(Instant::now);
                let _l = m.write_lock.lock().unwrap_or_else(PoisonError::into_inner);
                let lock_acquired = traced.then(Instant::now);
                let rm = [BatchOp::Remove(key)];
                let mut res = Self::commit_phase(|| {
                    LeapListLt::apply_batch_grouped(&[&*src, &*dst], &[&rm, &rm])
                });
                // INVARIANT: each group above holds exactly one op, and
                // apply_batch_grouped returns one result per op.
                let dst_prev = res[1].pop().expect("one op in dst group");
                // INVARIANT: as above — one op, one result.
                let src_prev = res[0].pop().expect("one op in src group");
                if let (Some(req), Some(acq)) = (lock_requested, lock_acquired) {
                    leap_obs::trace::note_overlay_lock(
                        m.id,
                        acq.saturating_duration_since(req).as_nanos() as u64,
                        acq.elapsed().as_nanos() as u64,
                    );
                }
                src_prev.or(dst_prev)
            }
        }
    }

    /// Inserts all `(key, value)` pairs as **one linearizable action**
    /// across their shards; returns previous values in input order.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn multi_put(&self, entries: &[(u64, V)]) -> Vec<Option<V>> {
        let ops: Vec<BatchOp<V>> = entries
            .iter()
            .map(|(k, v)| BatchOp::Update(*k, v.clone()))
            .collect();
        self.apply(&ops)
    }

    /// Removes all `keys` as one linearizable action; returns the removed
    /// values in input order.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn multi_delete(&self, keys: &[u64]) -> Vec<Option<V>> {
        let ops: Vec<BatchOp<V>> = keys.iter().map(|k| BatchOp::Remove(*k)).collect();
        self.apply(&ops)
    }

    /// Applies a mixed put/delete batch as one linearizable action;
    /// returns previous values in input order. Ops sharing a shard apply
    /// in input order within the single commit (so a batch may put and
    /// then delete the same key). Ops on migrating keys re-group onto
    /// **whichever** in-flight migration's source/destination pair covers
    /// them — a batch may straddle several disjoint migrations and still
    /// commits as one transaction.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn apply(&self, ops: &[BatchOp<V>]) -> Vec<Option<V>> {
        let _span = self.span_keyed(
            leap_obs::OpClass::Apply,
            ops.first().map(Self::key_of).unwrap_or(0),
        );
        self.timed(OpKind::Apply, || self.apply_inner(ops))
    }

    fn apply_inner(&self, ops: &[BatchOp<V>]) -> Vec<Option<V>> {
        if ops.is_empty() {
            return Vec::new();
        }
        // Validate every key before touching any shard, so a documented
        // caller error cannot panic with part of the batch planned.
        for op in ops {
            assert!(Self::key_of(op) < u64::MAX, "key u64::MAX is reserved");
        }
        let _w = self.router.enter_write();
        // The overlay *set* is stable while we hold the writer gate, but
        // an overlay's drain direction can flip (a rollback setting its
        // aborting flag) between planning and locking; `try_apply`
        // detects the flip after acquiring the locks and asks for a
        // replan. At most one retry per concurrent abort — the flag only
        // ever flips once per migration.
        loop {
            if let Some(res) = self.try_apply(ops) {
                return res;
            }
        }
    }

    fn key_of(op: &BatchOp<V>) -> u64 {
        match op {
            BatchOp::Update(k, _) => *k,
            BatchOp::Remove(k) => *k,
        }
    }

    /// One planning-and-commit attempt for `apply_inner`; returns `None`
    /// when an overlay's drain direction flipped between planning and
    /// locking (the plan's group directions are stale — replan).
    fn try_apply(&self, ops: &[BatchOp<V>]) -> Option<Vec<Option<V>>> {
        // The overlay set, sorted by lo (disjoint ranges, so at most one
        // can cover any key).
        let migs = self.router.overlay_states();
        let overlay_of = |k: u64| migs.iter().find(|m| (m.lo..=m.hi).contains(&k));
        // Single-op batches (the Batcher's uncontended hot path) route
        // straight to their shard: no grouping vectors.
        if let [op] = ops {
            if overlay_of(Self::key_of(op)).is_none() {
                let shard = self.router.shard_of(Self::key_of(op));
                let list = self.routed(shard, |c| {
                    // ORDERING: monotonic stat counter; no publication rides on it.
                    c.batch_parts.fetch_add(1, Ordering::Relaxed);
                });
                return Some(vec![match op {
                    BatchOp::Update(k, v) => list.update(*k, v.clone()),
                    BatchOp::Remove(k) => list.remove(*k),
                }]);
            }
        }
        // Each overlay's drain direction at planning time; re-checked
        // under the locks below.
        let flags: Vec<bool> = migs
            .iter()
            .map(|m| m.aborting.load(Ordering::Acquire))
            .collect();
        // Group ops per shard slot, preserving input order within each
        // group. A migrating key contributes a Remove to the overlay's
        // from-side group (source while draining, destination while
        // rolling back) and its op to the to-side group: the batch stays
        // one transaction, and the key's previous value is whichever of
        // the two groups saw it (exactly one can, by the migration
        // invariant).
        let slots = self.shards();
        let mut groups: Vec<Vec<BatchOp<V>>> = vec![Vec::new(); slots];
        // Where each op's previous value comes from:
        // (slot, index) plus, for migrating keys, the from-side remove.
        struct OpSource {
            slot: usize,
            idx: usize,
            src: Option<(usize, usize)>,
        }
        let mut sources: Vec<OpSource> = Vec::with_capacity(ops.len());
        // Overlays this batch must serialize with (indices into `migs`).
        let mut locked: Vec<bool> = vec![false; migs.len()];
        for op in ops {
            let k = Self::key_of(op);
            if let Some(i) = migs.iter().position(|m| (m.lo..=m.hi).contains(&k)) {
                let m = &migs[i];
                locked[i] = true;
                let (from, to) = if flags[i] {
                    (m.dst, m.src)
                } else {
                    (m.src, m.dst)
                };
                groups[from].push(BatchOp::Remove(k));
                let src = Some((from, groups[from].len() - 1));
                groups[to].push(op.clone());
                sources.push(OpSource {
                    slot: to,
                    idx: groups[to].len() - 1,
                    src,
                });
            } else {
                let s = self.router.shard_of(k);
                groups[s].push(op.clone());
                sources.push(OpSource {
                    slot: s,
                    idx: groups[s].len() - 1,
                    src: None,
                });
            }
        }
        // Also serialize with any overlay whose destination this batch
        // writes directly (conservative, as the single-overlay code did).
        for (i, m) in migs.iter().enumerate() {
            if !locked[i] && sources.iter().any(|s| s.slot == m.dst) {
                locked[i] = true;
            }
        }
        // One multi-list transaction over every touched shard, regardless
        // of key -> shard collisions. Batches touching migrating ranges
        // serialize against each chunk mover (see `put`), taking every
        // involved overlay's lock in ascending key order — the one total
        // order all multi-overlay writers share, so they cannot deadlock.
        // Lock order: migration locks strictly before the slot-vector
        // read lock.
        let _locks: Vec<MutexGuard<'_, ()>> = migs
            .iter()
            .zip(&locked)
            .filter(|(_, l)| **l)
            .map(|(m, _)| m.write_lock.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        // The aborting flag only flips while holding the overlay's write
        // lock, so this check (now that we hold the locks) is exact: a
        // stale direction means the groups above point the wrong way.
        if migs
            .iter()
            .zip(&flags)
            .zip(&locked)
            .any(|((m, f), l)| *l && m.aborting.load(Ordering::Acquire) != *f)
        {
            return None;
        }
        {
            let slots_guard = self.slots_read();
            for (s, g) in groups.iter().enumerate() {
                if !g.is_empty() {
                    slots_guard[s]
                        .counters
                        .batch_parts
                        // ORDERING: monotonic stat counter; no publication rides on it.
                        .fetch_add(g.len() as u64, Ordering::Relaxed);
                }
            }
        }
        if groups.iter().any(|g| g.len() >= 2) {
            // ORDERING: monotonic stat counter; no publication rides on it.
            self.collision_batches.fetch_add(1, Ordering::Relaxed);
        }
        let slots_guard = self.slots_read();
        let mut lists: Vec<&LeapListLt<V>> = Vec::new();
        let mut shard_ops: Vec<&[BatchOp<V>]> = Vec::new();
        // results_of[slot] = index into `results` for that slot's group.
        let mut results_of: Vec<Option<usize>> = vec![None; slots];
        for (s, g) in groups.iter().enumerate() {
            if !g.is_empty() {
                results_of[s] = Some(lists.len());
                lists.push(&slots_guard[s].list);
                shard_ops.push(g);
            }
        }
        let results = LeapListLt::apply_batch_grouped(&lists, &shard_ops);
        Some(
            sources
                .iter()
                .map(|src| {
                    // INVARIANT: every op source was assigned a group when
                    // the plan was built; `results_of` mirrors that plan.
                    let own = results[results_of[src.slot].expect("op slot has a group")][src.idx]
                        .clone();
                    match src.src {
                        None => own,
                        Some((s, i)) => {
                            // INVARIANT: as above — the migration source
                            // slot was planned into a group too.
                            let g = results_of[s].expect("src slot has a group");
                            let removed = results[g][i].clone();
                            removed.or(own)
                        }
                    }
                })
                .collect(),
        )
    }

    /// Runs `f` under a thread-local STM retry budget
    /// ([`leap_stm::with_retry_budget`]); on exhaustion records the
    /// timeout (domain counter + [`leap_obs::EventKind::TxnDeadline`])
    /// and surfaces [`StoreError::Timeout`]. The store is unchanged by
    /// the failed attempt — every aborted transaction rolled back.
    fn bounded<R>(&self, policy: RetryPolicy, f: impl FnOnce() -> R) -> Result<R, StoreError> {
        match leap_stm::with_retry_budget(policy, f) {
            Ok(r) => Ok(r),
            Err(t) => {
                self.domain.record_timeout();
                self.emit(leap_obs::EventKind::TxnDeadline {
                    attempts: t.attempts,
                });
                // The *_within wrappers own the op's span (the inner op's
                // begin was nested, hence inert), so the timeout marks an
                // open span and the failure is always retained.
                leap_obs::trace::note_outcome(leap_obs::OpOutcome::Timeout);
                Err(t.into())
            }
        }
    }

    /// [`LeapStore::get`] under a bounded retry budget: gives up with
    /// [`StoreError::Timeout`] instead of retrying forever when the
    /// domain cannot commit (pathological contention, injected faults).
    ///
    /// # Errors
    ///
    /// [`StoreError::Timeout`] once `policy` is exhausted.
    pub fn get_within(&self, key: u64, policy: RetryPolicy) -> Result<Option<V>, StoreError> {
        let _span = self.span_keyed(leap_obs::OpClass::Get, key);
        self.bounded(policy, || self.get(key))
    }

    /// [`LeapStore::put`] under a bounded retry budget — graceful
    /// degradation instead of livelock: the caller gets a typed
    /// [`StoreError::Timeout`] and the store is untouched by the failed
    /// attempt.
    ///
    /// # Errors
    ///
    /// [`StoreError::Timeout`] once `policy` is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn put_within(
        &self,
        key: u64,
        value: V,
        policy: RetryPolicy,
    ) -> Result<Option<V>, StoreError> {
        let _span = self.span_keyed(leap_obs::OpClass::Put, key);
        self.bounded(policy, || self.put(key, value))
    }

    /// [`LeapStore::delete`] under a bounded retry budget; see
    /// [`LeapStore::put_within`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Timeout`] once `policy` is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn delete_within(&self, key: u64, policy: RetryPolicy) -> Result<Option<V>, StoreError> {
        let _span = self.span_keyed(leap_obs::OpClass::Delete, key);
        self.bounded(policy, || self.delete(key))
    }

    /// [`LeapStore::range`] under a bounded retry budget; see
    /// [`LeapStore::put_within`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Timeout`] once `policy` is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range_within(
        &self,
        lo: u64,
        hi: u64,
        policy: RetryPolicy,
    ) -> Result<Vec<(u64, V)>, StoreError> {
        let _span = self.span_keyed(leap_obs::OpClass::Range, lo);
        self.bounded(policy, || self.range(lo, hi))
    }

    /// [`LeapStore::apply`] under a bounded retry budget; see
    /// [`LeapStore::put_within`]. The batch either commits whole or not
    /// at all — a timeout never applies a prefix.
    ///
    /// # Errors
    ///
    /// [`StoreError::Timeout`] once `policy` is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn apply_within(
        &self,
        ops: &[BatchOp<V>],
        policy: RetryPolicy,
    ) -> Result<Vec<Option<V>>, StoreError> {
        let _span = self.span_keyed(
            leap_obs::OpClass::Apply,
            ops.first().map(Self::key_of).unwrap_or(0),
        );
        self.bounded(policy, || self.apply(ops))
    }

    /// Linearizable cross-shard range query: all pairs with keys in
    /// `[lo, hi]`, ascending, from **one** consistent snapshot (one
    /// transaction spans every visited shard — including both sides of an
    /// in-flight migration).
    ///
    /// Returns an empty vector when `lo > hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        let _span = self.span_keyed(leap_obs::OpClass::Range, lo);
        self.timed(OpKind::Range, || self.range_inner(lo, hi))
    }

    fn range_inner(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return Vec::new();
        }
        loop {
            let stamp = self.router.overlay_stamp(lo, hi);
            let (lists, ranges, sort) = self.visit_plan(lo, hi);
            let refs: Vec<&LeapListLt<V>> = lists.iter().map(|l| &**l).collect();
            let per_shard = LeapListLt::range_query_group(&refs, &ranges);
            if self.router.overlay_stamp(lo, hi) != stamp {
                // A migration overlapping [lo, hi] began or completed
                // mid-plan: the visited list set may not have been
                // exhaustive. Retry. (Disjoint migrations never trip
                // this — their flips cannot move this range's keys.)
                leap_obs::trace::note_stamp_retry(0);
                continue;
            }
            let mut merged: Vec<(u64, V)> = per_shard.into_iter().flatten().collect();
            if sort {
                // Contiguous shards concatenate in key order; hashed
                // shards (and migration overlays) interleave.
                merged.sort_unstable_by_key(|(k, _)| *k);
            }
            return merged;
        }
    }

    /// One bounded page of `[lo, hi]`: the first at-most-`limit` pairs, in
    /// one linearizable transaction. The engine under [`LeapStore::scan`].
    pub(crate) fn range_page_merged(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, V)> {
        let _span = self.span_keyed(leap_obs::OpClass::ScanPage, lo);
        self.timed(OpKind::ScanPage, || self.range_page_inner(lo, hi, limit))
    }

    fn range_page_inner(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, V)> {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        assert!(limit > 0, "a page must hold at least one pair");
        if lo > hi {
            return Vec::new();
        }
        loop {
            let stamp = self.router.overlay_stamp(lo, hi);
            let (lists, ranges, sort) = self.visit_plan(lo, hi);
            let refs: Vec<&LeapListLt<V>> = lists.iter().map(|l| &**l).collect();
            let per_shard = LeapListLt::range_page_group(&refs, &ranges, limit);
            if self.router.overlay_stamp(lo, hi) != stamp {
                leap_obs::trace::note_stamp_retry(0);
                continue;
            }
            let mut merged: Vec<(u64, V)> = per_shard.into_iter().flatten().collect();
            if sort {
                merged.sort_unstable_by_key(|(k, _)| *k);
            }
            // Each list returned its first `limit` pairs, so the globally
            // first `limit` pairs are all present in the merge.
            merged.truncate(limit);
            return merged;
        }
    }

    /// Number of keys in `[lo, hi]` from one consistent cross-shard
    /// snapshot, with no value clones and no node buffering
    /// ([`LeapListLt::count_range_group`]).
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn count_range(&self, lo: u64, hi: u64) -> usize {
        let _span = self.span_keyed(leap_obs::OpClass::Len, lo);
        self.timed(OpKind::Len, || self.count_range_inner(lo, hi))
    }

    fn count_range_inner(&self, lo: u64, hi: u64) -> usize {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return 0;
        }
        loop {
            let stamp = self.router.overlay_stamp(lo, hi);
            let (lists, ranges, _) = self.visit_plan(lo, hi);
            let refs: Vec<&LeapListLt<V>> = lists.iter().map(|l| &**l).collect();
            let counts = LeapListLt::count_range_group(&refs, &ranges);
            if self.router.overlay_stamp(lo, hi) == stamp {
                return counts.iter().sum();
            }
            leap_obs::trace::note_stamp_retry(0);
        }
    }

    /// The shards a `[lo, hi]` query must visit — per the current table,
    /// plus the destination of **every** overlapping in-flight migration
    /// (clipped to its migrating sub-range) — with per-shard range
    /// arguments, bumping each visited shard's range counter. The third
    /// component is whether the caller must sort the merged result (hash
    /// interleaving or an overlay, whose destination keys interleave with
    /// the source interval's).
    fn visit_plan(&self, lo: u64, hi: u64) -> VisitPlan<V> {
        let mut plan: Vec<(usize, u64, u64)> = match self.router.mode() {
            Partitioning::Hash => (0..self.shards()).map(|s| (s, lo, hi)).collect(),
            Partitioning::Range => self.router.routing().overlapping(lo, hi),
        };
        let mut sort = self.router.mode() == Partitioning::Hash;
        for m in self.router.overlays_overlapping(lo, hi) {
            let (mlo, mhi) = (m.lo.max(lo), m.hi.min(hi));
            if mlo <= mhi {
                plan.push((m.dst, mlo, mhi));
                sort = true;
            }
        }
        let slots_guard = self.slots_read();
        let mut lists = Vec::with_capacity(plan.len());
        let mut ranges = Vec::with_capacity(plan.len());
        for (s, l, h) in plan {
            ShardCounters::bump(&slots_guard[s].counters.ranges);
            lists.push(slots_guard[s].list.clone());
            ranges.push((l, h));
        }
        (lists, ranges, sort)
    }

    /// Pins a snapshot timestamp and captures the `[lo, hi]` visit plan
    /// that goes with it — the one-time setup behind
    /// [`LeapStore::scan_snapshot`]. Every later page reads the captured
    /// lists at the pinned timestamp with **no** stamp checks: commits
    /// and migrations after the pin carry larger write versions and are
    /// invisible by construction.
    ///
    /// The stamp bracket here is the only race window: a migration
    /// overlapping `[lo, hi]` completing between the pin and the plan
    /// capture could install a table that routes the migrated range only
    /// to its destination, while moves committed *after* the pinned
    /// timestamp are still only visible on the source side. Equal stamps
    /// prove no overlapping migration began or completed inside the
    /// bracket, which rules that out:
    ///
    /// * completed before the bracket — every move's wiring finished
    ///   before the pin, so the moved keys are visible in the destination
    ///   at the pinned timestamp, and the plan routes there;
    /// * in flight across the bracket — the plan carries both sides, and
    ///   each key is visible on exactly one of them at any timestamp
    ///   (moves are single cross-list commits);
    /// * begun after the bracket — its moves are newer than the pin, so
    ///   the source (still in the captured plan) shows every key.
    pub(crate) fn pinned_snapshot_plan(
        &self,
        lo: u64,
        hi: u64,
    ) -> (leaplist::ListSnapshot, VisitPlan<V>) {
        loop {
            let stamp = self.router.overlay_stamp(lo, hi);
            let snap = leaplist::ListSnapshot::pin(&self.domain);
            let plan = self.visit_plan(lo, hi);
            if self.router.overlay_stamp(lo, hi) == stamp {
                // ORDERING: monotonic stat counter; no publication rides on it.
                self.snapshot_scans.fetch_add(1, Ordering::Relaxed);
                return (snap, plan);
            }
            leap_obs::trace::note_stamp_retry(0);
        }
    }

    /// Times one snapshot page into the `snapshot_page` histogram (the
    /// cursor calls this; the plan and timestamp are already captured).
    pub(crate) fn timed_snapshot_page<T>(&self, f: impl FnOnce() -> T) -> T {
        let _span = self.span_keyed(leap_obs::OpClass::ScanPage, 0);
        self.timed(OpKind::SnapshotPage, f)
    }

    /// Number of keys, from one consistent snapshot (routed through the
    /// count-only transactional walk — no value clones).
    pub fn len(&self) -> usize {
        self.count_range(0, u64::MAX - 1)
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-subspace load view for stores carving their keyspace into
    /// prefix-tagged subspaces ([`crate::Subspace`]): each entry reports
    /// the subspace's key count (one consistent snapshot per subspace)
    /// and the shard slots a scan of it visits under the current routing
    /// table — the signal for judging whether an index subspace has grown
    /// shard-heavy and is worth a targeted split.
    pub fn subspace_stats(&self, subspaces: &[crate::Subspace]) -> Vec<crate::SubspaceStats> {
        subspaces
            .iter()
            .map(|ss| crate::SubspaceStats {
                tag: ss.tag(),
                keys: self.count_range(ss.lo(), ss.hi()),
                shards: self.router.shards_for_subspace(ss),
            })
            .collect()
    }

    /// A point-in-time statistics snapshot: per-shard op counters and key
    /// counts, routing epoch and migration progress, plus the shared
    /// domain's commit/abort counters.
    pub fn stats(&self) -> StoreStats {
        let slots_guard = self.slots_read();
        let shards: Vec<ShardStats> = slots_guard
            .iter()
            .enumerate()
            .map(|(s, slot)| {
                let owned = match self.router.mode() {
                    Partitioning::Hash => true,
                    Partitioning::Range => self.router.shard_interval(s).is_some(),
                };
                slot.counters.snapshot(s, slot.list.len() as u64, owned)
            })
            .collect();
        // ORDERING: monotonic stat counters; a snapshot only needs
        // eventually-consistent values.
        let ld = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        StoreStats {
            shards,
            stm: self.domain.stats(),
            collision_batches: ld(&self.collision_batches),
            epoch: self.router.epoch(),
            migrations: self.router.migrations(),
            peak_concurrent_migrations: self.router.peak_concurrent_migrations(),
            migrations_completed: ld(&self.migrations_completed),
            aborted_migrations: ld(&self.aborted_migrations),
            shed_ops: ld(&self.shed_ops),
            snapshot_scans: ld(&self.snapshot_scans),
            bundle_depth: slots_guard
                .iter()
                .map(|slot| slot.list.max_bundle_depth())
                .max()
                .unwrap_or(1),
            obs: self.obs.as_ref().map(|o| o.snapshot()),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for LeapStore<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Cheap per-shard length sum, NOT the exact transactional count:
        // debug-printing a large store must not walk a snapshot
        // transaction (which can retry under write contention).
        let approx_len: usize = self.slots_read().iter().map(|s| s.list.len()).sum();
        f.debug_struct("LeapStore")
            .field("shards", &self.shards())
            .field("partitioning", &self.router.mode())
            .field("epoch", &self.router.epoch())
            .field("approx_len", &approx_len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, mode: Partitioning) -> StoreConfig {
        StoreConfig::new(shards, mode)
            .with_key_space(1_000)
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
    }

    #[test]
    fn single_key_roundtrip_both_modes() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let store: LeapStore<u64> = LeapStore::new(cfg(4, mode));
            assert!(store.is_empty());
            assert_eq!(store.put(7, 70), None);
            assert_eq!(store.put(7, 71), Some(70));
            assert_eq!(store.get(7), Some(71));
            assert_eq!(store.delete(7), Some(71));
            assert_eq!(store.get(7), None);
            assert_eq!(store.delete(7), None);
        }
    }

    #[test]
    fn range_merges_across_shards_sorted() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let store: LeapStore<u64> = LeapStore::new(cfg(4, mode));
            for k in (0..100u64).rev() {
                store.put(k * 10, k);
            }
            let r = store.range(100, 200);
            assert_eq!(
                r,
                (10..=20).map(|k| (k * 10, k)).collect::<Vec<_>>(),
                "mode {mode:?}"
            );
            assert_eq!(store.range(5, 3), vec![]);
            assert_eq!(store.count_range(100, 200), 11);
            assert_eq!(store.len(), 100);
        }
    }

    #[test]
    fn distinct_shard_batch_hits_each_shard_once() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        // key_space 1000 over 4 shards: strides of 250.
        let old = store.multi_put(&[(10, 1), (260, 2), (510, 3), (760, 4)]);
        assert_eq!(old, vec![None; 4]);
        assert_eq!(
            store.stats().collision_batches,
            0,
            "distinct shards → no collision"
        );
        let old = store.multi_delete(&[10, 260, 999]);
        assert_eq!(old, vec![Some(1), Some(2), None]);
    }

    #[test]
    fn same_shard_collisions_commit_in_one_transaction_in_order() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        let commits_before = store.stats().stm.total_commits();
        // All four keys land in shard 0 (0..250).
        let old = store.multi_put(&[(1, 10), (2, 20), (1, 11), (3, 30)]);
        assert_eq!(old, vec![None, None, Some(10), None]);
        assert_eq!(store.get(1), Some(11), "later op on same key wins");
        assert_eq!(store.stats().collision_batches, 1);
        assert_eq!(
            store.stats().stm.total_commits(),
            commits_before + 1,
            "a collision batch is exactly one transaction, not rounds"
        );
        // Mixed put+delete of one key, in order: delete sees the put.
        let old = store.apply(&[BatchOp::Update(9, 90), BatchOp::Remove(9)]);
        assert_eq!(old, vec![None, Some(90)]);
        assert_eq!(store.get(9), None);
    }

    #[test]
    fn collision_batch_overflowing_one_node_still_lands_whole() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        // 20 keys in shard 0 with node_size 4: the chain rebuild must
        // split into several nodes inside one commit.
        let entries: Vec<(u64, u64)> = (0..20u64).map(|k| (k, k * 2)).collect();
        let old = store.multi_put(&entries);
        assert_eq!(old, vec![None; 20]);
        for k in 0..20u64 {
            assert_eq!(store.get(k), Some(k * 2));
        }
        assert_eq!(store.range(0, 999).len(), 20);
        for s in store.shard(0).node_sizes() {
            assert!(s <= 4, "chain rebuild exceeded K");
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Hash));
        assert_eq!(store.multi_put(&[]), vec![]);
        assert_eq!(store.stats().collision_batches, 0);
    }

    #[test]
    fn stats_count_routed_ops() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Range));
        store.put(1, 1);
        store.put(600, 2);
        store.get(1);
        store.delete(600);
        store.range(0, 999);
        let st = store.stats();
        assert_eq!(st.shards.iter().map(|s| s.puts).sum::<u64>(), 2);
        assert_eq!(st.shards.iter().map(|s| s.gets).sum::<u64>(), 1);
        assert_eq!(st.shards.iter().map(|s| s.deletes).sum::<u64>(), 1);
        assert_eq!(st.shards.iter().map(|s| s.ranges).sum::<u64>(), 2);
        assert_eq!(st.shards.iter().map(|s| s.keys).sum::<u64>(), 1);
        assert!(st.shards.iter().all(|s| s.owned));
        assert_eq!(st.epoch, 0);
        assert!(st.migrations.is_empty());
        assert!(st.stm.total_commits() > 0, "ops commit through the domain");
        assert!(st.to_json().contains("\"stm\""));
    }

    #[test]
    fn subspace_stats_count_tagged_regions() {
        use crate::Subspace;
        let (a, b) = (Subspace::new(0), Subspace::new(1));
        let store: LeapStore<u64> = LeapStore::new(
            StoreConfig::new(4, Partitioning::Range).with_key_space(Subspace::key_space(2)),
        );
        // Two shards per subspace: the boundary halves the tagged region.
        for p in 0..10u64 {
            store.put(a.key(p), p);
        }
        for p in 0..4u64 {
            store.put(b.key(p), p);
        }
        let st = store.subspace_stats(&[a, b]);
        assert_eq!(st[0].tag, 0);
        assert_eq!(st[0].keys, 10);
        assert_eq!(st[1].keys, 4);
        assert_eq!(st[0].shards, vec![0, 1], "subspace 0 spans slots 0-1");
        assert_eq!(st[1].shards, vec![2, 3]);
        assert_eq!(store.router().shards_for_subspace(&a), vec![0, 1]);
        // Range over one subspace never leaks the neighbour's keys.
        let (lo, hi) = a.range(0, u64::MAX);
        assert_eq!(store.range(lo, hi).len(), 10);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn max_key_rejected_in_batches() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Hash));
        store.multi_put(&[(u64::MAX, 1)]);
    }
}
