//! The store proper: N Leap-List shards on one transactional domain and a
//! router deciding placement. Every batch — including one mapping several
//! keys to a single shard — commits through **one** multi-list transaction
//! (`LeapListLt::apply_batch_grouped`), so there is no slow path, no
//! writer serialization and no reader retry protocol.

use crate::router::{Partitioning, Router};
use crate::stats::{ShardCounters, StoreStats};
use leap_stm::StmDomain;
use leaplist::{BatchOp, LeapListLt, Params};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Construction parameters for a [`LeapStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Number of Leap-List shards.
    pub shards: usize,
    /// How keys map to shards.
    pub partitioning: Partitioning,
    /// Expected key upper bound (exclusive) — range partitioning slices
    /// `[0, key_space)` into equal strides; keys at or beyond it fall in
    /// the trailing shards (exactly the last shard whenever
    /// `key_space >= shards`). Hash partitioning ignores it.
    pub key_space: u64,
    /// Per-shard Leap-List structure parameters.
    pub params: Params,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 8,
            partitioning: Partitioning::Hash,
            key_space: u64::MAX,
            params: Params::default(),
        }
    }
}

impl StoreConfig {
    /// A config with the given shard count and partitioning mode.
    pub fn new(shards: usize, partitioning: Partitioning) -> Self {
        StoreConfig {
            shards,
            partitioning,
            ..Default::default()
        }
    }

    /// Sets the expected key upper bound (exclusive).
    pub fn with_key_space(mut self, key_space: u64) -> Self {
        self.key_space = key_space;
        self
    }

    /// Sets the per-shard Leap-List parameters.
    pub fn with_params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }
}

/// A sharded, concurrent range-store over Leap-List shards sharing one
/// transactional domain.
///
/// * [`LeapStore::get`] / [`LeapStore::put`] / [`LeapStore::delete`] —
///   single-key operations routed to one shard.
/// * [`LeapStore::multi_put`] / [`LeapStore::apply`] — cross-shard batches
///   applied as **one linearizable action**.
/// * [`LeapStore::range`] — a cross-shard range query assembled from
///   per-shard snapshots taken inside **one** transaction
///   ([`LeapListLt::range_query_group`]), so the combined result is a
///   single consistent snapshot: it can never observe part of a batch.
///
/// # Batch atomicity
///
/// Every batch commits through a single multi-list transaction
/// ([`LeapListLt::apply_batch_grouped`]): ops are grouped per shard in
/// input order, each shard's group becomes one chain-rebuild plan, and one
/// locking transaction validates and acquires every affected chain across
/// every shard. A batch mapping two or more keys to one shard therefore
/// costs the same protocol as the one-key-per-shard case — there is no
/// seqlock, no writer-phase lock and no multi-round fallback; readers and
/// other writers proceed concurrently throughout.
///
/// # Example
///
/// ```
/// use leap_store::{LeapStore, Partitioning, StoreConfig};
///
/// let store: LeapStore<u64> =
///     LeapStore::new(StoreConfig::new(4, Partitioning::Range).with_key_space(1000));
/// store.put(10, 100);
/// store.put(600, 900);
/// // Atomic across shards:
/// store.multi_put(&[(20, 1), (400, 2), (800, 3)]);
/// assert_eq!(store.get(400), Some(2));
/// assert_eq!(store.range(0, 999).len(), 5);
/// ```
pub struct LeapStore<V> {
    shards: Vec<LeapListLt<V>>,
    router: Router,
    domain: Arc<StmDomain>,
    counters: Vec<ShardCounters>,
    /// Batches that mapped at least two keys to one shard — the load that
    /// the seed's seqlock slow path serialized and that now commits in a
    /// single transaction.
    collision_batches: AtomicU64,
}

impl<V: Clone + Send + Sync + 'static> LeapStore<V> {
    /// Creates an empty store: `config.shards` Leap-Lists sharing one
    /// fresh transactional domain.
    pub fn new(config: StoreConfig) -> Self {
        // The router owns the shard-count validation; build it first so a
        // zero-shard config panics with the router's diagnostic.
        let router = Router::new(config.partitioning, config.shards, config.key_space);
        let shards = LeapListLt::group(config.shards, config.params.clone());
        let domain = shards
            .first()
            .expect("router rejected shards == 0 above")
            .domain()
            .clone();
        let counters = (0..config.shards)
            .map(|_| ShardCounters::default())
            .collect();
        LeapStore {
            shards,
            router,
            domain,
            counters,
            collision_batches: AtomicU64::new(0),
        }
    }

    /// The router (placement inspection).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's Leap-List (diagnostics and tests).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard(&self, s: usize) -> &LeapListLt<V> {
        &self.shards[s]
    }

    /// The shared transactional domain.
    pub fn domain(&self) -> &Arc<StmDomain> {
        &self.domain
    }

    /// Point lookup.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn get(&self, key: u64) -> Option<V> {
        let s = self.router.shard_of(key);
        ShardCounters::bump(&self.counters[s].gets);
        self.shards[s].lookup(key)
    }

    /// Inserts or updates `key -> value`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn put(&self, key: u64, value: V) -> Option<V> {
        let s = self.router.shard_of(key);
        ShardCounters::bump(&self.counters[s].puts);
        self.shards[s].update(key, value)
    }

    /// Removes `key`; returns its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `key == u64::MAX`.
    pub fn delete(&self, key: u64) -> Option<V> {
        let s = self.router.shard_of(key);
        ShardCounters::bump(&self.counters[s].deletes);
        self.shards[s].remove(key)
    }

    /// Inserts all `(key, value)` pairs as **one linearizable action**
    /// across their shards; returns previous values in input order.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn multi_put(&self, entries: &[(u64, V)]) -> Vec<Option<V>> {
        let ops: Vec<BatchOp<V>> = entries
            .iter()
            .map(|(k, v)| BatchOp::Update(*k, v.clone()))
            .collect();
        self.apply(&ops)
    }

    /// Removes all `keys` as one linearizable action; returns the removed
    /// values in input order.
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn multi_delete(&self, keys: &[u64]) -> Vec<Option<V>> {
        let ops: Vec<BatchOp<V>> = keys.iter().map(|k| BatchOp::Remove(*k)).collect();
        self.apply(&ops)
    }

    /// Applies a mixed put/delete batch as one linearizable action;
    /// returns previous values in input order. Ops sharing a shard apply
    /// in input order within the single commit (so a batch may put and
    /// then delete the same key).
    ///
    /// # Panics
    ///
    /// Panics if any key is `u64::MAX`.
    pub fn apply(&self, ops: &[BatchOp<V>]) -> Vec<Option<V>> {
        if ops.is_empty() {
            return Vec::new();
        }
        let key_of = |op: &BatchOp<V>| match op {
            BatchOp::Update(k, _) => *k,
            BatchOp::Remove(k) => *k,
        };
        // Validate every key before touching any shard, so a documented
        // caller error cannot panic with part of the batch planned.
        for op in ops {
            assert!(key_of(op) < u64::MAX, "key u64::MAX is reserved");
        }
        // Single-op batches (the Batcher's uncontended hot path) route
        // straight to their shard: no grouping vectors.
        if let [op] = ops {
            let shard = self.router.shard_of(key_of(op));
            self.counters[shard]
                .batch_parts
                .fetch_add(1, Ordering::Relaxed);
            return vec![match op {
                BatchOp::Update(k, v) => self.shards[shard].update(*k, v.clone()),
                BatchOp::Remove(k) => self.shards[shard].remove(*k),
            }];
        }
        // Group ops per shard, preserving input order within each group.
        let mut groups: Vec<Vec<BatchOp<V>>> = vec![Vec::new(); self.shards.len()];
        let mut origin: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, op) in ops.iter().enumerate() {
            let s = self.router.shard_of(key_of(op));
            groups[s].push(op.clone());
            origin[s].push(i);
        }
        for (s, g) in groups.iter().enumerate() {
            self.counters[s]
                .batch_parts
                .fetch_add(g.len() as u64, Ordering::Relaxed);
        }
        if groups.iter().any(|g| g.len() >= 2) {
            self.collision_batches.fetch_add(1, Ordering::Relaxed);
        }
        // One multi-list transaction over every touched shard, regardless
        // of key -> shard collisions.
        let mut lists: Vec<&LeapListLt<V>> = Vec::new();
        let mut shard_ops: Vec<&[BatchOp<V>]> = Vec::new();
        let mut shard_origin: Vec<&[usize]> = Vec::new();
        for (s, g) in groups.iter().enumerate() {
            if !g.is_empty() {
                lists.push(&self.shards[s]);
                shard_ops.push(g);
                shard_origin.push(&origin[s]);
            }
        }
        let results = LeapListLt::apply_batch_grouped(&lists, &shard_ops);
        let mut out: Vec<Option<V>> = vec![None; ops.len()];
        for (res, orig) in results.into_iter().zip(shard_origin) {
            for (r, &i) in res.into_iter().zip(orig) {
                out[i] = r;
            }
        }
        out
    }

    /// Linearizable cross-shard range query: all pairs with keys in
    /// `[lo, hi]`, ascending, from **one** consistent snapshot (one
    /// transaction spans every visited shard).
    ///
    /// Returns an empty vector when `lo > hi`.
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, V)> {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return Vec::new();
        }
        let (lists, ranges) = self.visit_plan(lo, hi);
        let per_shard = LeapListLt::range_query_group(&lists, &ranges);
        let mut merged: Vec<(u64, V)> = per_shard.into_iter().flatten().collect();
        if self.router.mode() == Partitioning::Hash {
            // Contiguous shards concatenate in order; hashed shards
            // interleave and need the merge sort.
            merged.sort_unstable_by_key(|(k, _)| *k);
        }
        merged
    }

    /// Number of keys in `[lo, hi]` from one consistent cross-shard
    /// snapshot, without cloning values
    /// ([`LeapListLt::count_range_group`]).
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn count_range(&self, lo: u64, hi: u64) -> usize {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        if lo > hi {
            return 0;
        }
        let (lists, ranges) = self.visit_plan(lo, hi);
        LeapListLt::count_range_group(&lists, &ranges).iter().sum()
    }

    /// The shards a `[lo, hi]` query must visit, with per-shard range
    /// arguments, bumping each visited shard's range counter.
    fn visit_plan(&self, lo: u64, hi: u64) -> (Vec<&LeapListLt<V>>, Vec<(u64, u64)>) {
        let visit = self.router.shards_for_range(lo, hi);
        for &s in &visit {
            ShardCounters::bump(&self.counters[s].ranges);
        }
        let lists: Vec<&LeapListLt<V>> = visit.iter().map(|&s| &self.shards[s]).collect();
        let ranges = vec![(lo, hi); lists.len()];
        (lists, ranges)
    }

    /// Approximate number of keys (exact when quiescent).
    pub fn len(&self) -> usize {
        self.shards.iter().map(LeapListLt::len).sum()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time statistics snapshot: per-shard op counters plus the
    /// shared domain's commit/abort counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            shards: self
                .counters
                .iter()
                .enumerate()
                .map(|(s, c)| c.snapshot(s))
                .collect(),
            stm: self.domain.stats(),
            collision_batches: self.collision_batches.load(Ordering::Relaxed),
        }
    }
}

impl<V: Clone + Send + Sync + 'static> std::fmt::Debug for LeapStore<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeapStore")
            .field("shards", &self.shards.len())
            .field("partitioning", &self.router.mode())
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(shards: usize, mode: Partitioning) -> StoreConfig {
        StoreConfig::new(shards, mode)
            .with_key_space(1_000)
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
    }

    #[test]
    fn single_key_roundtrip_both_modes() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let store: LeapStore<u64> = LeapStore::new(cfg(4, mode));
            assert!(store.is_empty());
            assert_eq!(store.put(7, 70), None);
            assert_eq!(store.put(7, 71), Some(70));
            assert_eq!(store.get(7), Some(71));
            assert_eq!(store.delete(7), Some(71));
            assert_eq!(store.get(7), None);
            assert_eq!(store.delete(7), None);
        }
    }

    #[test]
    fn range_merges_across_shards_sorted() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let store: LeapStore<u64> = LeapStore::new(cfg(4, mode));
            for k in (0..100u64).rev() {
                store.put(k * 10, k);
            }
            let r = store.range(100, 200);
            assert_eq!(
                r,
                (10..=20).map(|k| (k * 10, k)).collect::<Vec<_>>(),
                "mode {mode:?}"
            );
            assert_eq!(store.range(5, 3), vec![]);
            assert_eq!(store.count_range(100, 200), 11);
            assert_eq!(store.len(), 100);
        }
    }

    #[test]
    fn distinct_shard_batch_hits_each_shard_once() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        // key_space 1000 over 4 shards: strides of 250.
        let old = store.multi_put(&[(10, 1), (260, 2), (510, 3), (760, 4)]);
        assert_eq!(old, vec![None; 4]);
        assert_eq!(
            store.stats().collision_batches,
            0,
            "distinct shards → no collision"
        );
        let old = store.multi_delete(&[10, 260, 999]);
        assert_eq!(old, vec![Some(1), Some(2), None]);
    }

    #[test]
    fn same_shard_collisions_commit_in_one_transaction_in_order() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        let commits_before = store.stats().stm.total_commits();
        // All four keys land in shard 0 (0..250).
        let old = store.multi_put(&[(1, 10), (2, 20), (1, 11), (3, 30)]);
        assert_eq!(old, vec![None, None, Some(10), None]);
        assert_eq!(store.get(1), Some(11), "later op on same key wins");
        assert_eq!(store.stats().collision_batches, 1);
        assert_eq!(
            store.stats().stm.total_commits(),
            commits_before + 1,
            "a collision batch is exactly one transaction, not rounds"
        );
        // Mixed put+delete of one key, in order: delete sees the put.
        let old = store.apply(&[BatchOp::Update(9, 90), BatchOp::Remove(9)]);
        assert_eq!(old, vec![None, Some(90)]);
        assert_eq!(store.get(9), None);
    }

    #[test]
    fn collision_batch_overflowing_one_node_still_lands_whole() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4, Partitioning::Range));
        // 20 keys in shard 0 with node_size 4: the chain rebuild must
        // split into several nodes inside one commit.
        let entries: Vec<(u64, u64)> = (0..20u64).map(|k| (k, k * 2)).collect();
        let old = store.multi_put(&entries);
        assert_eq!(old, vec![None; 20]);
        for k in 0..20u64 {
            assert_eq!(store.get(k), Some(k * 2));
        }
        assert_eq!(store.range(0, 999).len(), 20);
        for s in store.shard(0).node_sizes() {
            assert!(s <= 4, "chain rebuild exceeded K");
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Hash));
        assert_eq!(store.multi_put(&[]), vec![]);
        assert_eq!(store.stats().collision_batches, 0);
    }

    #[test]
    fn stats_count_routed_ops() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Range));
        store.put(1, 1);
        store.put(600, 2);
        store.get(1);
        store.delete(600);
        store.range(0, 999);
        let st = store.stats();
        assert_eq!(st.shards.iter().map(|s| s.puts).sum::<u64>(), 2);
        assert_eq!(st.shards.iter().map(|s| s.gets).sum::<u64>(), 1);
        assert_eq!(st.shards.iter().map(|s| s.deletes).sum::<u64>(), 1);
        assert_eq!(st.shards.iter().map(|s| s.ranges).sum::<u64>(), 2);
        assert!(st.stm.total_commits() > 0, "ops commit through the domain");
        assert!(st.to_json().contains("\"stm\""));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn max_key_rejected_in_batches() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2, Partitioning::Hash));
        store.multi_put(&[(u64::MAX, 1)]);
    }
}
