//! Prefix-tagged key subspaces: carving one store's `u64` keyspace into
//! disjoint contiguous regions ("subspaces") by a high-bit tag, so several
//! logical indexes can share a single [`crate::LeapStore`] — and therefore
//! a single transactional domain — while every subspace remains one
//! contiguous key interval that range partitioning can route, scan and
//! reshard independently.
//!
//! This is the encoding `leap-memdb`'s sharded backend uses: subspace 0
//! holds a table's primary index, subspace `1 + i` its `i`-th secondary
//! index, and a row mutation touching several subspaces is one
//! [`crate::LeapStore::apply`] batch — one cross-list transaction.
//!
//! Layout of a tagged key (the payload layout below the tag is the
//! caller's business; `leap-memdb` packs `(column value, row id)`):
//!
//! ```text
//!   63         56 55                                            0
//!  +-------------+----------------------------------------------+
//!  |   tag (8)   |                payload (56)                  |
//!  +-------------+----------------------------------------------+
//! ```

/// Bits reserved for the subspace tag (the key's high byte).
pub const TAG_BITS: u32 = 8;

/// Bits left for the per-subspace payload.
pub const PAYLOAD_BITS: u32 = 64 - TAG_BITS;

/// Largest payload a tagged key can carry.
pub const MAX_PAYLOAD: u64 = (1 << PAYLOAD_BITS) - 1;

/// One tagged key subspace: the contiguous interval
/// `[tag << 56, (tag << 56) | MAX_PAYLOAD]`.
///
/// Tag `255` is rejected: its last key would be `u64::MAX`, the store's
/// reserved sentinel.
///
/// # Example
///
/// ```
/// use leap_store::Subspace;
/// let primary = Subspace::new(0);
/// let index = Subspace::new(1);
/// assert!(primary.hi() < index.lo(), "subspaces are disjoint and ordered");
/// let k = index.key(42);
/// assert!(index.contains(k) && !primary.contains(k));
/// assert_eq!(index.payload(k), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Subspace {
    tag: u8,
}

impl Subspace {
    /// The subspace with the given tag.
    ///
    /// # Panics
    ///
    /// Panics if `tag == 255` (would collide with the reserved key
    /// `u64::MAX`).
    pub fn new(tag: u8) -> Self {
        assert!(tag < 255, "tag 255 would contain the reserved key u64::MAX");
        Subspace { tag }
    }

    /// This subspace's tag.
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// First key of the subspace.
    pub fn lo(&self) -> u64 {
        (self.tag as u64) << PAYLOAD_BITS
    }

    /// Last key (inclusive) of the subspace.
    pub fn hi(&self) -> u64 {
        self.lo() | MAX_PAYLOAD
    }

    /// The tagged key for `payload`.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_PAYLOAD`].
    pub fn key(&self, payload: u64) -> u64 {
        assert!(
            payload <= MAX_PAYLOAD,
            "payload exceeds {PAYLOAD_BITS} bits"
        );
        self.lo() | payload
    }

    /// Whether `key` lies in this subspace.
    pub fn contains(&self, key: u64) -> bool {
        key >> PAYLOAD_BITS == self.tag as u64
    }

    /// The payload of a key from this subspace.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the key carries a different tag.
    pub fn payload(&self, key: u64) -> u64 {
        debug_assert!(self.contains(key), "key from a different subspace");
        key & MAX_PAYLOAD
    }

    /// The key interval for payloads in `[lo, hi]`, clipped to the
    /// subspace — the arguments a range scan over this subspace passes to
    /// [`crate::LeapStore::range`] / [`crate::LeapStore::scan`].
    pub fn range(&self, lo: u64, hi: u64) -> (u64, u64) {
        (self.key(lo.min(MAX_PAYLOAD)), self.key(hi.min(MAX_PAYLOAD)))
    }

    /// The smallest `key_space` covering subspaces with tags `0..tags` —
    /// the value to hand [`crate::StoreConfig::with_key_space`] so range
    /// partitioning slices exactly the used region evenly across shards.
    ///
    /// # Panics
    ///
    /// Panics if `tags` is zero or exceeds 255.
    pub fn key_space(tags: usize) -> u64 {
        assert!((1..=255).contains(&tags), "need 1..=255 subspaces");
        (tags as u64) << PAYLOAD_BITS
    }
}

/// Key count and shard placement of one subspace — the per-subspace load
/// view behind [`crate::LeapStore::subspace_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubspaceStats {
    /// The subspace's tag.
    pub tag: u8,
    /// Keys currently held in the subspace (one consistent snapshot per
    /// subspace).
    pub keys: usize,
    /// Shard slots a scan of the subspace visits under the current
    /// routing table (ignores an in-flight migration overlay).
    pub shards: Vec<usize>,
}

impl SubspaceStats {
    /// The stats as a JSON object:
    /// `{"tag":..,"keys":..,"shards":[..]}`.
    pub fn to_json(&self) -> leap_obs::Json {
        use leap_obs::Json;
        Json::obj()
            .field("tag", Json::U64(self.tag as u64))
            .field("keys", Json::U64(self.keys as u64))
            .field(
                "shards",
                Json::Arr(self.shards.iter().map(|&s| Json::U64(s as u64)).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subspaces_tile_disjoint_intervals() {
        let a = Subspace::new(0);
        let b = Subspace::new(1);
        assert_eq!(a.lo(), 0);
        assert_eq!(a.hi() + 1, b.lo());
        assert_eq!(b.tag(), 1);
        assert!(a.contains(a.hi()) && !a.contains(b.lo()));
        assert_eq!(b.payload(b.key(7)), 7);
        assert_eq!(b.range(5, u64::MAX), (b.key(5), b.hi()));
        assert_eq!(Subspace::key_space(3), 3 << PAYLOAD_BITS);
        assert!(Subspace::new(254).hi() < u64::MAX);
    }

    #[test]
    fn stats_render_as_json() {
        let stats = SubspaceStats {
            tag: 2,
            keys: 17,
            shards: vec![0, 3],
        };
        assert_eq!(
            stats.to_json().render(),
            "{\"tag\":2,\"keys\":17,\"shards\":[0,3]}"
        );
    }

    #[test]
    #[should_panic(expected = "reserved key")]
    fn tag_255_rejected() {
        Subspace::new(255);
    }

    #[test]
    #[should_panic(expected = "payload exceeds")]
    fn oversized_payload_rejected() {
        Subspace::new(1).key(MAX_PAYLOAD + 1);
    }
}
