//! The shard router: deterministic key → shard placement plus the inverse
//! question a range query asks — *which shards can hold keys in `[lo, hi]`?*
//!
//! Since live resharding landed, range-mode placement is no longer a fixed
//! arithmetic function but an **epoch-versioned routing table**
//! ([`RoutingEpoch`]): a sorted list of interval starts with one owning
//! shard slot per interval. Splitting a hot shard or merging a cold pair
//! installs a new table (epoch + 1) *after* the keys have migrated; while
//! migrations are in flight the router carries an **overlay set**
//! ([`MigrationState`], one per migration) naming each source, destination
//! and migrating sub-range, so the store can consult source-then-
//! destination for keys whose new home is still filling up.
//!
//! Overlays are **pairwise disjoint**: every in-flight migration moves a
//! suffix of a distinct source interval, and no shard slot participates in
//! two migrations at once ([`RebalanceError::SlotBusy`]), which makes the
//! ranges disjoint by construction. Linearizable reads therefore stamp
//! only the overlays *overlapping their own range* ([`OverlayStamp`]):
//! a migration of some other key range beginning or completing never
//! forces a retry.

use crate::interval::CompletionTree;
use crate::rebalance::RebalanceError;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// How the keyspace is partitioned across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Keys scatter by a Fibonacci hash: uniform load under any key
    /// distribution, but every range query must visit every shard and the
    /// placement cannot be resharded (there are no contiguous sub-ranges
    /// to migrate).
    Hash,
    /// Contiguous slices of the keyspace: a range query visits only the
    /// shards whose slice overlaps it, at the cost of load skew when the
    /// workload is skewed — which live resharding repairs online.
    Range,
}

/// One version of the range-mode routing table: interval `i` is
/// `[starts[i], starts[i+1])` (the last interval extends to the end of the
/// keyspace) and is owned by shard slot `owners[i]`.
///
/// Tables are immutable; resharding installs a whole new table with
/// `epoch + 1`. Every live slot owns **at most one contiguous interval**
/// (slots emptied by a merge own none until a later split reuses them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingEpoch {
    /// Version counter; bumped by every completed split or merge.
    pub epoch: u64,
    /// Ascending interval starts; `starts[0] == 0`.
    starts: Vec<u64>,
    /// Owning shard slot per interval.
    owners: Vec<usize>,
}

impl RoutingEpoch {
    fn initial(shards: usize, key_space: u64) -> Self {
        // Stride >= 1 keeps the starts strictly ascending even in the
        // degenerate key_space < shards geometry, matching the arithmetic
        // router this table replaced.
        let stride = (key_space / shards as u64).max(1);
        RoutingEpoch {
            epoch: 0,
            starts: (0..shards as u64).map(|s| s * stride).collect(),
            owners: (0..shards).collect(),
        }
    }

    /// Index of the interval holding `key`.
    fn interval_index(&self, key: u64) -> usize {
        self.starts.partition_point(|s| *s <= key) - 1
    }

    /// The slot owning `key`.
    pub fn owner_of(&self, key: u64) -> usize {
        self.owners[self.interval_index(key)]
    }

    /// The inclusive end of interval `i` (the last interval runs to
    /// `u64::MAX - 1`; `u64::MAX` is the reserved sentinel key).
    fn interval_end(&self, i: usize) -> u64 {
        if i + 1 < self.starts.len() {
            self.starts[i + 1] - 1
        } else {
            u64::MAX - 1
        }
    }

    /// The contiguous interval slot `s` owns, if any.
    pub fn interval_of(&self, s: usize) -> Option<(u64, u64)> {
        self.owners
            .iter()
            .position(|&o| o == s)
            .map(|i| (self.starts[i], self.interval_end(i)))
    }

    /// `(slot, lo, hi)` for every interval overlapping `[lo, hi]`, in key
    /// order, each clipped to the query.
    pub fn overlapping(&self, lo: u64, hi: u64) -> Vec<(usize, u64, u64)> {
        if lo > hi {
            return Vec::new();
        }
        let first = self.interval_index(lo);
        let last = self.interval_index(hi);
        (first..=last)
            .map(|i| {
                (
                    self.owners[i],
                    self.starts[i].max(lo),
                    self.interval_end(i).min(hi),
                )
            })
            .collect()
    }

    /// All `(slot, lo, hi)` intervals, in key order (diagnostics).
    pub fn intervals(&self) -> Vec<(usize, u64, u64)> {
        (0..self.starts.len())
            .map(|i| (self.owners[i], self.starts[i], self.interval_end(i)))
            .collect()
    }

    /// The table after moving ownership of `[lo, hi]` — a suffix of
    /// `src`'s interval — to `dst`, with adjacent same-owner intervals
    /// coalesced and the epoch bumped.
    fn transferred(&self, lo: u64, hi: u64, src: usize, dst: usize) -> Self {
        let i = self.interval_index(lo);
        debug_assert_eq!(self.owners[i], src, "migration source must own lo");
        debug_assert_eq!(self.interval_end(i), hi, "migrations move suffixes");
        let mut starts = self.starts.clone();
        let mut owners = self.owners.clone();
        if starts[i] == lo {
            owners[i] = dst;
        } else {
            starts.insert(i + 1, lo);
            owners.insert(i + 1, dst);
        }
        // Coalesce: a transfer can make neighbours share an owner.
        let mut cs: Vec<u64> = Vec::with_capacity(starts.len());
        let mut co: Vec<usize> = Vec::with_capacity(owners.len());
        for (s, o) in starts.into_iter().zip(owners) {
            if co.last() == Some(&o) {
                continue;
            }
            cs.push(s);
            co.push(o);
        }
        RoutingEpoch {
            epoch: self.epoch + 1,
            starts: cs,
            owners: co,
        }
    }
}

/// An in-flight key migration: one member of the overlay set the router
/// superimposes on the current [`RoutingEpoch`] while `[lo, hi]` moves
/// from `src` to `dst`.
///
/// Invariant maintained by the store: at every instant each key in
/// `[lo, hi]` is present in **exactly one** of the two lists (moves and
/// in-range writes are single cross-list transactions), so readers that
/// consult source-then-destination never see a key absent or doubled.
#[derive(Debug)]
pub struct MigrationState {
    /// Unique, monotone overlay identity (never reused, so a stamp can
    /// never confuse a completed migration with a later identical one).
    pub(crate) id: u64,
    /// Slot keys migrate out of (the current table owner of `[lo, hi]`).
    pub src: usize,
    /// Slot keys migrate into (owner once the next epoch installs).
    pub dst: usize,
    /// First key of the migrating sub-range.
    pub lo: u64,
    /// Last key (inclusive) of the migrating sub-range.
    pub hi: u64,
    /// Keys at or above `lo` and below the frontier have been drained from
    /// `src` (advisory — routing correctness never depends on it).
    pub(crate) frontier: AtomicU64,
    /// Keys moved so far.
    pub(crate) moved: AtomicU64,
    /// Serializes the chunk mover against writers targeting `[lo, hi]`:
    /// both read the source's current state and commit a cross-list
    /// transaction, which must not interleave (a chunk move committing a
    /// stale value over a racing write would lose the write).
    pub(crate) write_lock: Mutex<()>,
    /// Set (under `write_lock`) when the migration is being rolled back:
    /// in-range writes then land in `src` (clearing any `dst` copy) and
    /// lookups consult destination-then-source, mirroring the reversed
    /// drain direction. Participates in the overlay stamp, so a flip
    /// forces concurrent stamped reads to retry.
    pub(crate) aborting: AtomicBool,
    /// Consecutive drain steps that failed to advance the frontier (e.g.
    /// injected chunk faults); reset by every successful chunk. The
    /// rebalance watchdog force-resolves the migration once this crosses
    /// [`crate::RebalancePolicy::watchdog_stalls`].
    pub(crate) stalls: AtomicU32,
}

/// A read-only snapshot of an in-flight migration (stats, tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationView {
    /// Migration id — the handle [`crate::LeapStore::abort_migration`]
    /// takes.
    pub id: u64,
    /// Source slot.
    pub src: usize,
    /// Destination slot.
    pub dst: usize,
    /// Migrating sub-range start.
    pub lo: u64,
    /// Migrating sub-range end (inclusive).
    pub hi: u64,
    /// Keys moved so far.
    pub moved: u64,
}

/// Where a write must go: its table owner, or — for a key inside an
/// in-flight migration — the source/destination pair it must update as one
/// cross-list transaction.
pub(crate) enum WriteRoute {
    Direct(usize),
    Migrating(Arc<MigrationState>),
}

/// The **range-scoped** overlay identity a linearizable read of `[lo, hi]`
/// captures before planning and re-checks after committing: equal stamps
/// mean no migration *overlapping the read's range* began or completed in
/// between, so the planned list set was exhaustive for the whole read.
///
/// Two monotone-protected components make equality sound:
///
/// * `overlays` — the unique ids of in-flight migrations overlapping the
///   range. Ids are never reused, so "the same overlay set" really means
///   the same overlays (no ABA through complete-then-identical-rebegin).
/// * `completed` — the newest completion sequence number among completed
///   migrations overlapping the range, answered exactly by the router's
///   completion interval tree. Completions only insert with increasing
///   sequence numbers, so any overlapping completion between the two
///   stamps raises it — and a completion elsewhere never moves it (the
///   tree never widens a stored range).
///
/// A migration of a *disjoint* range changes neither component — its
/// begin/complete bumps the global epoch but cannot change where the
/// read's own keys live (a transfer only reassigns ownership inside the
/// migrated range; clipped to any disjoint range the table is unchanged).
#[derive(PartialEq, Eq, Clone, Debug)]
pub(crate) struct OverlayStamp {
    overlays: Vec<u64>,
    completed: u64,
}

/// The migration overlay set plus the completion log, guarded together so
/// a stamp sees a consistent pair.
#[derive(Debug, Default)]
struct OverlaySet {
    /// In-flight migrations, sorted by `lo`; pairwise disjoint ranges and
    /// pairwise disjoint `{src, dst}` slot sets.
    inflight: Vec<Arc<MigrationState>>,
    /// Completed migration ranges, stored exactly (no cap, no
    /// gap-spanning coalescing) — see [`CompletionTree`].
    completed: CompletionTree,
    /// Monotone id source for new migrations.
    next_id: u64,
    /// Monotone completion sequence (1 for the first completion).
    completed_seq: u64,
    /// Most concurrent in-flight migrations ever observed.
    peak_inflight: u64,
}

impl OverlaySet {
    /// Records a completed migration's range in the interval tree under
    /// the next completion sequence number.
    fn log_completion(&mut self, lo: u64, hi: u64) {
        self.completed_seq += 1;
        self.completed.insert(lo, hi, self.completed_seq);
    }

    /// The newest completion sequence overlapping `[lo, hi]` (0 if none).
    fn completed_overlapping(&self, lo: u64, hi: u64) -> u64 {
        self.completed.max_seq_overlapping(lo, hi)
    }
}

/// Routes keys to shard slots.
///
/// # Example
///
/// ```
/// use leap_store::{Partitioning, Router};
/// let r = Router::new(Partitioning::Range, 4, 1000);
/// assert_eq!(r.shard_of(0), 0);
/// assert_eq!(r.shard_of(999), 3);
/// assert_eq!(r.shards_for_range(0, 249), vec![0]);
/// assert_eq!(r.shards_for_range(200, 600), vec![0, 1, 2]);
/// assert_eq!(r.epoch(), 0);
/// ```
#[derive(Debug)]
pub struct Router {
    mode: Partitioning,
    /// Total shard slots (grows when a split allocates a new shard).
    slots: AtomicUsize,
    /// Current routing table (range mode; hash mode routes arithmetically).
    table: RwLock<Arc<RoutingEpoch>>,
    /// The in-flight migration overlay set plus the completion log.
    overlays: RwLock<OverlaySet>,
    /// Writer gate: every write holds it shared for the whole op; starting
    /// or completing a migration holds it exclusively for the instant the
    /// overlay or table flips. This drains writes that routed under the
    /// old view before the migration driver trusts the new one.
    gate: RwLock<()>,
}

impl Router {
    /// Creates a router over `shards` shards. `key_space` bounds the keys
    /// the contiguous mode slices evenly; keys at or beyond it fall in the
    /// trailing shards (exactly the last shard whenever
    /// `key_space >= shards`, the non-degenerate configuration). Hash mode
    /// ignores it.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `key_space` is zero.
    pub fn new(mode: Partitioning, shards: usize, key_space: u64) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        assert!(key_space > 0, "key_space must be non-zero");
        Router {
            mode,
            slots: AtomicUsize::new(shards),
            table: RwLock::new(Arc::new(RoutingEpoch::initial(shards, key_space))),
            overlays: RwLock::new(OverlaySet::default()),
            gate: RwLock::new(()),
        }
    }

    /// Number of shard slots (including any emptied by merges and not yet
    /// reused by splits).
    pub fn shards(&self) -> usize {
        self.slots.load(Ordering::Acquire)
    }

    /// The partitioning mode.
    pub fn mode(&self) -> Partitioning {
        self.mode
    }

    /// The current routing-table version (0 until the first completed
    /// split or merge; hash mode never reshards).
    pub fn epoch(&self) -> u64 {
        self.routing().epoch
    }

    /// A snapshot of the current routing table.
    pub fn routing(&self) -> Arc<RoutingEpoch> {
        self.table
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// A snapshot of one in-flight migration (the lowest-keyed one), if
    /// any is running. See [`Router::migrations`] for the full overlay
    /// set.
    pub fn migration(&self) -> Option<MigrationView> {
        self.migrations().into_iter().next()
    }

    /// Snapshots of every in-flight migration, in key order.
    pub fn migrations(&self) -> Vec<MigrationView> {
        self.overlay_states()
            .iter()
            .map(|m| MigrationView {
                id: m.id,
                src: m.src,
                dst: m.dst,
                lo: m.lo,
                hi: m.hi,
                // ORDERING: progress gauge; staleness only lags the report.
                moved: m.moved.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Most concurrent in-flight migrations ever observed.
    pub fn peak_concurrent_migrations(&self) -> u64 {
        self.overlays_read().peak_inflight
    }

    fn overlays_read(&self) -> std::sync::RwLockReadGuard<'_, OverlaySet> {
        self.overlays
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The whole in-flight overlay set, sorted by `lo`.
    pub(crate) fn overlay_states(&self) -> Vec<Arc<MigrationState>> {
        self.overlays_read().inflight.clone()
    }

    /// The in-flight overlay covering `key`, if any.
    pub(crate) fn overlay_for(&self, key: u64) -> Option<Arc<MigrationState>> {
        self.overlays_read()
            .inflight
            .iter()
            .find(|m| (m.lo..=m.hi).contains(&key))
            .cloned()
    }

    /// Every in-flight overlay overlapping `[lo, hi]`, in key order.
    pub(crate) fn overlays_overlapping(&self, lo: u64, hi: u64) -> Vec<Arc<MigrationState>> {
        self.overlays_read()
            .inflight
            .iter()
            .filter(|m| m.lo <= hi && lo <= m.hi)
            .cloned()
            .collect()
    }

    /// The shard owning `key` **per the current table** (an in-flight
    /// migration does not change ownership until it completes). Total:
    /// every key maps to exactly one slot.
    pub fn shard_of(&self, key: u64) -> usize {
        match self.mode {
            Partitioning::Hash => {
                // Fibonacci multiply then fold the high bits in, so both
                // low- and high-entropy keys spread.
                let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h ^ (h >> 32)) % self.shards() as u64) as usize
            }
            Partitioning::Range => self.routing().owner_of(key),
        }
    }

    /// Every shard that may hold a key in `[lo, hi]` per the current
    /// table, in key order (which is ascending slot order until the first
    /// reshard permutes interval ownership). Empty when `lo > hi`; hash
    /// mode scatters, so every slot overlaps every range. Does **not**
    /// include an in-flight migration's destination — linearizable reads
    /// use the store's overlay-aware visit plan.
    pub fn shards_for_range(&self, lo: u64, hi: u64) -> Vec<usize> {
        if lo > hi {
            return Vec::new();
        }
        match self.mode {
            Partitioning::Hash => (0..self.shards()).collect(),
            Partitioning::Range => self
                .routing()
                .overlapping(lo, hi)
                .into_iter()
                .map(|(s, _, _)| s)
                .collect(),
        }
    }

    /// Every shard a scan of `subspace` visits per the current table — the
    /// placement question a prefix-tagged index asks. Equivalent to
    /// [`Router::shards_for_range`] over the subspace's key interval.
    pub fn shards_for_subspace(&self, subspace: &crate::Subspace) -> Vec<usize> {
        self.shards_for_range(subspace.lo(), subspace.hi())
    }

    /// The inclusive key interval slot `s` owns per the current table.
    /// `None` in hash mode (ownership is scattered) and for range-mode
    /// slots that currently own no interval (emptied by a merge).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard_interval(&self, s: usize) -> Option<(u64, u64)> {
        assert!(s < self.shards(), "shard {s} out of bounds");
        match self.mode {
            Partitioning::Hash => None,
            Partitioning::Range => self.routing().interval_of(s),
        }
    }

    /// Registers a new (initially interval-less) shard slot; returns its
    /// index. The store grows its shard vector in lock step.
    pub(crate) fn add_slot(&self) -> usize {
        self.slots.fetch_add(1, Ordering::AcqRel)
    }

    /// Where a write to `key` must go right now. The caller must hold the
    /// writer gate ([`Router::enter_write`]) across both this decision and
    /// the write itself.
    pub(crate) fn write_route(&self, key: u64) -> WriteRoute {
        if let Some(m) = self.overlay_for(key) {
            return WriteRoute::Migrating(m);
        }
        WriteRoute::Direct(self.shard_of(key))
    }

    /// Shared hold on the writer gate for the duration of one write.
    pub(crate) fn enter_write(&self) -> std::sync::RwLockReadGuard<'_, ()> {
        self.gate
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The overlay identity of `[lo, hi]` for linearizable multi-shard
    /// reads (see [`OverlayStamp`]). Capture it **before** planning the
    /// visit (it must precede the table read the plan derives from) and
    /// compare after the snapshot transaction.
    pub(crate) fn overlay_stamp(&self, lo: u64, hi: u64) -> OverlayStamp {
        let set = self.overlays_read();
        OverlayStamp {
            overlays: set
                .inflight
                .iter()
                .filter(|m| m.lo <= hi && lo <= m.hi)
                // The aborting bit rides along: reversing a migration's
                // drain direction mid-read must invalidate the stamp just
                // like the overlay appearing or vanishing would.
                .map(|m| (m.id << 1) | m.aborting.load(Ordering::Acquire) as u64)
                .collect(),
            completed: set.completed_overlapping(lo, hi),
        }
    }

    /// Installs a migration overlay for `[lo, hi]`, a suffix of `src`'s
    /// owned interval, headed for `dst`. Fails in hash mode, when either
    /// slot already participates in an in-flight migration, when the
    /// geometry is wrong, or when the transfer would leave `dst` owning a
    /// non-contiguous key set.
    ///
    /// Disjointness: in-flight migrations move suffixes of **distinct**
    /// source intervals (the slot-busy check rejects a shared source or
    /// destination), so their key ranges can never overlap — which is
    /// what lets reads stamp only the overlays over their own range.
    pub(crate) fn begin_migration(
        &self,
        src: usize,
        dst: usize,
        lo: u64,
    ) -> Result<Arc<MigrationState>, RebalanceError> {
        if self.mode != Partitioning::Range {
            return Err(RebalanceError::HashPartitioning);
        }
        let slots = self.shards();
        if src >= slots || dst >= slots || src == dst {
            return Err(RebalanceError::BadShard);
        }
        // Exclusive gate: after this returns, every in-flight write that
        // routed under the previous overlay view has committed, so the
        // chunk mover can trust that all in-range writes go through the
        // new overlay.
        let _g = self
            .gate
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut set = self
            .overlays
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if set
            .inflight
            .iter()
            .any(|m| [m.src, m.dst].iter().any(|&s| s == src || s == dst))
        {
            return Err(RebalanceError::SlotBusy);
        }
        let table = self.routing();
        let (slo, shi) = table
            .interval_of(src)
            .ok_or(RebalanceError::NothingToMove)?;
        if !(slo..=shi).contains(&lo) {
            return Err(RebalanceError::BadSplitKey);
        }
        // dst must stay contiguous: it owns nothing, or its interval abuts
        // the migrating range (shi <= u64::MAX - 1, so shi + 1 is safe).
        if let Some((dlo, dhi)) = table.interval_of(dst) {
            let abuts = dlo == shi + 1 || (lo > 0 && dhi == lo - 1);
            if !abuts {
                return Err(RebalanceError::NonAdjacent);
            }
        }
        debug_assert!(
            set.inflight.iter().all(|m| shi < m.lo || m.hi < lo),
            "slot-disjoint migrations must be range-disjoint"
        );
        set.next_id += 1;
        let m = Arc::new(MigrationState {
            id: set.next_id,
            src,
            dst,
            lo,
            hi: shi,
            frontier: AtomicU64::new(lo),
            moved: AtomicU64::new(0),
            write_lock: Mutex::new(()),
            aborting: AtomicBool::new(false),
            stalls: AtomicU32::new(0),
        });
        let at = set.inflight.partition_point(|o| o.lo < lo);
        set.inflight.insert(at, m.clone());
        set.peak_inflight = set.peak_inflight.max(set.inflight.len() as u64);
        Ok(m)
    }

    /// The in-flight overlay with migration id `id`, if any.
    pub(crate) fn overlay_by_id(&self, id: u64) -> Option<Arc<MigrationState>> {
        self.overlays_read()
            .inflight
            .iter()
            .find(|m| m.id == id)
            .cloned()
    }

    /// Installs the post-migration table (epoch + 1), removes `m` from
    /// the overlay set and logs its range in the completion log. The
    /// caller must have fully drained `[m.lo, m.hi]` out of the source
    /// list first. Returns the new epoch.
    ///
    /// # Errors
    ///
    /// [`RebalanceError::NoSuchMigration`] if `m` is no longer installed —
    /// e.g. a concurrent [`Router::cancel_migration`] already removed it.
    /// The table is untouched in that case.
    pub(crate) fn complete_migration(
        &self,
        m: &Arc<MigrationState>,
    ) -> Result<u64, RebalanceError> {
        // Exclusive gate: writes that routed under the overlay have
        // committed before ownership flips; later writes route directly
        // to the destination.
        let _g = self
            .gate
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut set = self
            .overlays
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let at = set
            .inflight
            .iter()
            .position(|cur| Arc::ptr_eq(cur, m))
            .ok_or(RebalanceError::NoSuchMigration)?;
        set.inflight.remove(at);
        set.log_completion(m.lo, m.hi);
        let mut table = self
            .table
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let next = table.transferred(m.lo, m.hi, m.src, m.dst);
        let epoch = next.epoch;
        *table = Arc::new(next);
        Ok(epoch)
    }

    /// Removes `m` from the overlay set **without** flipping the routing
    /// table: ownership of `[m.lo, m.hi]` stays with `m.src`. The caller
    /// (the store's migration abort) must have moved every in-range key
    /// back into the source list first. The removal changes the overlay
    /// stamp of any read overlapping the range, forcing those reads to
    /// retry against the restored single-list placement.
    ///
    /// # Errors
    ///
    /// [`RebalanceError::NoSuchMigration`] if `m` is not installed.
    pub(crate) fn cancel_migration(&self, m: &Arc<MigrationState>) -> Result<(), RebalanceError> {
        // Exclusive gate, like completion: in-flight writes that routed
        // under the overlay commit before it vanishes, and later writes
        // route directly to the (unchanged) table owner.
        let _g = self
            .gate
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut set = self
            .overlays
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let at = set
            .inflight
            .iter()
            .position(|cur| Arc::ptr_eq(cur, m))
            .ok_or(RebalanceError::NoSuchMigration)?;
        set.inflight.remove(at);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_mode_is_contiguous_and_total() {
        let r = Router::new(Partitioning::Range, 8, 1 << 20);
        let mut last = 0;
        for k in (0..(1u64 << 20)).step_by(997) {
            let s = r.shard_of(k);
            assert!(s < 8);
            assert!(s >= last, "shard ids must be monotone in the key");
            last = s;
        }
        // Keys beyond the declared key space clamp to the last shard.
        assert_eq!(r.shard_of(u64::MAX - 1), 7);
    }

    #[test]
    fn hash_mode_spreads_sequential_keys() {
        let r = Router::new(Partitioning::Hash, 8, 1 << 20);
        let mut hit = [false; 8];
        for k in 0..64u64 {
            hit[r.shard_of(k)] = true;
        }
        assert!(
            hit.iter().all(|h| *h),
            "64 sequential keys must touch all 8 shards"
        );
    }

    #[test]
    fn range_queries_visit_overlapping_shards_only() {
        let r = Router::new(Partitioning::Range, 4, 1000);
        assert_eq!(r.shards_for_range(0, 999), vec![0, 1, 2, 3]);
        assert_eq!(r.shards_for_range(250, 499), vec![1]);
        assert_eq!(r.shards_for_range(5, 3), Vec::<usize>::new());
        let rh = Router::new(Partitioning::Hash, 4, 1000);
        assert_eq!(rh.shards_for_range(250, 499), vec![0, 1, 2, 3]);
        assert_eq!(rh.shards_for_range(5, 3), Vec::<usize>::new());
    }

    #[test]
    fn intervals_tile_the_keyspace() {
        let r = Router::new(Partitioning::Range, 5, 100);
        let mut next = 0u64;
        for s in 0..5 {
            let (lo, hi) = r.shard_interval(s).unwrap();
            assert_eq!(lo, next);
            assert!(hi >= lo);
            next = hi + 1;
        }
        assert!(Router::new(Partitioning::Hash, 5, 100)
            .shard_interval(2)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Router::new(Partitioning::Hash, 0, 100);
    }

    #[test]
    fn split_then_merge_roundtrips_the_table() {
        let r = Router::new(Partitioning::Range, 2, 1000);
        assert_eq!(r.epoch(), 0);
        // Split shard 0's [0, 499] at 250 into a fresh slot.
        let s = r.add_slot();
        assert_eq!(s, 2);
        let m = r.begin_migration(0, 2, 250).expect("valid split");
        assert_eq!((m.lo, m.hi), (250, 499));
        assert_eq!(r.shard_of(300), 0, "ownership flips only at completion");
        assert!(r.migration().is_some());
        assert_eq!(r.complete_migration(&m).unwrap(), 1);
        assert_eq!(r.shard_of(300), 2);
        assert_eq!(r.shard_of(200), 0);
        assert_eq!(r.shard_of(700), 1);
        assert_eq!(r.shards_for_range(0, 999), vec![0, 2, 1]);
        assert!(r.migration().is_none());
        // Merge slot 2 back into slot 0 (adjacent on the left).
        let m = r.begin_migration(2, 0, 250).expect("valid merge");
        assert_eq!(r.complete_migration(&m).unwrap(), 2);
        assert_eq!(r.shard_of(300), 0);
        assert_eq!(r.shard_interval(2), None, "slot 2 owns nothing now");
        assert_eq!(
            r.routing().intervals(),
            vec![(0, 0, 499), (1, 500, u64::MAX - 1)],
            "coalesced back to two intervals"
        );
    }

    #[test]
    fn migration_rejects_bad_geometry() {
        let r = Router::new(Partitioning::Range, 4, 1000);
        assert!(matches!(
            r.begin_migration(0, 0, 10),
            Err(RebalanceError::BadShard)
        ));
        assert!(matches!(
            r.begin_migration(0, 9, 10),
            Err(RebalanceError::BadShard)
        ));
        assert!(matches!(
            r.begin_migration(0, 2, 100),
            Err(RebalanceError::NonAdjacent),
        ));
        assert!(matches!(
            r.begin_migration(0, 1, 900),
            Err(RebalanceError::BadSplitKey)
        ));
        let m = r.begin_migration(0, 1, 100).expect("suffix into neighbour");
        // A second migration sharing either slot is refused...
        for (src, dst, lo) in [(1, 2, 300), (0, 3, 100)] {
            assert!(matches!(
                r.begin_migration(src, dst, lo),
                Err(RebalanceError::SlotBusy)
            ));
        }
        // ...but a slot-disjoint one runs concurrently.
        let m2 = r.begin_migration(2, 3, 600).expect("disjoint migration");
        assert_eq!(r.migrations().len(), 2);
        assert_eq!(r.peak_concurrent_migrations(), 2);
        r.complete_migration(&m).unwrap();
        r.complete_migration(&m2).unwrap();
        assert_eq!(r.shard_of(150), 1);
        assert_eq!(r.shard_of(650), 3);
        let rh = Router::new(Partitioning::Hash, 4, 1000);
        assert!(matches!(
            rh.begin_migration(0, 1, 10),
            Err(RebalanceError::HashPartitioning)
        ));
    }

    /// The acceptance property of the range-scoped stamp: a read over one
    /// overlay's range must not retry when a *disjoint* overlay begins or
    /// completes — only events overlapping its own range move the stamp.
    #[test]
    fn stamp_ignores_disjoint_overlay_flips() {
        let r = Router::new(Partitioning::Range, 4, 1000);
        let a = r.begin_migration(0, 1, 100).expect("overlay A [100,249]");
        let before = r.overlay_stamp(120, 200);
        // Overlay B over a disjoint range begins and completes: the
        // A-range stamp must not move.
        let b = r.begin_migration(2, 3, 600).expect("overlay B [600,749]");
        assert_eq!(r.overlay_stamp(120, 200), before, "B began: no move");
        r.complete_migration(&b).unwrap();
        assert_eq!(r.overlay_stamp(120, 200), before, "B completed: no move");
        // A stamp straddling B's range does see both events.
        assert_ne!(r.overlay_stamp(120, 700), r.overlay_stamp(120, 200));
        // Completing A moves the A-range stamp (overlay gone AND the
        // completion log now overlaps).
        r.complete_migration(&a).unwrap();
        let after = r.overlay_stamp(120, 200);
        assert_ne!(after, before);
        // Re-beginning an identical-looking migration yields a fresh id:
        // no ABA back to any earlier stamp.
        let a2 = r.begin_migration(1, 0, 100).expect("merge back");
        r.complete_migration(&a2).unwrap();
        let a3 = r.begin_migration(0, 1, 100).expect("same shape as A");
        assert_ne!(r.overlay_stamp(120, 200), before);
        r.complete_migration(&a3).unwrap();
    }

    /// Cancellation semantics: the overlay vanishes but ownership never
    /// flips — and the aborting bit moves the stamp *before* removal, so
    /// a read that raced the abort is forced to retry.
    #[test]
    fn cancel_removes_the_overlay_without_flipping_the_table() {
        let r = Router::new(Partitioning::Range, 2, 1000);
        let s = r.add_slot();
        let m = r.begin_migration(0, s, 250).expect("valid split");
        assert!(r.overlay_by_id(m.id).is_some());
        let clean = r.overlay_stamp(250, 499);
        // Flagging the overlay as aborting flips the stamp's low bit even
        // before removal: mid-abort stamped reads can't validate.
        m.aborting.store(true, Ordering::Release);
        let aborting = r.overlay_stamp(250, 499);
        assert_ne!(aborting, clean);
        r.cancel_migration(&m).expect("installed overlay cancels");
        assert_eq!(r.epoch(), 0, "cancel must not flip the routing table");
        assert_eq!(r.shard_of(300), 0, "ownership stays with the source");
        assert!(r.migration().is_none());
        assert!(r.overlay_by_id(m.id).is_none());
        let gone = r.overlay_stamp(250, 499);
        assert!(gone != clean && gone != aborting, "removal moves the stamp");
        // Gone means gone: double-cancel and complete-after-cancel both
        // report NoSuchMigration, and the table stays untouched.
        assert!(matches!(
            r.cancel_migration(&m),
            Err(RebalanceError::NoSuchMigration)
        ));
        assert!(matches!(
            r.complete_migration(&m),
            Err(RebalanceError::NoSuchMigration)
        ));
        assert_eq!(r.epoch(), 0);
        // The slots are immediately reusable, under a fresh id (no ABA).
        let m2 = r.begin_migration(0, s, 250).expect("slots free again");
        assert_ne!(m2.id, m.id);
        assert_eq!(r.complete_migration(&m2).unwrap(), 1);
        assert_eq!(r.shard_of(300), s);
    }

    /// The completion log is an exact interval tree: overlapping
    /// completions overwrite (newest seq wins on the overlap), while
    /// ranges no completion ever covered always answer 0 — there is no
    /// cap whose overflow used to smear entries across the gaps.
    #[test]
    fn completion_log_is_exact_and_unbounded() {
        let mut set = OverlaySet::default();
        set.log_completion(10, 19);
        set.log_completion(30, 39);
        set.log_completion(20, 25);
        assert_eq!(set.completed_overlapping(0, 9), 0);
        assert_eq!(set.completed_overlapping(12, 14), 1);
        assert_eq!(set.completed_overlapping(25, 28), 3);
        assert_eq!(set.completed_overlapping(26, 29), 0, "the gap stays a gap");
        assert_eq!(set.completed_overlapping(30, 100), 2);
        // A later completion covering part of an old range wins there,
        // and only there.
        set.log_completion(35, 50);
        assert_eq!(set.completed_overlapping(30, 34), 2);
        assert_eq!(set.completed_overlapping(36, 60), 4);
        // Monotone: the newest logged seq is always reachable.
        assert_eq!(
            set.completed_overlapping(0, u64::MAX - 1),
            set.completed_seq
        );
    }

    /// Regression (ROADMAP carry-over): with the old 32-entry coalescing
    /// log, 100+ disjoint completed migrations overflowed the cap and the
    /// closest-gap merges swallowed the gaps between them — a read over a
    /// never-migrated range then saw its stamp move on every unrelated
    /// completion and retried for nothing. The interval tree keeps every
    /// range exact: stamps outside all migrated ranges never move.
    #[test]
    fn disjoint_completions_never_move_disjoint_stamps() {
        let r = Router::new(Partitioning::Range, 4, 1000);
        // A read range no migration will ever touch.
        let quiet_before = r.overlay_stamp(900, 950);
        let mut set = OverlaySet::default();
        for i in 0..150u64 {
            set.log_completion(1_000 + 20 * i, 1_009 + 20 * i);
        }
        // Every migrated range answers its own completion...
        assert_eq!(set.completed_overlapping(1_000, 1_009), 1);
        assert_eq!(set.completed_overlapping(1_000 + 20 * 149, 2_000_000), 150);
        // ...and every gap between them answers 0: a read outside every
        // migrated range is untouched by all 150 completions.
        for i in 0..149u64 {
            assert_eq!(
                set.completed_overlapping(1_010 + 20 * i, 1_019 + 20 * i),
                0,
                "gap {i} must stay clean after 150 disjoint completions"
            );
        }
        // End-to-end through the router: complete two real migrations on
        // disjoint ranges; the quiet range's stamp never moves.
        let m = r.begin_migration(0, 1, 100).expect("suffix migration");
        let m2 = r.begin_migration(2, 3, 600).expect("disjoint migration");
        r.complete_migration(&m).unwrap();
        r.complete_migration(&m2).unwrap();
        assert_eq!(
            r.overlay_stamp(900, 950),
            quiet_before,
            "completions on [100,249] and [600,749] must not stamp [900,950]"
        );
    }

    #[test]
    fn degenerate_key_space_still_tiles() {
        // key_space < shards: stride clamps to 1, keys 0..7 spread over
        // the slots one apiece, the tail clamps to the last slot — the
        // arithmetic router's historical behavior.
        let r = Router::new(Partitioning::Range, 8, 3);
        for s in 0..8 {
            assert!(r.shard_interval(s).is_some());
        }
        assert_eq!(r.shard_of(5), 5);
        assert_eq!(r.shard_of(u64::MAX - 1), 7);
    }
}
