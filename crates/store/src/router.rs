//! The shard router: deterministic key → shard placement plus the inverse
//! question a range query asks — *which shards can hold keys in `[lo, hi]`?*

/// How the keyspace is partitioned across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Keys scatter by a Fibonacci hash: uniform load under any key
    /// distribution, but every range query must visit every shard.
    Hash,
    /// Contiguous slices of `[0, key_space)`: a range query visits only the
    /// shards whose slice overlaps it, at the cost of load skew when the
    /// workload is skewed.
    Range,
}

/// Routes keys to shards.
///
/// # Example
///
/// ```
/// use leap_store::{Partitioning, Router};
/// let r = Router::new(Partitioning::Range, 4, 1000);
/// assert_eq!(r.shard_of(0), 0);
/// assert_eq!(r.shard_of(999), 3);
/// assert_eq!(r.shards_for_range(0, 249), vec![0]);
/// assert_eq!(r.shards_for_range(200, 600), vec![0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Router {
    mode: Partitioning,
    shards: usize,
    /// Width of each contiguous slice (range mode).
    stride: u64,
}

impl Router {
    /// Creates a router over `shards` shards. `key_space` bounds the keys
    /// the contiguous mode slices evenly; keys at or beyond it fall in the
    /// trailing shards (exactly the last shard whenever
    /// `key_space >= shards`, the non-degenerate configuration). Hash mode
    /// ignores it.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `key_space` is zero.
    pub fn new(mode: Partitioning, shards: usize, key_space: u64) -> Self {
        assert!(shards > 0, "a store needs at least one shard");
        assert!(key_space > 0, "key_space must be non-zero");
        Router {
            mode,
            shards,
            stride: (key_space / shards as u64).max(1),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The partitioning mode.
    pub fn mode(&self) -> Partitioning {
        self.mode
    }

    /// The shard owning `key`. Total: every key maps to exactly one shard.
    pub fn shard_of(&self, key: u64) -> usize {
        match self.mode {
            Partitioning::Hash => {
                // Fibonacci multiply then fold the high bits in, so both
                // low- and high-entropy keys spread.
                let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ((h ^ (h >> 32)) % self.shards as u64) as usize
            }
            Partitioning::Range => ((key / self.stride) as usize).min(self.shards - 1),
        }
    }

    /// Every shard that may hold a key in `[lo, hi]`, ascending. Empty when
    /// `lo > hi`; otherwise exactly the overlapping shards — no more, no
    /// fewer (hash mode scatters, so every shard overlaps every range).
    pub fn shards_for_range(&self, lo: u64, hi: u64) -> Vec<usize> {
        if lo > hi {
            return Vec::new();
        }
        match self.mode {
            Partitioning::Hash => (0..self.shards).collect(),
            Partitioning::Range => (self.shard_of(lo)..=self.shard_of(hi)).collect(),
        }
    }

    /// The inclusive key interval shard `s` owns in range mode (`None` in
    /// hash mode, where ownership is scattered).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of bounds.
    pub fn shard_interval(&self, s: usize) -> Option<(u64, u64)> {
        assert!(s < self.shards, "shard {s} out of bounds");
        match self.mode {
            Partitioning::Hash => None,
            Partitioning::Range => {
                let lo = self.stride * s as u64;
                let hi = if s == self.shards - 1 {
                    u64::MAX - 1
                } else {
                    self.stride * (s as u64 + 1) - 1
                };
                Some((lo, hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_mode_is_contiguous_and_total() {
        let r = Router::new(Partitioning::Range, 8, 1 << 20);
        let mut last = 0;
        for k in (0..(1u64 << 20)).step_by(997) {
            let s = r.shard_of(k);
            assert!(s < 8);
            assert!(s >= last, "shard ids must be monotone in the key");
            last = s;
        }
        // Keys beyond the declared key space clamp to the last shard.
        assert_eq!(r.shard_of(u64::MAX - 1), 7);
    }

    #[test]
    fn hash_mode_spreads_sequential_keys() {
        let r = Router::new(Partitioning::Hash, 8, 1 << 20);
        let mut hit = [false; 8];
        for k in 0..64u64 {
            hit[r.shard_of(k)] = true;
        }
        assert!(
            hit.iter().all(|h| *h),
            "64 sequential keys must touch all 8 shards"
        );
    }

    #[test]
    fn range_queries_visit_overlapping_shards_only() {
        let r = Router::new(Partitioning::Range, 4, 1000);
        assert_eq!(r.shards_for_range(0, 999), vec![0, 1, 2, 3]);
        assert_eq!(r.shards_for_range(250, 499), vec![1]);
        assert_eq!(r.shards_for_range(5, 3), Vec::<usize>::new());
        let rh = Router::new(Partitioning::Hash, 4, 1000);
        assert_eq!(rh.shards_for_range(250, 499), vec![0, 1, 2, 3]);
        assert_eq!(rh.shards_for_range(5, 3), Vec::<usize>::new());
    }

    #[test]
    fn intervals_tile_the_keyspace() {
        let r = Router::new(Partitioning::Range, 5, 100);
        let mut next = 0u64;
        for s in 0..5 {
            let (lo, hi) = r.shard_interval(s).unwrap();
            assert_eq!(lo, next);
            assert!(hi >= lo);
            next = hi + 1;
        }
        assert!(Router::new(Partitioning::Hash, 5, 100)
            .shard_interval(2)
            .is_none());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        Router::new(Partitioning::Hash, 0, 100);
    }
}
