//! An exact interval tree over completed-migration ranges, replacing the
//! bounded coalescing log the router used to keep.
//!
//! The old log capped itself at 32 entries and, on overflow, merged the
//! two closest entries **across the gap between them** — conservative for
//! stamp validity (a merge can only widen coverage), but after enough
//! disjoint migrations the merged spans swallowed the gaps: a read over a
//! never-migrated range would see its stamp's `completed` component move
//! whenever an unrelated completion landed, and retry for nothing.
//!
//! This tree stores the ranges exactly. Intervals are kept **pairwise
//! disjoint** by construction: a new completion (which always carries the
//! newest sequence number) overwrites the overlapped parts of older
//! entries and the survivors are re-inserted as clipped fragments, each
//! keeping its own sequence number. Disjointness makes the ordered map a
//! true interval tree — sorted by `lo`, the `hi` endpoints are strictly
//! increasing too, so a stabbing query walks backward from the last entry
//! starting at-or-before the probe's `hi` and stops at the first entry
//! ending below the probe's `lo`: `O(log n + k)` for `k` overlaps, with
//! no false positives, ever.

use std::collections::BTreeMap;

/// Disjoint `[lo, hi] -> seq` intervals with last-writer-wins insertion
/// and an exact max-seq stabbing query. Sequence numbers must be inserted
/// in strictly increasing order (the router's completion counter).
#[derive(Debug, Default)]
pub(crate) struct CompletionTree {
    /// `lo -> (hi, seq)`; invariant: keys ascend, intervals are pairwise
    /// disjoint, so `hi` values ascend with the keys.
    map: BTreeMap<u64, (u64, u64)>,
}

impl CompletionTree {
    /// Records that `[lo, hi]` completed with sequence number `seq`,
    /// which must exceed every previously inserted sequence number. Older
    /// entries overlapped by the new range are clipped to their
    /// non-overlapping fragments (keeping their own seq).
    pub(crate) fn insert(&mut self, lo: u64, hi: u64, seq: u64) {
        debug_assert!(lo <= hi);
        debug_assert!(
            self.map.values().all(|&(_, s)| s < seq),
            "completion sequence numbers are monotone"
        );
        // Disjoint + sorted: the overlapped entries are a contiguous run
        // ending at the last entry with key <= hi.
        let overlapped: Vec<u64> = self
            .map
            .range(..=hi)
            .rev()
            .take_while(|&(_, &(chi, _))| chi >= lo)
            .map(|(&clo, _)| clo)
            .collect();
        for clo in overlapped {
            // INVARIANT: `clo` came out of `self.map` in the scan above and
            // nothing removed it since (we hold `&mut self`).
            let (chi, cseq) = self.map.remove(&clo).expect("key just enumerated");
            if clo < lo {
                self.map.insert(clo, (lo - 1, cseq));
            }
            if chi > hi {
                self.map.insert(hi + 1, (chi, cseq));
            }
        }
        self.map.insert(lo, (hi, seq));
    }

    /// The newest sequence number among intervals overlapping `[lo, hi]`
    /// (0 if none does). Exact: a range no completion ever covered
    /// returns 0 no matter how many disjoint completions are stored.
    pub(crate) fn max_seq_overlapping(&self, lo: u64, hi: u64) -> u64 {
        let mut best = 0;
        for (_, &(chi, seq)) in self.map.range(..=hi).rev() {
            if chi < lo {
                // Disjointness: every earlier entry ends even lower.
                break;
            }
            best = best.max(seq);
        }
        best
    }

    /// Number of stored (fragment) intervals.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// The stored intervals as `(lo, hi, seq)`, ascending.
    #[cfg(test)]
    pub(crate) fn intervals(&self) -> Vec<(u64, u64, u64)> {
        self.map
            .iter()
            .map(|(&lo, &(hi, seq))| (lo, hi, seq))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_inserts_stay_exact() {
        let mut t = CompletionTree::default();
        for i in 0..200u64 {
            t.insert(i * 10, i * 10 + 5, i + 1);
        }
        assert_eq!(t.len(), 200, "no coalescing, no cap");
        // Every stored range answers with its own seq...
        assert_eq!(t.max_seq_overlapping(40, 45), 5);
        assert_eq!(t.max_seq_overlapping(1990, 1995), 200);
        // ...and every gap answers 0 — the property the capped log lost.
        for i in 0..199u64 {
            assert_eq!(t.max_seq_overlapping(i * 10 + 6, i * 10 + 9), 0);
        }
        assert_eq!(t.max_seq_overlapping(5_000, 6_000), 0);
    }

    #[test]
    fn overlaps_clip_older_entries() {
        let mut t = CompletionTree::default();
        t.insert(10, 19, 1);
        t.insert(30, 39, 2);
        // Covers the right half of the first and the left half of the
        // second: both survive as clipped fragments with their own seq.
        t.insert(15, 34, 3);
        assert_eq!(t.intervals(), vec![(10, 14, 1), (15, 34, 3), (35, 39, 2)]);
        assert_eq!(t.max_seq_overlapping(10, 12), 1);
        assert_eq!(t.max_seq_overlapping(12, 16), 3);
        assert_eq!(t.max_seq_overlapping(36, 40), 2);
        assert_eq!(t.max_seq_overlapping(40, 100), 0);
        // A middle overwrite splits one entry into three.
        t.insert(20, 25, 4);
        assert_eq!(
            t.intervals(),
            vec![
                (10, 14, 1),
                (15, 19, 3),
                (20, 25, 4),
                (26, 34, 3),
                (35, 39, 2)
            ]
        );
        // Full cover swallows everything.
        t.insert(0, 100, 5);
        assert_eq!(t.intervals(), vec![(0, 100, 5)]);
        assert_eq!(t.max_seq_overlapping(50, 60), 5);
    }

    #[test]
    fn adjacency_does_not_merge() {
        let mut t = CompletionTree::default();
        t.insert(10, 19, 1);
        t.insert(20, 29, 2);
        assert_eq!(t.len(), 2, "adjacent ranges keep distinct seqs");
        assert_eq!(t.max_seq_overlapping(19, 20), 2);
        assert_eq!(t.max_seq_overlapping(15, 18), 1);
    }

    #[test]
    fn endpoint_extremes_are_safe() {
        let mut t = CompletionTree::default();
        t.insert(0, u64::MAX - 1, 1);
        t.insert(5, 9, 2);
        assert_eq!(
            t.intervals(),
            vec![(0, 4, 1), (5, 9, 2), (10, u64::MAX - 1, 1)]
        );
        assert_eq!(t.max_seq_overlapping(0, 0), 1);
        assert_eq!(t.max_seq_overlapping(u64::MAX - 1, u64::MAX - 1), 1);
    }
}
