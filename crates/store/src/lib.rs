//! # leap-store — LeapStore, a sharded range-store over Leap-List shards
//!
//! The paper's closing ambition (§4) is an in-memory database whose index
//! structures are Leap-Lists; its headline primitive is a transaction that
//! spans *multiple* lists atomically. This crate builds the service layer
//! between the data structure and that goal: a store that partitions the
//! `u64` keyspace across `N` [`leaplist::LeapListLt`] shards sharing **one
//! transactional domain**, and keeps the paper's guarantees at store
//! scope:
//!
//! * **Cross-shard atomic batches** — [`LeapStore::multi_put`] /
//!   [`LeapStore::apply`] commit through one multi-list transaction
//!   (`apply_batch_grouped`), so concurrent readers see all of a batch or
//!   none of it — **including batches that map several keys to one shard**:
//!   each shard's ops become one multi-op chain-rebuild plan, so there is
//!   no serialized slow path.
//! * **Linearizable cross-shard range queries** — [`LeapStore::range`]
//!   assembles per-shard snapshots *inside one transaction*
//!   ([`leaplist::LeapListLt::range_query_group`]): the merged result is a
//!   single consistent snapshot of the whole keyspace.
//! * **Configurable placement** — [`Router`] supports hash and
//!   contiguous-range partitioning; range mode lets a range query visit
//!   only the overlapping shards.
//! * **Live resharding** — range-mode placement is an epoch-versioned
//!   routing table ([`RoutingEpoch`]): [`LeapStore::split_shard`] /
//!   [`LeapStore::merge_shards`] migrate key sub-ranges between shards in
//!   bounded single-transaction chunks while reads and writes proceed,
//!   driven deterministically ([`LeapStore::rebalance_step`]) or by a
//!   background [`Rebalancer`] acting on a [`RebalancePolicy`].
//! * **Paged scans** — [`LeapStore::scan`] returns a [`Cursor`] yielding
//!   bounded pages, each one linearizable transaction with a resume key:
//!   huge scans without huge transactions, stable across resharding.
//! * **Snapshot-isolated scans** — [`LeapStore::scan_snapshot`] returns a
//!   [`SnapshotCursor`] that pins the global commit timestamp once and
//!   serves **every** page from the shards' version bundles at that
//!   timestamp: the whole multi-page scan is one consistent snapshot,
//!   retry-free under concurrent commits and in-flight migrations.
//! * **Operation batching** — [`Batcher`] flat-combines single-key ops
//!   from many threads into grouped multi-list transactions, with a
//!   latency-aware adaptive window and **admission control**: a bounded
//!   queue that sheds on overflow with a typed [`StoreError::Overloaded`],
//!   never a silent block.
//! * **Fault model & graceful degradation** — a deterministic, seeded
//!   fault-injection subsystem ([`leap_fault`], zero-cost when unarmed)
//!   drives the recovery machinery: migration abort / forward completion
//!   ([`LeapStore::abort_migration`]) with a stuck-migration watchdog,
//!   bounded-retry ops ([`LeapStore::put_within`] and friends) returning
//!   typed [`StoreError::Timeout`]s instead of livelocking, and a
//!   [`Rebalancer`] that records worker panics and reports its own death
//!   ([`RebalancerDied`]) instead of swallowing it.
//! * **Observability** — [`LeapStore::stats`] exposes per-shard op and
//!   key counters, routing epoch and migration progress, the shared
//!   domain's commit/abort counters with **abort-cause attribution**
//!   ([`leap_stm::StatsSnapshot`]), per-op-kind latency histograms, the
//!   per-transaction retry histogram and a structured migration/drain
//!   event timeline ([`StoreObs`], on by default) — renderable as JSON
//!   ([`StoreStats::to_json`]) or Prometheus text
//!   ([`StoreStats::to_prometheus`]).
//!
//! # Quickstart
//!
//! ```
//! use leap_store::{LeapStore, Partitioning, StoreConfig};
//!
//! let store: LeapStore<String> =
//!     LeapStore::new(StoreConfig::new(4, Partitioning::Range).with_key_space(10_000));
//! store.put(1001, "alice".into());
//! store.put(7002, "bob".into());
//! store.multi_put(&[(1002, "carol".into()), (7003, "dave".into())]); // atomic
//! let page = store.range(1000, 2000); // one consistent snapshot
//! assert_eq!(page.len(), 2);
//! assert_eq!(store.stats().shards.len(), 4);
//! ```

#![deny(missing_docs)]

mod batch;
mod cursor;
mod error;
mod interval;
mod obs;
mod rebalance;
mod router;
mod stats;
mod store;
mod subspace;

pub use batch::{Batcher, BatcherStats, PoisonedOp};
pub use cursor::{Cursor, SnapshotCursor, DEFAULT_PAGE_SIZE};
pub use error::StoreError;
pub use obs::{ObsSnapshot, StoreObs, GET_SAMPLE_PERIOD};
pub use rebalance::{
    AbortOutcome, RebalanceAction, RebalanceError, RebalancePolicy, Rebalancer, RebalancerDied,
};
pub use router::{MigrationView, Partitioning, Router, RoutingEpoch};
pub use stats::{ShardStats, StoreStats};
pub use store::{LeapStore, StoreConfig};
pub use subspace::{Subspace, SubspaceStats, MAX_PAYLOAD, PAYLOAD_BITS, TAG_BITS};

// Re-exported so store users can build mixed batches without importing
// leaplist directly.
pub use leaplist::BatchOp;
// Re-exported so chaos tests can build fault plans and bounded-retry
// policies without importing the leaf crates directly.
pub use leap_fault::{FaultInjector, FaultPlan, FaultPoint};
pub use leap_stm::RetryPolicy;
