//! Store-level observability: per-op-kind latency histograms, the shared
//! STM retry histogram, and the migration/drain event timeline — all
//! registered in one [`leap_obs::Registry`] so a single scrape (JSON or
//! Prometheus) covers the whole store.
//!
//! Enabled by default ([`crate::StoreConfig::obs`]); when disabled the
//! store carries no instruments at all and every hot path's overhead is a
//! single predictable `Option` branch.
//!
//! # Sampling
//!
//! Point lookups run in well under 100 ns, so timing every one of them
//! (two `Instant::now` calls, ~40 ns) would dominate the op itself.
//! [`sample_get`] therefore thins the get path to one timed call per
//! period via a thread-local tick; the histogram still converges on the
//! true distribution while the mean overhead stays in the low
//! single-percent range. The period is configurable
//! ([`crate::StoreConfig::with_sample_period`], default
//! [`GET_SAMPLE_PERIOD`]; `1` = every op, `0` = never) and doubles as the
//! leap-trace head-sampling rate. Every other op kind is
//! microsecond-scale (each commits at least one transaction) and records
//! every sample.
//!
//! # Series names
//!
//! Histograms: `store_op_get_ns`, `store_op_put_ns`, `store_op_delete_ns`,
//! `store_op_apply_ns`, `store_op_range_ns`, `store_op_scan_page_ns`,
//! `store_op_len_ns` (the `count_range`/`len` snapshot count walks),
//! `store_op_snapshot_page_ns` (pinned-timestamp pages served by
//! [`crate::SnapshotCursor`]) and `stm_txn_retries` (attempts per
//! committed transaction, via [`leap_stm::StmRecorder`]). Event ring:
//! `store_events`.

use leap_obs::{EventRing, HistSnapshot, Histogram, Json, Registry, RingSnapshot};
use std::cell::Cell;
use std::sync::Arc;

/// Default get-sampling period: one get in this many is timed (see the
/// module docs).
pub const GET_SAMPLE_PERIOD: u32 = 32;

thread_local! {
    static GET_TICK: Cell<u32> = const { Cell::new(0) };
}

/// Whether this call of the get path should be timed: true once per
/// `period` calls on each thread (`1` = always, `0` = never).
#[inline]
pub(crate) fn sample_get(period: u32) -> bool {
    if period == 0 {
        return false;
    }
    GET_TICK.with(|t| {
        let v = t.get().wrapping_add(1);
        t.set(v);
        v % period == 0
    })
}

/// The op-kind order every snapshot reports, paired with each kind's
/// registry series name.
const OP_KINDS: [(&str, &str); 8] = [
    ("get", "store_op_get_ns"),
    ("put", "store_op_put_ns"),
    ("delete", "store_op_delete_ns"),
    ("apply", "store_op_apply_ns"),
    ("range", "store_op_range_ns"),
    ("scan_page", "store_op_scan_page_ns"),
    ("len", "store_op_len_ns"),
    ("snapshot_page", "store_op_snapshot_page_ns"),
];

/// The store's instrument set (see the module docs for the series names).
/// Held behind `Arc` by the store; the [`crate::Batcher`] and background
/// [`crate::Rebalancer`] record through the same instance.
#[derive(Debug)]
pub struct StoreObs {
    registry: Arc<Registry>,
    /// Per-op-kind latency histograms, in [`OP_KINDS`] order.
    ops: [Arc<Histogram>; 8],
    /// Attempts per committed transaction (1 = first try), recorded by
    /// the domain's [`leap_stm::StmRecorder`].
    pub(crate) txn_retries: Arc<Histogram>,
    /// The migration/drain timeline.
    events: Arc<EventRing>,
}

/// Index into [`StoreObs::ops`] per op kind (kept in [`OP_KINDS`] order).
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpKind {
    Get = 0,
    Put = 1,
    Delete = 2,
    Apply = 3,
    Range = 4,
    ScanPage = 5,
    Len = 6,
    SnapshotPage = 7,
}

impl StoreObs {
    /// A fresh instrument set with an event ring of `ring_capacity`.
    pub(crate) fn new(ring_capacity: usize) -> Self {
        let registry = Arc::new(Registry::new());
        let ops = OP_KINDS.map(|(_, series)| registry.histogram(series));
        StoreObs {
            txn_retries: registry.histogram("stm_txn_retries"),
            events: registry.ring("store_events", ring_capacity),
            ops,
            registry,
        }
    }

    /// The registry holding every series — scrape it directly via
    /// [`Registry::snapshot_json`] / [`Registry::to_prometheus`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The migration/drain event timeline.
    pub fn events(&self) -> &Arc<EventRing> {
        &self.events
    }

    /// Records one op latency sample.
    #[inline]
    pub(crate) fn record_op(&self, kind: OpKind, ns: u64) {
        self.ops[kind as usize].record(ns);
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> ObsSnapshot {
        ObsSnapshot {
            op_latency: OP_KINDS
                .iter()
                .zip(&self.ops)
                .map(|(&(kind, _), h)| (kind, h.snapshot()))
                .collect(),
            txn_retries: self.txn_retries.snapshot(),
            events: self.events.snapshot(),
        }
    }
}

/// A point-in-time copy of a store's instruments, carried by
/// [`crate::StoreStats`] when observability is enabled.
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// Per-op-kind latency snapshots, in a fixed kind order
    /// (get, put, delete, apply, range, scan_page, len, snapshot_page).
    pub op_latency: Vec<(&'static str, HistSnapshot)>,
    /// Attempts per committed transaction.
    pub txn_retries: HistSnapshot,
    /// The surviving event timeline plus the monotone dropped counter.
    pub events: RingSnapshot,
}

impl ObsSnapshot {
    /// The per-op-kind latencies as one JSON object
    /// (`{"get":{"count",..},"put":..}`).
    pub fn op_latency_json(&self) -> Json {
        Json::Obj(
            self.op_latency
                .iter()
                .map(|(kind, snap)| (kind.to_string(), snap.to_json_ns()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_ticks_once_per_period() {
        let hits = (0..(GET_SAMPLE_PERIOD * 3))
            .filter(|_| sample_get(GET_SAMPLE_PERIOD))
            .count();
        assert_eq!(hits, 3, "one sample per period per thread");
    }

    /// Satellite: the sampling knob's extremes — period 1 records every
    /// op, period 0 records none.
    #[test]
    fn sampling_rate_one_records_every_op_and_zero_none() {
        let every = (0..100).filter(|_| sample_get(1)).count();
        assert_eq!(every, 100, "period 1 = every op");
        let none = (0..100).filter(|_| sample_get(0)).count();
        assert_eq!(none, 0, "period 0 = no ops, and no tick consumed");
    }

    #[test]
    fn snapshot_reports_all_kinds_in_order() {
        let obs = StoreObs::new(16);
        obs.record_op(OpKind::Get, 100);
        obs.record_op(OpKind::Len, 5_000);
        obs.record_op(OpKind::SnapshotPage, 7_000);
        let snap = obs.snapshot();
        let kinds: Vec<&str> = snap.op_latency.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                "get",
                "put",
                "delete",
                "apply",
                "range",
                "scan_page",
                "len",
                "snapshot_page"
            ]
        );
        assert_eq!(snap.op_latency[0].1.count, 1);
        assert_eq!(snap.op_latency[6].1.max, 5_000);
        assert_eq!(snap.op_latency[7].1.max, 7_000);
        let json = snap.op_latency_json().render();
        assert!(json.contains("\"get\":{\"count\":1"), "{json}");
        // The registry carries the same series under their public names.
        let reg = obs.registry().snapshot_json().render();
        assert!(reg.contains("\"store_op_get_ns\""), "{reg}");
        assert!(reg.contains("\"stm_txn_retries\""), "{reg}");
        assert!(reg.contains("\"store_events\""), "{reg}");
    }
}
