//! Online shard migration: splitting hot shards, merging cold ones, and
//! the bounded-chunk driver that moves keys while the store serves reads
//! and writes.
//!
//! # Protocol
//!
//! A migration moves a **suffix** `[lo, hi]` of the source shard's owned
//! interval into a destination shard (a fresh slot for a split, the
//! adjacent neighbour for a merge). Several migrations may be in flight
//! at once provided they share no shard slot (which makes their key
//! ranges disjoint by construction — see `router.rs`); the step driver
//! round-robins one bounded chunk over the in-flight set, so k disjoint
//! hot ranges drain in parallel. Each migration proceeds in three phases:
//!
//! 1. **Begin** — the router installs a [`crate::MigrationView`] overlay
//!    under its exclusive writer gate: once `begin` returns, every write
//!    routes through the overlay. Table ownership does *not* change yet.
//! 2. **Drain** — [`LeapStore::rebalance_step`] moves up to
//!    `policy.chunk` keys per call: one page read off the source
//!    ([`leaplist::LeapListLt::range_page`]) followed by **one**
//!    cross-list transaction deleting the page from the source and
//!    inserting it into the destination. Readers therefore never observe
//!    a key absent or doubled; writers to the migrating range hold the
//!    same per-migration lock as the chunk mover and commit their own
//!    cross-list transactions (remove-from-source + write-destination), so
//!    a racing write can neither be clobbered by a stale chunk nor strand
//!    a second copy in the source.
//! 3. **Complete** — when a page comes back empty the range is drained;
//!    the router installs the next [`crate::RoutingEpoch`] (ownership
//!    flips to the destination) and clears the overlay, again under the
//!    exclusive writer gate. A source emptied entirely (merge) parks in
//!    the free-slot pool for the next split to reuse.
//!
//! Linearizable multi-shard reads do not lock anything: they capture the
//! **range-scoped** overlay stamp before planning, include both sides of
//! every migration overlapping their range in their single snapshot
//! transaction, and retry only if a migration *overlapping their range*
//! began or completed in between (rare lifecycle events, not per-chunk
//! events — and never events of a disjoint migration).

use crate::router::Partitioning;
use crate::store::LeapStore;
use leap_fault::FaultPoint;
use leap_obs::EventKind;
use leaplist::{BatchOp, LeapListLt};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use std::time::Duration;

/// Why a split, merge or rebalance step could not proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceError {
    /// Hash partitioning scatters keys; there are no contiguous
    /// sub-ranges to migrate.
    HashPartitioning,
    /// The source or destination slot already participates in an
    /// in-flight migration (concurrent migrations must be slot-disjoint,
    /// which keeps their key ranges disjoint by construction).
    SlotBusy,
    /// A shard index was out of bounds, or source equals destination.
    BadShard,
    /// The split key is outside the source shard's owned interval.
    BadSplitKey,
    /// The destination's owned interval is not adjacent to the migrating
    /// range (the table keeps each shard's key set contiguous).
    NonAdjacent,
    /// The source shard owns no interval (already merged away).
    NothingToMove,
    /// A [`RebalancePolicy`] field combination is rejected (see
    /// [`RebalancePolicy::validate`]); the message names the offence.
    InvalidPolicy(&'static str),
    /// The referenced migration is not installed (wrong id, already
    /// completed, or already aborted).
    NoSuchMigration,
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            RebalanceError::HashPartitioning => "hash partitioning cannot be resharded",
            RebalanceError::SlotBusy => "shard slot already participates in a migration",
            RebalanceError::BadShard => "shard index out of bounds or source == destination",
            RebalanceError::BadSplitKey => "split key outside the source shard's interval",
            RebalanceError::NonAdjacent => "destination interval not adjacent to the range",
            RebalanceError::NothingToMove => "source shard owns no interval",
            RebalanceError::InvalidPolicy(why) => return write!(f, "invalid policy: {why}"),
            RebalanceError::NoSuchMigration => "no such in-flight migration",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RebalanceError {}

/// Tuning for [`LeapStore::rebalance_step`]'s automatic decisions and for
/// the chunked drain.
///
/// The split/merge thresholds act on a per-shard **load score**, not the
/// raw key count: `score = keys + op_weight × op_rate`, where `op_rate`
/// is a decaying average of the operations (gets, puts, deletes, range
/// visits, batch parts) the shard served since the previous policy
/// census. A read-hot shard therefore splits even when its key count is
/// unremarkable — the signal [`crate::ShardStats`] always carried but
/// the policy previously ignored.
#[derive(Debug, Clone)]
pub struct RebalancePolicy {
    /// Maximum keys moved per [`LeapStore::rebalance_step`] call — the
    /// bound on how long the per-migration write lock is held.
    pub chunk: usize,
    /// Auto-split a shard whose load score exceeds `split_ratio ×` the
    /// mean over interval-owning shards. Must exceed both `1.0` and
    /// `2 × merge_ratio` (see [`RebalancePolicy::validate`]).
    pub split_ratio: f64,
    /// Auto-merge two adjacent shards whose combined load score is below
    /// `merge_ratio ×` the mean.
    pub merge_ratio: f64,
    /// Never auto-split a shard holding fewer keys than this.
    pub min_split_keys: usize,
    /// Never auto-split once this many shards own intervals.
    pub max_shards: usize,
    /// Weight of the op-rate term in the load score (`0.0` restores the
    /// pure key-count policy).
    pub op_weight: f64,
    /// Most migrations the policy keeps in flight at once; the drain
    /// round-robins over them. Explicit [`LeapStore::split_shard`] /
    /// [`LeapStore::merge_shards`] calls are not bounded by this — only
    /// by slot-disjointness.
    pub max_concurrent_migrations: usize,
    /// Stuck-migration watchdog: once a migration's frontier has failed to
    /// advance for this many consecutive drain steps (e.g. injected chunk
    /// faults), [`LeapStore::rebalance_step`] force-resolves it —
    /// completing it forward if its source range is already drained,
    /// rolling it back otherwise — so a wedged migration can never pin its
    /// slots (and [`RebalanceError::SlotBusy`]) forever. `0` disables the
    /// watchdog.
    pub watchdog_stalls: u32,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            chunk: 128,
            split_ratio: 2.0,
            merge_ratio: 0.5,
            min_split_keys: 64,
            max_shards: 64,
            op_weight: 0.25,
            max_concurrent_migrations: 4,
            watchdog_stalls: 8,
        }
    }
}

impl RebalancePolicy {
    /// Checks the field combination for configurations that cannot
    /// converge. [`LeapStore::new`] calls this and panics on `Err`, so a
    /// store can never be constructed with a thrash-prone policy.
    ///
    /// The load-bearing rule is `split_ratio > 2 × merge_ratio`: a merged
    /// pair's score is below `merge_ratio × mean`, so under the rule it
    /// can never immediately exceed `split_ratio × mean'` again, and a
    /// split shard's halves (whose combined score *exceeded*
    /// `split_ratio × mean`) can never immediately re-qualify as a merge
    /// pair — the split/merge cycle that livelocks
    /// [`LeapStore::rebalance_until_idle`] on borderline layouts.
    ///
    /// # Errors
    ///
    /// [`RebalanceError::InvalidPolicy`] naming the offending rule.
    pub fn validate(&self) -> Result<(), RebalanceError> {
        if self.chunk == 0 {
            return Err(RebalanceError::InvalidPolicy("chunk must be at least 1"));
        }
        if !self.split_ratio.is_finite() || self.split_ratio <= 1.0 {
            return Err(RebalanceError::InvalidPolicy(
                "split_ratio must be finite and greater than 1.0",
            ));
        }
        if !self.merge_ratio.is_finite() || self.merge_ratio < 0.0 {
            return Err(RebalanceError::InvalidPolicy(
                "merge_ratio must be finite and non-negative",
            ));
        }
        if self.split_ratio <= 2.0 * self.merge_ratio {
            return Err(RebalanceError::InvalidPolicy(
                "split_ratio must exceed 2 * merge_ratio (split/merge thresholds overlap)",
            ));
        }
        if !self.op_weight.is_finite() || self.op_weight < 0.0 {
            return Err(RebalanceError::InvalidPolicy(
                "op_weight must be finite and non-negative",
            ));
        }
        if self.max_shards == 0 {
            return Err(RebalanceError::InvalidPolicy(
                "max_shards must be at least 1",
            ));
        }
        if self.max_concurrent_migrations == 0 {
            return Err(RebalanceError::InvalidPolicy(
                "max_concurrent_migrations must be at least 1",
            ));
        }
        Ok(())
    }
}

/// What one [`LeapStore::rebalance_step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceAction {
    /// Nothing to do: no migration in flight and the load is balanced
    /// (or the store is hash-partitioned).
    Idle,
    /// Started splitting `shard` at key `at`; keys `>= at` will migrate
    /// into `dst`.
    SplitStarted {
        /// The hot shard being split.
        shard: usize,
        /// First key of the migrating upper half.
        at: u64,
        /// Destination slot.
        dst: usize,
    },
    /// Started merging `src`'s whole interval into its neighbour `dst`.
    MergeStarted {
        /// The cold shard being drained.
        src: usize,
        /// The adjacent shard absorbing it.
        dst: usize,
    },
    /// Moved `keys` keys of the in-flight migration in one transaction.
    Moved {
        /// Migration source.
        src: usize,
        /// Migration destination.
        dst: usize,
        /// Keys moved by this chunk.
        keys: usize,
    },
    /// The in-flight migration drained; routing epoch `epoch` installed.
    Completed {
        /// The new routing-table version.
        epoch: u64,
    },
    /// An injected fault dropped this step's chunk: nothing moved and the
    /// migration's stall counter grew (the watchdog force-resolves it once
    /// the counter crosses [`RebalancePolicy::watchdog_stalls`]).
    ChunkFailed {
        /// Migration source.
        src: usize,
        /// Migration destination.
        dst: usize,
        /// Consecutive no-progress steps so far.
        stalls: u32,
    },
    /// The watchdog force-resolved a stuck migration by rolling it back
    /// (forward completion reports [`RebalanceAction::Completed`] instead).
    Aborted {
        /// The aborted migration's id.
        id: u64,
        /// Keys swept from the destination back into the source.
        moved_back: u64,
    },
}

/// How [`LeapStore::abort_migration`] resolved a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortOutcome {
    /// The source range was already drained, so the cheapest safe
    /// resolution was forward: the migration completed and the routing
    /// epoch flipped.
    Completed {
        /// The new routing-table version.
        epoch: u64,
    },
    /// Destination keys were swept back into the source in bounded chunks
    /// and the overlay removed; ownership never changed.
    RolledBack {
        /// Keys moved back from the destination.
        moved_back: u64,
    },
}

impl<V: Clone + Send + Sync + 'static> LeapStore<V> {
    /// Begins splitting `shard`: keys at or above `at` (a key strictly
    /// inside the shard's owned interval) will migrate to a fresh slot,
    /// whose index is returned. The split is **online**: keys move in
    /// bounded chunks as [`LeapStore::rebalance_step`] is driven; reads
    /// and writes proceed throughout. Range partitioning only.
    pub fn split_shard(&self, shard: usize, at: u64) -> Result<usize, RebalanceError> {
        let _step = self
            .step_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.split_locked(shard, at)
    }

    fn split_locked(&self, shard: usize, at: u64) -> Result<usize, RebalanceError> {
        if self.router().mode() != Partitioning::Range {
            return Err(RebalanceError::HashPartitioning);
        }
        if shard >= self.shards() {
            return Err(RebalanceError::BadShard);
        }
        let (lo, hi) = self
            .router()
            .shard_interval(shard)
            .ok_or(RebalanceError::NothingToMove)?;
        // A split must leave both sides non-empty intervals.
        if !(lo + 1..=hi).contains(&at) {
            return Err(RebalanceError::BadSplitKey);
        }
        let dst = self.allocate_slot();
        match self.router().begin_migration(shard, dst, at) {
            Ok(m) => {
                self.emit(EventKind::MigrationBegin {
                    id: m.id,
                    src: m.src as u64,
                    dst: m.dst as u64,
                    lo: m.lo,
                    hi: m.hi,
                });
                Ok(dst)
            }
            Err(e) => {
                // The freshly allocated slot owns nothing and is empty:
                // park it for reuse.
                self.free_slots
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(dst);
                Err(e)
            }
        }
    }

    /// Begins merging `src`'s whole owned interval into `dst`, which must
    /// own the adjacent interval. Online, like [`LeapStore::split_shard`];
    /// when the drain completes `src` owns nothing and its slot is
    /// recycled for future splits.
    pub fn merge_shards(&self, src: usize, dst: usize) -> Result<(), RebalanceError> {
        let _step = self
            .step_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        self.merge_locked(src, dst)
    }

    fn merge_locked(&self, src: usize, dst: usize) -> Result<(), RebalanceError> {
        if self.router().mode() != Partitioning::Range {
            return Err(RebalanceError::HashPartitioning);
        }
        if src >= self.shards() || dst >= self.shards() {
            return Err(RebalanceError::BadShard);
        }
        let (lo, _hi) = self
            .router()
            .shard_interval(src)
            .ok_or(RebalanceError::NothingToMove)?;
        let m = self.router().begin_migration(src, dst, lo)?;
        self.emit(EventKind::MigrationBegin {
            id: m.id,
            src: m.src as u64,
            dst: m.dst as u64,
            lo: m.lo,
            hi: m.hi,
        });
        Ok(())
    }

    /// Advances resharding by one bounded action and reports it:
    ///
    /// * fewer migrations in flight than the policy's
    ///   `max_concurrent_migrations` → consult the [`RebalancePolicy`]
    ///   against per-shard load scores (key counts plus a decaying op
    ///   rate) and start a split of the hottest eligible shard or a merge
    ///   of the coldest adjacent pair, provided neither slot already
    ///   participates in a migration;
    /// * otherwise, migrations in flight → pick one **round-robin** and
    ///   move one chunk (`policy.chunk` keys, one cross-list transaction),
    ///   or complete it if its range has drained — k disjoint hot ranges
    ///   drain in parallel instead of queueing behind one another;
    /// * otherwise → [`RebalanceAction::Idle`].
    ///
    /// Deterministic and re-entrant: concurrent callers serialize, so a
    /// test can interleave steps with its own ops one at a time.
    pub fn rebalance_step(&self) -> RebalanceAction {
        let _step = self
            .step_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let inflight = self.router().overlay_states();
        if self.router().mode() == Partitioning::Range
            && inflight.len() < self.policy.max_concurrent_migrations
        {
            if let Some(action) = self.policy_action(&inflight) {
                return action;
            }
        }
        if inflight.is_empty() {
            return RebalanceAction::Idle;
        }
        // ORDERING: round-robin cursor; any interleaving is a fair pick.
        let pick = self.rebalance_rr.fetch_add(1, Ordering::Relaxed) % inflight.len();
        let m = &inflight[pick];
        // Stuck-migration watchdog: a frontier that has not advanced for
        // `watchdog_stalls` consecutive steps is force-resolved so its
        // slots (and `SlotBusy`) cannot stay pinned forever.
        let threshold = self.policy.watchdog_stalls;
        // ORDERING: stall counter read under the step lock that also
        // guards every write to it.
        if threshold > 0 && m.stalls.load(Ordering::Relaxed) >= threshold {
            return match self.abort_locked(m) {
                Ok(AbortOutcome::Completed { epoch }) => RebalanceAction::Completed { epoch },
                Ok(AbortOutcome::RolledBack { moved_back }) => RebalanceAction::Aborted {
                    id: m.id,
                    moved_back,
                },
                // Unreachable while we hold the step lock (the overlay
                // cannot vanish under us), but never panic the driver.
                Err(_) => RebalanceAction::Idle,
            };
        }
        self.drain_step(m)
    }

    /// One bounded drain action on migration `m`: move a chunk, or
    /// complete it when the range has drained.
    fn drain_step(&self, m: &Arc<crate::router::MigrationState>) -> RebalanceAction {
        // Injected chunk fault: drop the step before touching any lock —
        // the failure mode of a chunk mover that crashed mid-flight — and
        // grow the stall counter the watchdog acts on.
        if let Some(f) = self.faults.as_deref() {
            if f.should_fire(FaultPoint::MigrationChunk) {
                // ORDERING: written under the step lock (our caller holds it).
                let stalls = m.stalls.fetch_add(1, Ordering::Relaxed) + 1;
                return RebalanceAction::ChunkFailed {
                    src: m.src,
                    dst: m.dst,
                    stalls,
                };
            }
        }
        let (src, dst) = (self.list(m.src), self.list(m.dst));
        let chunk = self.policy.chunk.max(1);
        let guard = m.write_lock.lock().unwrap_or_else(PoisonError::into_inner);
        // ORDERING: the frontier only moves under `write_lock`, held here.
        let frontier = m.frontier.load(Ordering::Relaxed);
        let page = src.range_page(frontier, m.hi, chunk);
        if page.is_empty() {
            // Drained. In-range writes go to dst (they hold the same
            // write lock and commit cross-list), so the source range
            // stays empty after we release the lock; ownership can
            // flip safely.
            drop(guard);
            return self.complete_locked(m);
        }
        // One transaction: the page leaves src and lands in dst, so a
        // concurrent snapshot (which visits both lists in one
        // transaction of its own) sees each key exactly once.
        let rm: Vec<BatchOp<V>> = page.iter().map(|(k, _)| BatchOp::Remove(*k)).collect();
        let ins: Vec<BatchOp<V>> = page
            .iter()
            .map(|(k, v)| BatchOp::Update(*k, v.clone()))
            .collect();
        LeapListLt::apply_batch_grouped(&[&*src, &*dst], &[&rm, &ins]);
        // INVARIANT: the empty-page case returned above.
        let last = page.last().expect("non-empty page").0;
        // ORDERING: frontier/moved/stalls are all written under `write_lock`
        // (held), and readers take the same lock or tolerate staleness.
        m.frontier.store(last + 1, Ordering::Relaxed);
        // ORDERING: monotonic stat counter; no publication rides on it.
        m.moved.fetch_add(page.len() as u64, Ordering::Relaxed);
        // ORDERING: reset under the step/write locks that guard it.
        m.stalls.store(0, Ordering::Relaxed);
        self.emit(EventKind::MigrationChunk {
            id: m.id,
            moved: page.len() as u64,
        });
        RebalanceAction::Moved {
            src: m.src,
            dst: m.dst,
            keys: page.len(),
        }
    }

    /// Completes migration `m` — flips ownership, recycles/shields slots,
    /// emits the lifecycle events. Caller holds the step lock and has
    /// verified the source range is drained. Shared by the drain driver
    /// and forward-completing aborts.
    fn complete_locked(&self, m: &Arc<crate::router::MigrationState>) -> RebalanceAction {
        let epoch = match self.router().complete_migration(m) {
            Ok(epoch) => epoch,
            // Unreachable under the step lock (aborts serialize on it
            // too, so the overlay cannot have been resolved by someone
            // else), but a missing overlay must not panic the driver.
            Err(_) => return RebalanceAction::Idle,
        };
        // ORDERING: monotonic stat counter; no publication rides on it.
        let done = self.migrations_completed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.router().shard_interval(m.src).is_none() {
            // The source emptied entirely: this was a merge; park the
            // slot for the next split to reuse.
            self.free_slots
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(m.src);
        } else {
            // The source kept its lower half: this was a split. Shield
            // the fresh pair from immediate re-merging (hysteresis —
            // see `policy_action`); the shield expires once other
            // migrations complete, so a pair that later goes genuinely
            // cold can still merge.
            let pair = (m.src.min(m.dst), m.src.max(m.dst));
            let mut recent = self
                .recent_splits
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            recent.retain(|(p, _)| *p != pair);
            recent.push_front((pair, done));
            recent.truncate(8);
        }
        // Both events while still under the step lock, so every
        // migration's timeline reads begin -> chunks -> complete with
        // the epoch flip adjacent to its completion.
        self.emit(EventKind::MigrationComplete { id: m.id, epoch });
        self.emit(EventKind::EpochFlip { epoch });
        RebalanceAction::Completed { epoch }
    }

    /// Resolves the in-flight migration `id` without requiring its drain
    /// to finish: if the source range is already empty the migration
    /// completes forward (cheapest safe resolution); otherwise every key
    /// the drain copied into the destination is swept back into the
    /// source in bounded chunks and the overlay is removed with **no**
    /// ownership change — as if the migration had never begun. Reads and
    /// writes proceed throughout, exactly as during a forward drain.
    ///
    /// This is the recovery path for cancelled or crashed migrations: a
    /// partially-drained overlay never stays wedged, and the slots it
    /// pinned (`SlotBusy`) are released either way.
    ///
    /// # Errors
    ///
    /// [`RebalanceError::NoSuchMigration`] if `id` is not an in-flight
    /// migration (wrong id, already completed, or already aborted).
    pub fn abort_migration(&self, id: u64) -> Result<AbortOutcome, RebalanceError> {
        let _step = self
            .step_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let m = self
            .router()
            .overlay_by_id(id)
            .ok_or(RebalanceError::NoSuchMigration)?;
        self.abort_locked(&m)
    }

    /// The abort body; caller holds the step lock.
    fn abort_locked(
        &self,
        m: &Arc<crate::router::MigrationState>,
    ) -> Result<AbortOutcome, RebalanceError> {
        let (src, dst) = (self.list(m.src), self.list(m.dst));
        {
            let guard = m.write_lock.lock().unwrap_or_else(PoisonError::into_inner);
            if src.range_page(m.lo, m.hi, 1).is_empty() {
                // The range already drained: completing forward is
                // strictly cheaper than sweeping it all back, and equally
                // final for the caller.
                drop(guard);
                return match self.complete_locked(m) {
                    RebalanceAction::Completed { epoch } => Ok(AbortOutcome::Completed { epoch }),
                    _ => Err(RebalanceError::NoSuchMigration),
                };
            }
            // Flip the overlay into the aborting state while holding the
            // write lock: every in-range writer serializes on this lock,
            // so any write that landed in dst happens-before the sweep
            // below, and every later write routes source-ward again (see
            // `put_inner`). The flipped overlay stamp invalidates
            // concurrent stamped range reads.
            m.aborting.store(true, Ordering::Release);
        }
        // Sweep dst's copy of [lo, hi] back into src in bounded chunks,
        // holding the write lock only per chunk. A writer interleaving
        // between chunks removes its key from dst (aborting direction),
        // so a swept page can never clobber a newer source value.
        let chunk = self.policy.chunk.max(1);
        let mut cursor = m.lo;
        let mut moved_back = 0u64;
        loop {
            let guard = m.write_lock.lock().unwrap_or_else(PoisonError::into_inner);
            let page = dst.range_page(cursor, m.hi, chunk);
            let Some(&(last, _)) = page.last() else {
                drop(guard);
                break;
            };
            let rm: Vec<BatchOp<V>> = page.iter().map(|(k, _)| BatchOp::Remove(*k)).collect();
            let ins: Vec<BatchOp<V>> = page
                .iter()
                .map(|(k, v)| BatchOp::Update(*k, v.clone()))
                .collect();
            LeapListLt::apply_batch_grouped(&[&*dst, &*src], &[&rm, &ins]);
            moved_back += page.len() as u64;
            drop(guard);
            if last == m.hi {
                break;
            }
            cursor = last + 1;
        }
        self.router().cancel_migration(m)?;
        if self.router().shard_interval(m.dst).is_none() {
            // The destination owned nothing but the aborted range (a
            // fresh split target): it is empty again after the sweep, so
            // park it for the next split instead of leaking the slot.
            self.free_slots
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(m.dst);
        }
        // ORDERING: monotonic stat counter; no publication rides on it.
        self.aborted_migrations.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::MigrationAbort {
            id: m.id,
            moved_back,
        });
        // The abort also lands in the trace ring as an always-retained
        // failure span naming the overlay, so a latency investigation sees
        // the rollback next to the ops it interfered with.
        if let Some(t) = self.tracer() {
            t.emit_failure(
                leap_obs::OpClass::Migration,
                leap_obs::OpOutcome::MigrationAbort,
                m.lo,
                m.src as u32,
                m.id,
            );
        }
        Ok(AbortOutcome::RolledBack { moved_back })
    }

    /// Consults the policy for a new migration to start, skipping shards
    /// already involved in one. Returns `None` when no threshold trips.
    fn policy_action(
        &self,
        inflight: &[Arc<crate::router::MigrationState>],
    ) -> Option<RebalanceAction> {
        let involved = |s: usize| inflight.iter().any(|m| m.src == s || m.dst == s);
        // Load census over interval-owning shards, in key order: keys plus
        // the decaying op rate (see `RebalancePolicy` docs).
        let loads: Vec<(usize, u64, u64, u64)> = self
            .router()
            .routing()
            .intervals()
            .into_iter()
            .map(|(s, lo, hi)| (s, lo, hi, self.list(s).len() as u64))
            .collect();
        let rates = self.op_rate_census();
        let score = |&(s, _, _, keys): &(usize, u64, u64, u64)| {
            keys as f64 + self.policy.op_weight * rates[s]
        };
        let mean = loads.iter().map(score).sum::<f64>() / loads.len() as f64;
        // Split the hottest eligible shard when it dominates the mean.
        if loads.len() < self.policy.max_shards {
            let candidate = loads
                .iter()
                .filter(|&&(s, lo, hi, keys)| {
                    !involved(s) && lo < hi && keys as usize >= self.policy.min_split_keys.max(2)
                })
                .max_by(|a, b| score(a).total_cmp(&score(b)));
            if let Some(&(s, lo, hi, keys)) = candidate {
                if score(&(s, lo, hi, keys)) > self.policy.split_ratio * mean {
                    // Split at the median key: the last key of the first
                    // half, found with one bounded page.
                    let half = (keys as usize / 2).max(1);
                    let page = self.list(s).range_page(lo, hi, half);
                    if let Some(&(median, _)) = page.last() {
                        let at = (median + 1).clamp(lo + 1, hi);
                        if let Ok(dst) = self.split_locked(s, at) {
                            self.emit(EventKind::PolicySplit {
                                shard: s as u64,
                                load: score(&(s, lo, hi, keys)) as u64,
                            });
                            return Some(RebalanceAction::SplitStarted { shard: s, at, dst });
                        }
                    }
                }
            }
        }
        // Merge the coldest adjacent pair when both are near-empty —
        // unless the pair was just created by a split (hysteresis: a
        // borderline layout must not thrash split-then-merge forever).
        // "Just" means no two other migrations have completed since, so
        // the shield cannot starve a pair that later goes cold for good.
        if loads.len() >= 2 {
            // ORDERING: hysteresis heuristic; a stale count only delays a merge.
            let done = self.migrations_completed.load(Ordering::Relaxed);
            let recent: Vec<(usize, usize)> = self
                .recent_splits
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .filter(|&&(_, at)| done.saturating_sub(at) < 2)
                .map(|&(p, _)| p)
                .collect();
            let candidate = loads
                .windows(2)
                .filter(|w| {
                    let pair = (w[0].0.min(w[1].0), w[0].0.max(w[1].0));
                    !involved(w[0].0) && !involved(w[1].0) && !recent.contains(&pair)
                })
                .min_by(|a, b| {
                    (score(&a[0]) + score(&a[1])).total_cmp(&(score(&b[0]) + score(&b[1])))
                });
            if let Some(w) =
                candidate.filter(|w| score(&w[0]) + score(&w[1]) < self.policy.merge_ratio * mean)
            {
                // Drain the smaller half into the bigger one.
                let (src, dst) = if w[0].3 <= w[1].3 {
                    (w[0].0, w[1].0)
                } else {
                    (w[1].0, w[0].0)
                };
                if self.merge_locked(src, dst).is_ok() {
                    self.emit(EventKind::PolicyMerge {
                        left: dst as u64,
                        right: src as u64,
                    });
                    return Some(RebalanceAction::MergeStarted { src, dst });
                }
            }
        }
        None
    }

    /// Drives [`LeapStore::rebalance_step`] until it reports
    /// [`RebalanceAction::Idle`]; returns the number of migrations
    /// completed. Intended for deterministic tests and quiesce points —
    /// a live system runs a [`Rebalancer`] instead.
    pub fn rebalance_until_idle(&self) -> u64 {
        let mut completed = 0;
        loop {
            match self.rebalance_step() {
                RebalanceAction::Idle => return completed,
                RebalanceAction::Completed { .. } => completed += 1,
                _ => {}
            }
        }
    }
}

/// The [`Rebalancer`] worker thread died: it recorded
/// [`RebalancerDied::panics`] panics and gave up after too many in a row
/// (or the thread could not be joined). The store itself is intact —
/// rebalancing simply stopped being driven; spawn a fresh rebalancer or
/// drive [`LeapStore::rebalance_step`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalancerDied {
    /// Worker panics recorded before the thread gave up.
    pub panics: u64,
}

impl std::fmt::Display for RebalancerDied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rebalancer worker died after {} recorded panic(s)",
            self.panics
        )
    }
}

impl std::error::Error for RebalancerDied {}

/// A background thread driving [`LeapStore::rebalance_step`]: sleeps
/// `interval` whenever the store reports [`RebalanceAction::Idle`],
/// otherwise steps again immediately. Stopped (and joined) explicitly via
/// [`Rebalancer::stop`] or implicitly on drop.
///
/// Each step runs under `catch_unwind`: a panicking step is **recorded**
/// (an [`EventKind::RebalancerPanic`] event plus the [`Rebalancer::panics`]
/// counter) rather than silently killing the thread, and the worker keeps
/// driving. Only after [`Rebalancer::MAX_CONSECUTIVE_PANICS`] panics with
/// no successful step in between does the worker declare itself dead —
/// surfaced as `Err(RebalancerDied)` from [`Rebalancer::stop`] and by
/// [`Rebalancer::is_dead`], never swallowed.
///
/// # Example
///
/// ```
/// use leap_store::{LeapStore, Partitioning, Rebalancer, StoreConfig};
/// use std::sync::Arc;
/// use std::time::Duration;
///
/// let store = Arc::new(LeapStore::<u64>::new(
///     StoreConfig::new(2, Partitioning::Range).with_key_space(1_000),
/// ));
/// let rebalancer = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
/// store.put(5, 50);
/// let steps = rebalancer.stop().expect("worker healthy");
/// assert_eq!(store.get(5), Some(50));
/// assert!(steps < u64::MAX);
/// ```
pub struct Rebalancer {
    stop: Arc<AtomicBool>,
    died: Arc<AtomicBool>,
    panics: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<u64>>,
}

/// Quiet unwind payload for injected `RebalancerTick` faults: thrown with
/// `resume_unwind` so the panic hook (and its stderr backtrace) is
/// bypassed — deterministic chaos runs stay readable.
struct InjectedTickFault;

impl Rebalancer {
    /// Consecutive panicking steps after which the worker stops retrying
    /// and declares itself dead. Deliberately small: a step that panics
    /// this many times in a row is deterministic breakage, not a race.
    pub const MAX_CONSECUTIVE_PANICS: u32 = 8;

    /// Spawns the driver thread over `store`.
    pub fn spawn<V: Clone + Send + Sync + 'static>(
        store: Arc<LeapStore<V>>,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let died = Arc::new(AtomicBool::new(false));
        let panics = Arc::new(AtomicU64::new(0));
        let (flag, dead, count) = (stop.clone(), died.clone(), panics.clone());
        let handle = std::thread::spawn(move || {
            let mut actions = 0u64;
            let mut consecutive = 0u32;
            // ORDERING: stop flag; the join in `stop`/`drop` is the sync point.
            while !flag.load(Ordering::Relaxed) {
                let step = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(f) = store.faults.as_deref() {
                        if f.should_fire(FaultPoint::RebalancerTick) {
                            std::panic::resume_unwind(Box::new(InjectedTickFault));
                        }
                    }
                    store.rebalance_step()
                }));
                match step {
                    Ok(RebalanceAction::Idle) => {
                        consecutive = 0;
                        std::thread::sleep(interval);
                    }
                    Ok(_) => {
                        consecutive = 0;
                        actions += 1;
                    }
                    Err(_) => {
                        // ORDERING: monotonic stat counter; no publication rides on it.
                        let total = count.fetch_add(1, Ordering::Relaxed) + 1;
                        store.emit(EventKind::RebalancerPanic { panics: total });
                        consecutive += 1;
                        if consecutive >= Rebalancer::MAX_CONSECUTIVE_PANICS {
                            dead.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
            }
            actions
        });
        Rebalancer {
            stop,
            died,
            panics,
            handle: Some(handle),
        }
    }

    /// Worker panics recorded so far (injected tick faults plus real
    /// panics out of `rebalance_step`).
    pub fn panics(&self) -> u64 {
        // ORDERING: monotonic stat counter; no publication rides on it.
        self.panics.load(Ordering::Relaxed)
    }

    /// Whether the worker has given up after
    /// [`Rebalancer::MAX_CONSECUTIVE_PANICS`] consecutive panics.
    pub fn is_dead(&self) -> bool {
        self.died.load(Ordering::Acquire)
    }

    /// Signals the thread and joins it; returns how many non-idle actions
    /// (chunks moved, splits/merges started, completions, aborts) it
    /// performed.
    ///
    /// # Errors
    ///
    /// [`RebalancerDied`] if the worker declared itself dead (too many
    /// consecutive panics) or could not be joined cleanly — a worker
    /// death is never swallowed into a fake action count.
    pub fn stop(mut self) -> Result<u64, RebalancerDied> {
        // ORDERING: the worker only polls this flag; `join` below is the
        // synchronization point for everything it did.
        self.stop.store(true, Ordering::Relaxed);
        let joined = self
            .handle
            .take()
            // INVARIANT: only `stop` (consuming self) and `drop` take the
            // handle, and `stop` cannot run after either.
            .expect("handle present until stop/drop")
            .join();
        // ORDERING: monotonic stat counter; no publication rides on it.
        let panics = self.panics.load(Ordering::Relaxed);
        if self.died.load(Ordering::Acquire) {
            return Err(RebalancerDied { panics });
        }
        joined.map_err(|_| RebalancerDied { panics })
    }
}

impl Drop for Rebalancer {
    fn drop(&mut self) {
        // ORDERING: stop flag; `join` below synchronizes with the worker.
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use leaplist::Params;

    fn cfg(shards: usize) -> StoreConfig {
        StoreConfig::new(shards, Partitioning::Range)
            .with_key_space(1_000)
            .with_params(Params {
                node_size: 4,
                max_level: 6,
                use_trie: true,
                ..Params::default()
            })
            .with_rebalancing(RebalancePolicy {
                chunk: 16,
                ..RebalancePolicy::default()
            })
    }

    #[test]
    fn split_migrates_and_flips_ownership() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2));
        for k in 0..100u64 {
            store.put(k, k * 3);
        }
        // All 100 keys sit in shard 0 ([0, 499]).
        assert_eq!(store.shard(0).len(), 100);
        let dst = store.split_shard(0, 50).expect("valid split");
        assert_eq!(dst, 2, "fresh slot appended");
        assert_eq!(store.router().migration().unwrap().lo, 50);
        // Reads and writes work mid-migration, chunk by chunk.
        let mut moved_some = false;
        loop {
            match store.rebalance_step() {
                RebalanceAction::Moved { keys, .. } => {
                    moved_some = true;
                    assert!(keys <= 16, "chunk bound respected");
                    assert_eq!(store.get(75), Some(225), "mid-migration read");
                    assert_eq!(store.range(0, 999).len(), 100);
                }
                RebalanceAction::Completed { epoch } => {
                    assert_eq!(epoch, 1);
                    break;
                }
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert!(moved_some);
        assert_eq!(store.router().epoch(), 1);
        assert_eq!(store.router().shard_of(75), 2);
        assert_eq!(store.router().shard_of(25), 0);
        assert_eq!(store.shard(0).len(), 50);
        assert_eq!(store.shard(2).len(), 50);
        assert_eq!(store.range(0, 999).len(), 100);
        for k in 0..100u64 {
            assert_eq!(store.get(k), Some(k * 3), "key {k}");
        }
        let st = store.stats();
        assert_eq!(st.migrations_completed, 1);
        assert_eq!(st.epoch, 1);
    }

    #[test]
    fn writes_during_migration_land_in_the_destination() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2));
        for k in 0..64u64 {
            store.put(k, 1);
        }
        store.split_shard(0, 32).expect("split");
        // One chunk only: the migration stays in flight.
        assert!(matches!(
            store.rebalance_step(),
            RebalanceAction::Moved { .. }
        ));
        // Overwrite a migrating-range key and insert a fresh one: both
        // must route through the overlay into the destination.
        assert_eq!(store.put(40, 2), Some(1));
        assert_eq!(store.delete(45), Some(1));
        assert_eq!(store.put(460, 9), None, "fresh in-range key");
        assert_eq!(store.get(40), Some(2));
        assert_eq!(store.get(45), None);
        let before = store.range(0, 999);
        store.rebalance_until_idle();
        assert_eq!(store.range(0, 999), before, "completion moves no data");
        assert_eq!(store.get(40), Some(2));
        assert_eq!(store.get(460), Some(9));
        assert_eq!(store.shard(0).range_query(32, 499), vec![], "src drained");
    }

    #[test]
    fn merge_drains_into_neighbour_and_recycles_the_slot() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4));
        for k in 0..200u64 {
            store.put(k * 5 % 1000, k);
        }
        let len_before = store.len();
        store.merge_shards(1, 0).expect("adjacent merge");
        store.rebalance_until_idle();
        assert_eq!(store.router().shard_interval(1), None);
        assert_eq!(store.len(), len_before);
        assert!(store.shard(1).is_empty());
        // The freed slot is reused by the next split.
        let dst = store.split_shard(0, 250).expect("resplit");
        assert_eq!(dst, 1, "merge-emptied slot recycled");
        store.rebalance_until_idle();
        assert_eq!(store.len(), len_before);
        assert_eq!(store.router().shard_of(300), 1);
    }

    #[test]
    fn policy_splits_hot_and_merges_cold() {
        let store: LeapStore<u64> = LeapStore::new(cfg(4));
        // Pile 300 keys into shard 0's interval, 2 into shard 1's.
        for k in 0..240u64 {
            store.put(k, k);
        }
        store.put(300, 1);
        store.put(600, 1);
        let spread_before = store.stats().key_spread();
        let completed = store.rebalance_until_idle();
        assert!(completed >= 1, "policy must have acted");
        let st = store.stats();
        assert!(
            st.key_spread() < spread_before,
            "spread must narrow: {} -> {}",
            spread_before,
            st.key_spread()
        );
        assert_eq!(store.len(), 242);
        assert_eq!(store.range(0, 999).len(), 242);
    }

    #[test]
    fn rebalance_errors_are_reported() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2));
        assert_eq!(store.split_shard(9, 10), Err(RebalanceError::BadShard));
        assert_eq!(store.split_shard(0, 0), Err(RebalanceError::BadSplitKey));
        assert_eq!(
            store.split_shard(0, 700),
            Err(RebalanceError::BadSplitKey),
            "split key inside shard 1's interval"
        );
        assert_eq!(store.merge_shards(9, 0), Err(RebalanceError::BadShard));
        assert_eq!(store.merge_shards(0, 9), Err(RebalanceError::BadShard));
        let hash: LeapStore<u64> = LeapStore::new(StoreConfig::new(2, Partitioning::Hash));
        assert_eq!(
            hash.split_shard(0, 10),
            Err(RebalanceError::HashPartitioning)
        );
        assert_eq!(
            hash.merge_shards(0, 1),
            Err(RebalanceError::HashPartitioning)
        );
        assert_eq!(hash.rebalance_step(), RebalanceAction::Idle);
        store.split_shard(0, 100).expect("valid");
        assert_eq!(
            store.split_shard(0, 200),
            Err(RebalanceError::SlotBusy),
            "the source is already migrating"
        );
        // A slot-disjoint split runs concurrently instead of failing.
        store.split_shard(1, 600).expect("disjoint split");
        assert_eq!(store.router().migrations().len(), 2);
        store.rebalance_until_idle();
        assert!(store.router().migrations().is_empty());
        assert!(format!("{}", RebalanceError::NonAdjacent).contains("adjacent"));
        assert!(format!("{}", RebalanceError::SlotBusy).contains("slot"));
    }

    #[test]
    fn invalid_policies_are_rejected_at_construction() {
        assert!(RebalancePolicy::default().validate().is_ok());
        let bad = [
            RebalancePolicy {
                chunk: 0,
                ..RebalancePolicy::default()
            },
            RebalancePolicy {
                split_ratio: 1.0,
                ..RebalancePolicy::default()
            },
            RebalancePolicy {
                split_ratio: f64::NAN,
                ..RebalancePolicy::default()
            },
            RebalancePolicy {
                merge_ratio: -0.1,
                ..RebalancePolicy::default()
            },
            // The thrash overlap: a merged pair could immediately
            // re-qualify for splitting.
            RebalancePolicy {
                split_ratio: 1.2,
                merge_ratio: 0.7,
                ..RebalancePolicy::default()
            },
            RebalancePolicy {
                op_weight: -1.0,
                ..RebalancePolicy::default()
            },
            RebalancePolicy {
                max_shards: 0,
                ..RebalancePolicy::default()
            },
            RebalancePolicy {
                max_concurrent_migrations: 0,
                ..RebalancePolicy::default()
            },
        ];
        for p in bad {
            let err = p.validate().expect_err("policy must be rejected");
            assert!(matches!(err, RebalanceError::InvalidPolicy(_)), "{p:?}");
            assert!(err.to_string().contains("invalid policy"), "{err}");
        }
        let caught = std::panic::catch_unwind(|| {
            LeapStore::<u64>::new(StoreConfig::new(2, Partitioning::Range).with_rebalancing(
                RebalancePolicy {
                    split_ratio: 1.2,
                    merge_ratio: 0.7,
                    ..RebalancePolicy::default()
                },
            ))
        });
        assert!(
            caught.is_err(),
            "the store must refuse a thrash-prone policy"
        );
    }

    /// The borderline layout that livelocked `rebalance_until_idle` when
    /// split and merge thresholds could overlap: with validated ratios
    /// plus the just-split hysteresis, the pass must terminate (bounded
    /// action count) and leave the map intact.
    #[test]
    fn rebalance_until_idle_terminates_on_borderline_layouts() {
        // The tightest legal ratio pair around the default: merge just
        // under split / 2.
        let store: LeapStore<u64> = LeapStore::new(
            StoreConfig::new(2, Partitioning::Range)
                .with_key_space(1_000)
                .with_params(Params {
                    node_size: 4,
                    max_level: 6,
                    use_trie: true,
                    ..Params::default()
                })
                .with_rebalancing(RebalancePolicy {
                    chunk: 8,
                    split_ratio: 1.02,
                    merge_ratio: 0.5,
                    min_split_keys: 2,
                    max_shards: 64,
                    op_weight: 0.0,
                    max_concurrent_migrations: 4,
                    watchdog_stalls: 8,
                }),
        );
        // Everything on shard 0, nothing on shard 1: shard 0's count sits
        // just above split_ratio x mean, and after any split the cold
        // remainder pairs hover around merge_ratio x mean.
        for k in 0..128u64 {
            store.put(k, k);
        }
        let mut actions = 0u64;
        loop {
            match store.rebalance_step() {
                RebalanceAction::Idle => break,
                _ => actions += 1,
            }
            assert!(
                actions < 10_000,
                "rebalance livelocked on a borderline layout"
            );
        }
        assert!(store.router().migrations().is_empty());
        assert_eq!(store.len(), 128);
        assert_eq!(store.range(0, 999).len(), 128);
    }

    /// The abort headline: a mid-drain migration rolls back completely —
    /// the destination is swept empty, ownership never flips, and the
    /// visible map equals the model *including* writes that raced the
    /// migration into the destination.
    #[test]
    fn abort_rolls_back_a_mid_drain_migration() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2));
        for k in 0..100u64 {
            store.put(k, k * 7);
        }
        store.split_shard(0, 50).expect("valid split");
        let id = store.router().migration().unwrap().id;
        // Move one chunk, then edit on both sides of the frontier so the
        // sweep has migrated, overwritten and fresh values to restore.
        assert!(matches!(
            store.rebalance_step(),
            RebalanceAction::Moved { .. }
        ));
        assert_eq!(store.put(60, 601), Some(60 * 7), "mid-migration rewrite");
        assert_eq!(store.put(450, 5), None, "fresh in-range key");
        assert_eq!(store.delete(55), Some(55 * 7));
        match store.abort_migration(id) {
            Ok(AbortOutcome::RolledBack { moved_back }) => {
                assert!(moved_back > 0, "the moved chunk must sweep back")
            }
            other => panic!("expected a rollback, got {other:?}"),
        }
        // No table flip, overlay gone, destination fully swept.
        assert_eq!(store.router().epoch(), 0);
        assert!(store.router().migration().is_none());
        assert!(store.shard(2).is_empty(), "destination swept empty");
        assert_eq!(store.router().shard_of(300), 0);
        // Model equivalence, mid-migration edits included.
        let mut model: std::collections::BTreeMap<u64, u64> =
            (0..100u64).map(|k| (k, k * 7)).collect();
        model.insert(60, 601);
        model.insert(450, 5);
        model.remove(&55);
        assert_eq!(store.range(0, 999), model.into_iter().collect::<Vec<_>>());
        let st = store.stats();
        assert_eq!(st.aborted_migrations, 1);
        assert_eq!(st.migrations_completed, 0);
        assert!(matches!(
            store.abort_migration(id),
            Err(RebalanceError::NoSuchMigration)
        ));
        // The abort is on the event timeline with its rollback size.
        let snap = store.obs().expect("obs on by default").snapshot();
        assert!(snap
            .events
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::MigrationAbort { id: i, .. } if i == id)));
        // The same range is immediately re-splittable and drains clean.
        store.split_shard(0, 50).expect("slots free after abort");
        loop {
            match store.rebalance_step() {
                RebalanceAction::Completed { .. } => break,
                RebalanceAction::Moved { .. } => {}
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(store.router().shard_of(300), 2);
        assert_eq!(store.len(), 100);
    }

    /// Aborting a migration whose range already drained (here: vacuously,
    /// the range holds no keys) resolves *forward* — completing is
    /// strictly cheaper than sweeping and equally final for the caller.
    #[test]
    fn abort_forward_completes_a_drained_migration() {
        let store: LeapStore<u64> = LeapStore::new(cfg(2));
        for k in 0..40u64 {
            store.put(k, k);
        }
        // [400, 499] holds no keys: nothing to drain, nothing to sweep.
        store.split_shard(0, 400).expect("valid split");
        let id = store.router().migration().unwrap().id;
        match store.abort_migration(id) {
            Ok(AbortOutcome::Completed { epoch }) => assert_eq!(epoch, 1),
            other => panic!("expected forward completion, got {other:?}"),
        }
        assert_eq!(store.router().epoch(), 1);
        assert_eq!(store.router().shard_of(450), 2, "ownership flipped");
        let st = store.stats();
        assert_eq!(st.aborted_migrations, 0, "a completion, not an abort");
        assert_eq!(st.migrations_completed, 1);
        assert!(matches!(
            store.abort_migration(77),
            Err(RebalanceError::NoSuchMigration)
        ));
    }

    /// The stuck-migration watchdog: when every chunk fails (here by
    /// injection), the stall counter climbs to the policy threshold and
    /// the next step force-resolves the migration by abort instead of
    /// retrying forever.
    #[test]
    fn watchdog_force_aborts_a_stuck_migration() {
        let plan = leap_fault::FaultPlan::new(42).always(FaultPoint::MigrationChunk);
        let store: LeapStore<u64> =
            LeapStore::new(cfg(2).with_faults(plan).with_rebalancing(RebalancePolicy {
                chunk: 16,
                watchdog_stalls: 3,
                ..RebalancePolicy::default()
            }));
        for k in 0..80u64 {
            store.put(k, k + 1);
        }
        store.split_shard(0, 40).expect("valid split");
        // Every chunk fails by injection: each step reports the stall...
        for expect in 1..=3u32 {
            match store.rebalance_step() {
                RebalanceAction::ChunkFailed {
                    src: 0,
                    dst: 2,
                    stalls,
                } => assert_eq!(stalls, expect),
                other => panic!("expected an injected chunk failure, got {other:?}"),
            }
        }
        // ...and once stalls reach the threshold, the watchdog aborts.
        match store.rebalance_step() {
            RebalanceAction::Aborted { moved_back, .. } => {
                assert_eq!(moved_back, 0, "no chunk ever moved")
            }
            other => panic!("expected a watchdog abort, got {other:?}"),
        }
        assert!(store.router().migration().is_none());
        assert_eq!(store.router().epoch(), 0);
        assert_eq!(store.stats().aborted_migrations, 1);
        assert_eq!(store.len(), 80, "no keys lost to the stuck migration");
        assert_eq!(store.get(60), Some(61));
    }

    /// Worker-death containment: a rebalancer whose every tick panics
    /// (injected) records the panics, declares itself dead after the
    /// consecutive-panic cap, and surfaces that out of `stop()` as a
    /// typed error — while the store itself stays fully usable.
    #[test]
    fn rebalancer_reports_its_own_death() {
        let plan = leap_fault::FaultPlan::new(7).always(FaultPoint::RebalancerTick);
        let store: Arc<LeapStore<u64>> = Arc::new(LeapStore::new(cfg(2).with_faults(plan)));
        let reb = Rebalancer::spawn(store.clone(), Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while !reb.is_dead() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(reb.is_dead(), "the worker must declare its own death");
        assert!(reb.panics() >= u64::from(Rebalancer::MAX_CONSECUTIVE_PANICS));
        let err = reb.stop().expect_err("death must surface out of stop()");
        assert!(err.panics >= u64::from(Rebalancer::MAX_CONSECUTIVE_PANICS));
        assert!(err.to_string().contains("died"), "{err}");
        // The store outlives its dead driver: ops and manual rebalancing
        // still work (the tick fault only arms the worker thread's path).
        store.put(10, 1);
        assert_eq!(store.get(10), Some(1));
        let panics_seen = store
            .obs()
            .expect("obs on by default")
            .snapshot()
            .events
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RebalancerPanic { .. }))
            .count();
        assert!(panics_seen > 0, "panics must land on the event timeline");
    }

    /// Op-rate awareness: a shard that is read-hot but key-light must
    /// split once its op rate dominates, even though its key count alone
    /// never crosses the threshold.
    #[test]
    fn policy_splits_read_hot_shard() {
        let store: LeapStore<u64> = LeapStore::new(
            StoreConfig::new(4, Partitioning::Range)
                .with_key_space(1_000)
                .with_params(Params {
                    node_size: 4,
                    max_level: 6,
                    use_trie: true,
                    ..Params::default()
                })
                .with_rebalancing(RebalancePolicy {
                    chunk: 16,
                    split_ratio: 2.0,
                    merge_ratio: 0.0,
                    min_split_keys: 8,
                    max_shards: 8,
                    op_weight: 1.0,
                    max_concurrent_migrations: 1,
                    watchdog_stalls: 8,
                }),
        );
        // Perfectly even key placement: 16 keys per shard.
        for k in 0..64u64 {
            store.put(k * 15, k);
        }
        // Drain the prefill deltas so the op census starts level.
        while store.rebalance_step() != RebalanceAction::Idle {}
        let epoch = store.router().epoch();
        // Hammer shard 1's interval with reads: keys alone would never
        // trip split_ratio (every shard holds 1/4 of the keys).
        for _ in 0..4_000 {
            store.get(300);
            store.range(260, 400);
        }
        let acted = (0..64)
            .map(|_| store.rebalance_step())
            .any(|a| matches!(a, RebalanceAction::SplitStarted { shard: 1, .. }));
        assert!(acted, "read-hot shard 1 must split on op rate");
        store.rebalance_until_idle();
        assert!(store.router().epoch() > epoch);
        assert_eq!(store.len(), 64, "splits move keys, never lose them");
    }
}
