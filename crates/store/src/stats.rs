//! The per-shard statistics surface: operation counters kept by the store,
//! plus the transaction commit/abort counters re-exported from the shared
//! `leap_stm` domain.

use leap_stm::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live operation counters for one shard (relaxed atomics; advisory while
/// operations run, exact at quiescence).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub deletes: AtomicU64,
    pub ranges: AtomicU64,
    /// Components of multi-key batches applied to this shard.
    pub batch_parts: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, shard: usize) -> ShardStats {
        ShardStats {
            shard,
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            ranges: self.ranges.load(Ordering::Relaxed),
            batch_parts: self.batch_parts.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one shard's operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Point lookups routed here.
    pub gets: u64,
    /// Single-key puts routed here.
    pub puts: u64,
    /// Single-key deletes routed here.
    pub deletes: u64,
    /// Range queries that visited this shard.
    pub ranges: u64,
    /// Multi-key batch components applied to this shard.
    pub batch_parts: u64,
}

impl ShardStats {
    /// All operations that touched this shard.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.ranges + self.batch_parts
    }
}

/// A point-in-time statistics snapshot for a whole store.
///
/// `stm` aggregates the **shared** transactional domain: cross-shard
/// atomicity requires every shard to run on one domain, so commit/abort
/// counts are store-wide by construction (a per-shard abort count would
/// claim a precision the substrate cannot provide).
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Per-shard operation counters.
    pub shards: Vec<ShardStats>,
    /// Commit/abort counters of the shared STM domain.
    pub stm: StatsSnapshot,
    /// Batches that mapped at least two keys to one shard. These commit
    /// through the same single multi-list transaction as any other batch
    /// (the multi-op chain rebuild); the counter tracks how collision-heavy
    /// the workload is.
    pub collision_batches: u64,
}

impl StoreStats {
    /// Aborts per committed transaction (0.0 when nothing committed) — the
    /// contention signal the evaluation tracks.
    pub fn abort_rate(&self) -> f64 {
        let commits = self.stm.total_commits();
        if commits == 0 {
            0.0
        } else {
            self.stm.total_aborts() as f64 / commits as f64
        }
    }

    /// Renders one `{...}` JSON object per line, machine-parseable for the
    /// benchmark harness's `BENCH_*.json` outputs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"gets\":{},\"puts\":{},\"deletes\":{},\"ranges\":{},\"batch_parts\":{}}}",
                s.shard, s.gets, s.puts, s.deletes, s.ranges, s.batch_parts
            ));
        }
        out.push_str(&format!(
            "],\"stm\":{{\"commits\":{},\"read_only_commits\":{},\"conflict_aborts\":{},\"explicit_aborts\":{}}},\"collision_batches\":{},\"abort_rate\":{:.6}}}",
            self.stm.commits,
            self.stm.read_only_commits,
            self.stm.conflict_aborts,
            self.stm.explicit_aborts,
            self.collision_batches,
            self.abort_rate(),
        ));
        out
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "shard", "gets", "puts", "deletes", "ranges", "batch_parts"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12}",
                s.shard, s.gets, s.puts, s.deletes, s.ranges, s.batch_parts
            )?;
        }
        write!(
            f,
            "stm: {} | collision_batches={} | abort_rate={:.4}",
            self.stm,
            self.collision_batches,
            self.abort_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_rates_divide() {
        let stats = StoreStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    gets: 1,
                    puts: 2,
                    deletes: 3,
                    ranges: 4,
                    batch_parts: 5,
                },
                ShardStats::default(),
            ],
            stm: StatsSnapshot {
                commits: 8,
                read_only_commits: 2,
                conflict_aborts: 4,
                explicit_aborts: 1,
            },
            collision_batches: 7,
        };
        assert_eq!(stats.shards[0].total_ops(), 15);
        assert!((stats.abort_rate() - 0.5).abs() < 1e-9);
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"shard\":").count(), 2);
        assert!(json.contains("\"collision_batches\":7"));
        assert_eq!(StoreStats::default().abort_rate(), 0.0);
        let text = format!("{stats}");
        assert!(text.contains("abort_rate=0.5000"));
        assert!(text.contains("collision_batches=7"));
    }
}
