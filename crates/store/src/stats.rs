//! The per-shard statistics surface: operation counters kept by the store,
//! per-shard key counts and interval ownership (the signals the rebalancer
//! acts on), routing-epoch and migration progress, plus the transaction
//! commit/abort counters re-exported from the shared `leap_stm` domain.

use crate::router::MigrationView;
use leap_stm::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live operation counters for one shard (relaxed atomics; advisory while
/// operations run, exact at quiescence).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub deletes: AtomicU64,
    pub ranges: AtomicU64,
    /// Components of multi-key batches applied to this shard.
    pub batch_parts: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, shard: usize, keys: u64, owned: bool) -> ShardStats {
        ShardStats {
            shard,
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            ranges: self.ranges.load(Ordering::Relaxed),
            batch_parts: self.batch_parts.load(Ordering::Relaxed),
            keys,
            owned,
        }
    }
}

/// A point-in-time copy of one shard's operation counters and load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Point lookups routed here.
    pub gets: u64,
    /// Single-key puts routed here.
    pub puts: u64,
    /// Single-key deletes routed here.
    pub deletes: u64,
    /// Range queries that visited this shard.
    pub ranges: u64,
    /// Multi-key batch components applied to this shard.
    pub batch_parts: u64,
    /// Keys currently held (approximate while operations run).
    pub keys: u64,
    /// Whether the shard owns a key interval in the current routing
    /// epoch (always true under hash partitioning; false for range-mode
    /// slots a merge emptied that no split has reused yet).
    pub owned: bool,
}

impl ShardStats {
    /// All operations that touched this shard.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.ranges + self.batch_parts
    }
}

/// A point-in-time statistics snapshot for a whole store.
///
/// `stm` aggregates the **shared** transactional domain: cross-shard
/// atomicity requires every shard to run on one domain, so commit/abort
/// counts are store-wide by construction (a per-shard abort count would
/// claim a precision the substrate cannot provide).
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Per-shard operation counters and key counts.
    pub shards: Vec<ShardStats>,
    /// Commit/abort counters of the shared STM domain.
    pub stm: StatsSnapshot,
    /// Batches that mapped at least two keys to one shard. These commit
    /// through the same single multi-list transaction as any other batch
    /// (the multi-op chain rebuild); the counter tracks how collision-heavy
    /// the workload is.
    pub collision_batches: u64,
    /// Current routing-table version (0 until the first completed split
    /// or merge).
    pub epoch: u64,
    /// Every in-flight migration, in key order (disjoint ranges; empty
    /// when no reshard is running).
    pub migrations: Vec<MigrationView>,
    /// Most concurrent in-flight migrations ever observed — `>= 2` proves
    /// disjoint hot ranges actually rebalanced in parallel.
    pub peak_concurrent_migrations: u64,
    /// Migrations (splits and merges) completed since construction.
    pub migrations_completed: u64,
}

impl StoreStats {
    /// Aborts per committed transaction (0.0 when nothing committed) — the
    /// contention signal the evaluation tracks.
    pub fn abort_rate(&self) -> f64 {
        let commits = self.stm.total_commits();
        if commits == 0 {
            0.0
        } else {
            self.stm.total_aborts() as f64 / commits as f64
        }
    }

    /// Key-count spread over interval-owning shards: `max keys − min
    /// keys`. The balance signal the rebalancer narrows; 0 when fewer
    /// than two shards own intervals.
    pub fn key_spread(&self) -> u64 {
        let owned = self.shards.iter().filter(|s| s.owned);
        match (
            owned.clone().map(|s| s.keys).max(),
            owned.map(|s| s.keys).min(),
        ) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Relative key-count spread over interval-owning shards: the hottest
    /// shard's key count divided by the mean (`1.0` = perfectly even).
    ///
    /// Defined on every input — no `NaN` and no division by zero: an
    /// empty store (every owned shard at 0 keys), a store with no owned
    /// slots at all, and a layout whose only populated slot was emptied
    /// by a merge (`owned == false`, excluded from the census) all
    /// report `1.0`, the "nothing to narrow" value.
    pub fn key_spread_ratio(&self) -> f64 {
        let owned: Vec<u64> = self
            .shards
            .iter()
            .filter(|s| s.owned)
            .map(|s| s.keys)
            .collect();
        let total: u64 = owned.iter().sum();
        if owned.is_empty() || total == 0 {
            return 1.0;
        }
        let max = *owned.iter().max().expect("non-empty") as f64;
        max / (total as f64 / owned.len() as f64)
    }

    /// Number of migrations currently in flight.
    pub fn concurrent_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Renders one `{...}` JSON object per line, machine-parseable for the
    /// benchmark harness's `BENCH_*.json` outputs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"gets\":{},\"puts\":{},\"deletes\":{},\"ranges\":{},\"batch_parts\":{},\"keys\":{},\"owned\":{}}}",
                s.shard, s.gets, s.puts, s.deletes, s.ranges, s.batch_parts, s.keys, s.owned
            ));
        }
        out.push_str(&format!(
            "],\"stm\":{{\"commits\":{},\"read_only_commits\":{},\"conflict_aborts\":{},\"explicit_aborts\":{}}},\"collision_batches\":{},\"abort_rate\":{:.6},\"epoch\":{},\"migrations_completed\":{},\"concurrent_migrations\":{},\"peak_concurrent_migrations\":{},\"key_spread\":{},\"key_spread_ratio\":{:.4}}}",
            self.stm.commits,
            self.stm.read_only_commits,
            self.stm.conflict_aborts,
            self.stm.explicit_aborts,
            self.collision_batches,
            self.abort_rate(),
            self.epoch,
            self.migrations_completed,
            self.concurrent_migrations(),
            self.peak_concurrent_migrations,
            self.key_spread(),
            self.key_spread_ratio(),
        ));
        out
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
            "shard", "gets", "puts", "deletes", "ranges", "batch_parts", "keys", "owned"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
                s.shard, s.gets, s.puts, s.deletes, s.ranges, s.batch_parts, s.keys, s.owned
            )?;
        }
        for m in &self.migrations {
            writeln!(
                f,
                "migrating [{}, {}] shard {} -> {} ({} keys moved)",
                m.lo, m.hi, m.src, m.dst, m.moved
            )?;
        }
        write!(
            f,
            "stm: {} | collision_batches={} | abort_rate={:.4} | epoch={} | migrations={} (in flight {}, peak {}) | key_spread={} ({:.2}x mean)",
            self.stm,
            self.collision_batches,
            self.abort_rate(),
            self.epoch,
            self.migrations_completed,
            self.concurrent_migrations(),
            self.peak_concurrent_migrations,
            self.key_spread(),
            self.key_spread_ratio(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_rates_divide() {
        let stats = StoreStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    gets: 1,
                    puts: 2,
                    deletes: 3,
                    ranges: 4,
                    batch_parts: 5,
                    keys: 40,
                    owned: true,
                },
                ShardStats {
                    keys: 10,
                    owned: true,
                    shard: 1,
                    ..ShardStats::default()
                },
                ShardStats {
                    keys: 0,
                    owned: false,
                    shard: 2,
                    ..ShardStats::default()
                },
            ],
            stm: StatsSnapshot {
                commits: 8,
                read_only_commits: 2,
                conflict_aborts: 4,
                explicit_aborts: 1,
            },
            collision_batches: 7,
            epoch: 3,
            migrations: vec![
                MigrationView {
                    src: 0,
                    dst: 2,
                    lo: 100,
                    hi: 199,
                    moved: 12,
                },
                MigrationView {
                    src: 1,
                    dst: 3,
                    lo: 600,
                    hi: 699,
                    moved: 4,
                },
            ],
            peak_concurrent_migrations: 2,
            migrations_completed: 3,
        };
        assert_eq!(stats.shards[0].total_ops(), 15);
        assert!((stats.abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(
            stats.key_spread(),
            30,
            "unowned slots must not drag the spread"
        );
        assert_eq!(stats.concurrent_migrations(), 2);
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"shard\":").count(), 3);
        assert!(json.contains("\"collision_batches\":7"));
        assert!(json.contains("\"keys\":40"));
        assert!(json.contains("\"owned\":false"));
        assert!(json.contains("\"epoch\":3"));
        assert!(json.contains("\"migrations_completed\":3"));
        assert!(json.contains("\"concurrent_migrations\":2"));
        assert!(json.contains("\"peak_concurrent_migrations\":2"));
        assert!(json.contains("\"key_spread\":30"));
        assert!(json.contains("\"key_spread_ratio\":1.6000"));
        assert_eq!(StoreStats::default().abort_rate(), 0.0);
        assert_eq!(StoreStats::default().key_spread(), 0);
        let text = format!("{stats}");
        assert!(text.contains("abort_rate=0.5000"));
        assert!(text.contains("collision_batches=7"));
        assert!(text.contains("migrating [100, 199] shard 0 -> 2"));
        assert!(text.contains("migrating [600, 699] shard 1 -> 3"));
        assert!(text.contains("key_spread=30"));
    }

    /// The division path of the relative spread: every degenerate census
    /// — empty store, no owned slot, a merge-emptied slot (`owned ==
    /// false`) holding stale keys — must yield a defined finite value,
    /// never `NaN` or a panic.
    #[test]
    fn key_spread_ratio_is_defined_on_degenerate_stores() {
        // Zero shards at all (Default).
        assert_eq!(StoreStats::default().key_spread_ratio(), 1.0);
        // All-empty owned shards (a fresh store).
        let fresh = StoreStats {
            shards: (0..4)
                .map(|s| ShardStats {
                    shard: s,
                    owned: true,
                    ..ShardStats::default()
                })
                .collect(),
            ..StoreStats::default()
        };
        assert_eq!(fresh.key_spread_ratio(), 1.0);
        assert!(fresh.to_json().contains("\"key_spread_ratio\":1.0000"));
        // No slot owns an interval at all.
        let unowned = StoreStats {
            shards: vec![ShardStats {
                keys: 9,
                owned: false,
                ..ShardStats::default()
            }],
            ..StoreStats::default()
        };
        assert_eq!(unowned.key_spread_ratio(), 1.0);
        // A merge emptied slot 1 (owned == false): excluded, so the two
        // live shards with 10 and 30 keys give max/mean = 30/20.
        let merged = StoreStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    keys: 10,
                    owned: true,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    keys: 0,
                    owned: false,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 2,
                    keys: 30,
                    owned: true,
                    ..ShardStats::default()
                },
            ],
            ..StoreStats::default()
        };
        assert!((merged.key_spread_ratio() - 1.5).abs() < 1e-9);
        assert!(merged.key_spread_ratio().is_finite());
    }
}
