//! The per-shard statistics surface: operation counters kept by the store,
//! per-shard key counts and interval ownership (the signals the rebalancer
//! acts on), routing-epoch and migration progress, plus the transaction
//! commit/abort counters re-exported from the shared `leap_stm` domain.
//!
//! Rendered through the `leap_obs` JSON emitter ([`StoreStats::to_json`])
//! or as Prometheus text ([`StoreStats::to_prometheus`]); when the store's
//! observability instruments are enabled the snapshot additionally carries
//! per-op-kind latency histograms, the per-transaction retry histogram and
//! the migration/drain event timeline.

use crate::obs::ObsSnapshot;
use crate::router::MigrationView;
use leap_obs::Json;
use leap_stm::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live operation counters for one shard (relaxed atomics; advisory while
/// operations run, exact at quiescence).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub deletes: AtomicU64,
    pub ranges: AtomicU64,
    /// Components of multi-key batches applied to this shard.
    pub batch_parts: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        // ORDERING: monotonic stat counter; no publication rides on it.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, shard: usize, keys: u64, owned: bool) -> ShardStats {
        // ORDERING: monotonic stat counters; a snapshot only needs
        // eventually-consistent values.
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ShardStats {
            shard,
            gets: ld(&self.gets),
            puts: ld(&self.puts),
            deletes: ld(&self.deletes),
            ranges: ld(&self.ranges),
            batch_parts: ld(&self.batch_parts),
            keys,
            owned,
        }
    }
}

/// A point-in-time copy of one shard's operation counters and load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Point lookups routed here.
    pub gets: u64,
    /// Single-key puts routed here.
    pub puts: u64,
    /// Single-key deletes routed here.
    pub deletes: u64,
    /// Range queries that visited this shard.
    pub ranges: u64,
    /// Multi-key batch components applied to this shard.
    pub batch_parts: u64,
    /// Keys currently held (approximate while operations run).
    pub keys: u64,
    /// Whether the shard owns a key interval in the current routing
    /// epoch (always true under hash partitioning; false for range-mode
    /// slots a merge emptied that no split has reused yet).
    pub owned: bool,
}

impl ShardStats {
    /// All operations that touched this shard.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.ranges + self.batch_parts
    }
}

/// A point-in-time statistics snapshot for a whole store.
///
/// `stm` aggregates the **shared** transactional domain: cross-shard
/// atomicity requires every shard to run on one domain, so commit/abort
/// counts are store-wide by construction (a per-shard abort count would
/// claim a precision the substrate cannot provide).
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Per-shard operation counters and key counts.
    pub shards: Vec<ShardStats>,
    /// Commit/abort counters of the shared STM domain.
    pub stm: StatsSnapshot,
    /// Batches that mapped at least two keys to one shard. These commit
    /// through the same single multi-list transaction as any other batch
    /// (the multi-op chain rebuild); the counter tracks how collision-heavy
    /// the workload is.
    pub collision_batches: u64,
    /// Current routing-table version (0 until the first completed split
    /// or merge).
    pub epoch: u64,
    /// Every in-flight migration, in key order (disjoint ranges; empty
    /// when no reshard is running).
    pub migrations: Vec<MigrationView>,
    /// Most concurrent in-flight migrations ever observed — `>= 2` proves
    /// disjoint hot ranges actually rebalanced in parallel.
    pub peak_concurrent_migrations: u64,
    /// Migrations (splits and merges) completed since construction.
    pub migrations_completed: u64,
    /// Migrations resolved by rollback — an explicit
    /// [`crate::LeapStore::abort_migration`] call or the stuck-migration
    /// watchdog — rather than by completing forward.
    pub aborted_migrations: u64,
    /// Operations refused by batcher admission control or dropped by an
    /// injected drain fault; each surfaced to its caller as
    /// [`crate::StoreError::Overloaded`].
    pub shed_ops: u64,
    /// Snapshot-isolated scans started ([`crate::LeapStore::scan_snapshot`]
    /// cursors pinned) since construction.
    pub snapshot_scans: u64,
    /// High-water mark of any shard's level-0 version-bundle depth: 1 when
    /// no commit ever ran under a live snapshot pin; bounded by
    /// commits-per-pin-lifetime (bundles prune back on append once the
    /// pin drops).
    pub bundle_depth: u64,
    /// Instrument snapshot (latency histograms, retry histogram, event
    /// timeline) when the store was built with observability enabled.
    pub obs: Option<ObsSnapshot>,
}

impl StoreStats {
    /// Aborts per committed transaction (0.0 when nothing committed) — the
    /// contention signal the evaluation tracks.
    pub fn abort_rate(&self) -> f64 {
        let commits = self.stm.total_commits();
        if commits == 0 {
            0.0
        } else {
            self.stm.total_aborts() as f64 / commits as f64
        }
    }

    /// Key-count spread over interval-owning shards: `max keys − min
    /// keys`. The balance signal the rebalancer narrows; 0 when fewer
    /// than two shards own intervals.
    pub fn key_spread(&self) -> u64 {
        let owned = self.shards.iter().filter(|s| s.owned);
        match (
            owned.clone().map(|s| s.keys).max(),
            owned.map(|s| s.keys).min(),
        ) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Relative key-count spread over interval-owning shards: the hottest
    /// shard's key count divided by the mean (`1.0` = perfectly even).
    ///
    /// Defined on every input — no `NaN` and no division by zero: an
    /// empty store (every owned shard at 0 keys), a store with no owned
    /// slots at all, and a layout whose only populated slot was emptied
    /// by a merge (`owned == false`, excluded from the census) all
    /// report `1.0`, the "nothing to narrow" value.
    pub fn key_spread_ratio(&self) -> f64 {
        let owned: Vec<u64> = self
            .shards
            .iter()
            .filter(|s| s.owned)
            .map(|s| s.keys)
            .collect();
        let total: u64 = owned.iter().sum();
        if owned.is_empty() || total == 0 {
            return 1.0;
        }
        // INVARIANT: the empty case returned 1.0 just above.
        let max = *owned.iter().max().expect("non-empty") as f64;
        max / (total as f64 / owned.len() as f64)
    }

    /// Number of migrations currently in flight.
    pub fn concurrent_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// The snapshot as a `leap_obs` JSON tree — see
    /// [`StoreStats::to_json`] for the field contract.
    pub fn to_json_value(&self) -> Json {
        let shards: Vec<Json> = self
            .shards
            .iter()
            .map(|s| {
                Json::obj()
                    .field("shard", Json::U64(s.shard as u64))
                    .field("gets", Json::U64(s.gets))
                    .field("puts", Json::U64(s.puts))
                    .field("deletes", Json::U64(s.deletes))
                    .field("ranges", Json::U64(s.ranges))
                    .field("batch_parts", Json::U64(s.batch_parts))
                    .field("keys", Json::U64(s.keys))
                    .field("owned", Json::Bool(s.owned))
            })
            .collect();
        let stm = Json::obj()
            .field("commits", Json::U64(self.stm.commits))
            .field("read_only_commits", Json::U64(self.stm.read_only_commits))
            .field("conflict_aborts", Json::U64(self.stm.conflict_aborts))
            .field("explicit_aborts", Json::U64(self.stm.explicit_aborts))
            .field(
                "conflict_read_aborts",
                Json::U64(self.stm.conflict_read_aborts),
            )
            .field(
                "conflict_commit_aborts",
                Json::U64(self.stm.conflict_commit_aborts),
            )
            .field("timeouts", Json::U64(self.stm.timeouts));
        let mut out = Json::obj()
            .field("shards", Json::Arr(shards))
            .field("stm", stm)
            .field("collision_batches", Json::U64(self.collision_batches))
            .field("abort_rate", Json::fixed(self.abort_rate(), 6))
            .field("epoch", Json::U64(self.epoch))
            .field("migrations_completed", Json::U64(self.migrations_completed))
            .field(
                "concurrent_migrations",
                Json::U64(self.concurrent_migrations() as u64),
            )
            .field(
                "peak_concurrent_migrations",
                Json::U64(self.peak_concurrent_migrations),
            )
            .field("key_spread", Json::U64(self.key_spread()))
            .field("key_spread_ratio", Json::fixed(self.key_spread_ratio(), 4))
            .field("aborted_migrations", Json::U64(self.aborted_migrations))
            .field("shed_ops", Json::U64(self.shed_ops))
            .field("snapshot_scans", Json::U64(self.snapshot_scans))
            .field("bundle_depth", Json::U64(self.bundle_depth));
        if let Some(obs) = &self.obs {
            out = out
                .field("op_latency", obs.op_latency_json())
                .field("txn_retries", obs.txn_retries.to_json_ns())
                .field("events", obs.events.to_json());
        }
        out
    }

    /// Renders one `{...}` JSON object per line, machine-parseable for the
    /// benchmark harness's `BENCH_*.json` outputs. The legacy keys (shard
    /// counters, stm commits/aborts, rates, migration progress) keep their
    /// historical order and formatting; stores with observability enabled
    /// append `op_latency` (per-op-kind latency histograms), `txn_retries`
    /// (attempts per committed transaction) and `events` (the
    /// migration/drain timeline).
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// The snapshot in Prometheus text exposition format: per-shard op
    /// counters as labelled series, the domain's commit/abort counters
    /// with abort-cause labels, migration/epoch gauges, and (when
    /// observability is enabled) one histogram block per op kind plus the
    /// retry histogram and the event ring's loss accounting.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (metric, pick) in [
            (
                "store_shard_gets",
                (|s: &ShardStats| s.gets) as fn(&ShardStats) -> u64,
            ),
            ("store_shard_puts", |s| s.puts),
            ("store_shard_deletes", |s| s.deletes),
            ("store_shard_ranges", |s| s.ranges),
            ("store_shard_batch_parts", |s| s.batch_parts),
            ("store_shard_keys", |s| s.keys),
        ] {
            out.push_str(&format!("# TYPE {metric} gauge\n"));
            for s in &self.shards {
                out.push_str(&format!("{metric}{{shard=\"{}\"}} {}\n", s.shard, pick(s)));
            }
        }
        out.push_str(&format!(
            "# TYPE stm_commits counter\nstm_commits{{kind=\"write\"}} {}\nstm_commits{{kind=\"read_only\"}} {}\n",
            self.stm.commits, self.stm.read_only_commits
        ));
        out.push_str(&format!(
            "# TYPE stm_aborts counter\nstm_aborts{{cause=\"conflict_read\"}} {}\nstm_aborts{{cause=\"conflict_commit\"}} {}\nstm_aborts{{cause=\"explicit\"}} {}\n",
            self.stm.conflict_read_aborts, self.stm.conflict_commit_aborts, self.stm.explicit_aborts
        ));
        out.push_str(&format!(
            "# TYPE store_epoch gauge\nstore_epoch {}\n",
            self.epoch
        ));
        out.push_str(&format!(
            "# TYPE store_migrations_completed counter\nstore_migrations_completed {}\n",
            self.migrations_completed
        ));
        out.push_str(&format!(
            "# TYPE store_migrations_in_flight gauge\nstore_migrations_in_flight {}\n",
            self.concurrent_migrations()
        ));
        out.push_str(&format!(
            "# TYPE store_migrations_aborted counter\nstore_migrations_aborted {}\n",
            self.aborted_migrations
        ));
        out.push_str(&format!(
            "# TYPE store_shed_ops counter\nstore_shed_ops {}\n",
            self.shed_ops
        ));
        out.push_str(&format!(
            "# TYPE store_snapshot_scans counter\nstore_snapshot_scans {}\n",
            self.snapshot_scans
        ));
        out.push_str(&format!(
            "# TYPE store_bundle_depth gauge\nstore_bundle_depth {}\n",
            self.bundle_depth
        ));
        out.push_str(&format!(
            "# TYPE stm_timeouts counter\nstm_timeouts {}\n",
            self.stm.timeouts
        ));
        if let Some(obs) = &self.obs {
            for (kind, snap) in &obs.op_latency {
                out.push_str(&snap.to_prometheus(&format!("store_op_{kind}_ns")));
            }
            out.push_str(&obs.txn_retries.to_prometheus("stm_txn_retries"));
            out.push_str(&format!(
                "# TYPE store_events_published counter\nstore_events_published {}\n",
                obs.events.dropped + obs.events.events.len() as u64
            ));
            out.push_str(&format!(
                "# TYPE store_events_dropped counter\nstore_events_dropped {}\n",
                obs.events.dropped
            ));
        }
        out
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
            "shard", "gets", "puts", "deletes", "ranges", "batch_parts", "keys", "owned"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
                s.shard, s.gets, s.puts, s.deletes, s.ranges, s.batch_parts, s.keys, s.owned
            )?;
        }
        for m in &self.migrations {
            writeln!(
                f,
                "migrating [{}, {}] shard {} -> {} ({} keys moved)",
                m.lo, m.hi, m.src, m.dst, m.moved
            )?;
        }
        write!(
            f,
            "stm: {} | collision_batches={} | abort_rate={:.4} | epoch={} | migrations={} (in flight {}, peak {}, aborted {}) | shed_ops={} | key_spread={} ({:.2}x mean) | snapshot_scans={} (bundle_depth {})",
            self.stm,
            self.collision_batches,
            self.abort_rate(),
            self.epoch,
            self.migrations_completed,
            self.concurrent_migrations(),
            self.peak_concurrent_migrations,
            self.aborted_migrations,
            self.shed_ops,
            self.key_spread(),
            self.key_spread_ratio(),
            self.snapshot_scans,
            self.bundle_depth,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_rates_divide() {
        let stats = StoreStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    gets: 1,
                    puts: 2,
                    deletes: 3,
                    ranges: 4,
                    batch_parts: 5,
                    keys: 40,
                    owned: true,
                },
                ShardStats {
                    keys: 10,
                    owned: true,
                    shard: 1,
                    ..ShardStats::default()
                },
                ShardStats {
                    keys: 0,
                    owned: false,
                    shard: 2,
                    ..ShardStats::default()
                },
            ],
            stm: StatsSnapshot {
                commits: 8,
                read_only_commits: 2,
                conflict_aborts: 4,
                conflict_read_aborts: 3,
                conflict_commit_aborts: 1,
                explicit_aborts: 1,
                timeouts: 2,
            },
            collision_batches: 7,
            epoch: 3,
            migrations: vec![
                MigrationView {
                    id: 1,
                    src: 0,
                    dst: 2,
                    lo: 100,
                    hi: 199,
                    moved: 12,
                },
                MigrationView {
                    id: 2,
                    src: 1,
                    dst: 3,
                    lo: 600,
                    hi: 699,
                    moved: 4,
                },
            ],
            peak_concurrent_migrations: 2,
            migrations_completed: 3,
            aborted_migrations: 1,
            shed_ops: 6,
            snapshot_scans: 5,
            bundle_depth: 4,
            obs: None,
        };
        assert_eq!(stats.shards[0].total_ops(), 15);
        assert!((stats.abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(
            stats.key_spread(),
            30,
            "unowned slots must not drag the spread"
        );
        assert_eq!(stats.concurrent_migrations(), 2);
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"shard\":").count(), 3);
        assert!(json.contains("\"collision_batches\":7"));
        assert!(json.contains("\"keys\":40"));
        assert!(json.contains("\"owned\":false"));
        assert!(json.contains("\"epoch\":3"));
        assert!(json.contains("\"migrations_completed\":3"));
        assert!(json.contains("\"concurrent_migrations\":2"));
        assert!(json.contains("\"peak_concurrent_migrations\":2"));
        assert!(json.contains("\"key_spread\":30"));
        assert!(json.contains("\"key_spread_ratio\":1.6000"));
        assert!(json.contains("\"aborted_migrations\":1"));
        assert!(json.contains("\"shed_ops\":6"));
        assert!(json.contains("\"snapshot_scans\":5"));
        assert!(json.contains("\"bundle_depth\":4"));
        assert!(json.contains("\"timeouts\":2"));
        assert!(json.contains("\"abort_rate\":0.500000"));
        assert!(
            json.contains(
                "\"explicit_aborts\":1,\"conflict_read_aborts\":3,\"conflict_commit_aborts\":1"
            ),
            "cause breakdown appends after the legacy stm keys: {json}"
        );
        assert!(
            !json.contains("\"op_latency\""),
            "no obs snapshot, no obs keys"
        );
        assert_eq!(StoreStats::default().abort_rate(), 0.0);
        assert_eq!(StoreStats::default().key_spread(), 0);
        let text = format!("{stats}");
        assert!(text.contains("abort_rate=0.5000"));
        assert!(text.contains("collision_batches=7"));
        assert!(text.contains("migrating [100, 199] shard 0 -> 2"));
        assert!(text.contains("migrating [600, 699] shard 1 -> 3"));
        assert!(text.contains("key_spread=30"));
        assert!(text.contains("snapshot_scans=5 (bundle_depth 4)"));
    }

    /// The division path of the relative spread: every degenerate census
    /// — empty store, no owned slot, a merge-emptied slot (`owned ==
    /// false`) holding stale keys — must yield a defined finite value,
    /// never `NaN` or a panic.
    #[test]
    fn key_spread_ratio_is_defined_on_degenerate_stores() {
        // Zero shards at all (Default).
        assert_eq!(StoreStats::default().key_spread_ratio(), 1.0);
        // All-empty owned shards (a fresh store).
        let fresh = StoreStats {
            shards: (0..4)
                .map(|s| ShardStats {
                    shard: s,
                    owned: true,
                    ..ShardStats::default()
                })
                .collect(),
            ..StoreStats::default()
        };
        assert_eq!(fresh.key_spread_ratio(), 1.0);
        assert!(fresh.to_json().contains("\"key_spread_ratio\":1.0000"));
        // No slot owns an interval at all.
        let unowned = StoreStats {
            shards: vec![ShardStats {
                keys: 9,
                owned: false,
                ..ShardStats::default()
            }],
            ..StoreStats::default()
        };
        assert_eq!(unowned.key_spread_ratio(), 1.0);
        // A merge emptied slot 1 (owned == false): excluded, so the two
        // live shards with 10 and 30 keys give max/mean = 30/20.
        let merged = StoreStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    keys: 10,
                    owned: true,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    keys: 0,
                    owned: false,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 2,
                    keys: 30,
                    owned: true,
                    ..ShardStats::default()
                },
            ],
            ..StoreStats::default()
        };
        assert!((merged.key_spread_ratio() - 1.5).abs() < 1e-9);
        assert!(merged.key_spread_ratio().is_finite());
    }

    /// A live store's snapshot carries the instrument keys and both render
    /// targets agree on the headline numbers.
    #[test]
    fn obs_backed_snapshot_renders_json_and_prometheus() {
        use crate::router::Partitioning;
        use crate::store::StoreConfig;
        let store: crate::LeapStore<u64> =
            crate::LeapStore::new(StoreConfig::new(2, Partitioning::Hash));
        for k in 0..50u64 {
            store.put(k, k);
        }
        assert_eq!(store.len(), 50);
        let stats = store.stats();
        let obs = stats.obs.as_ref().expect("obs on by default");
        assert!(
            obs.op_latency
                .iter()
                .any(|(k, s)| *k == "put" && s.count == 50),
            "every put recorded a latency sample"
        );
        assert!(
            obs.txn_retries.count >= 50,
            "the recorder saw every committed transaction"
        );
        let json = stats.to_json();
        assert!(
            json.contains("\"op_latency\":{\"get\":{\"count\":"),
            "{json}"
        );
        assert!(json.contains("\"txn_retries\":{\"count\":"), "{json}");
        assert!(json.contains("\"events\":{\"capacity\":"), "{json}");
        assert!(json.contains("\"p999_ns\":"), "{json}");
        let prom = stats.to_prometheus();
        assert!(prom.contains("# TYPE store_shard_puts gauge\n"), "{prom}");
        assert!(prom.contains("stm_commits{kind=\"write\"} "), "{prom}");
        assert!(
            prom.contains("stm_aborts{cause=\"conflict_read\"} "),
            "{prom}"
        );
        assert!(
            prom.contains("# TYPE store_op_put_ns histogram\n"),
            "{prom}"
        );
        assert!(prom.contains("store_op_put_ns_count 50\n"), "{prom}");
        assert!(
            prom.contains("# TYPE stm_txn_retries histogram\n"),
            "{prom}"
        );
        assert!(prom.contains("store_events_dropped 0\n"), "{prom}");
        assert!(prom.contains("store_snapshot_scans 0\n"), "{prom}");
        assert!(prom.contains("# TYPE store_bundle_depth gauge\n"), "{prom}");
        // A store built without obs renders neither instrument block.
        let plain: crate::LeapStore<u64> =
            crate::LeapStore::new(StoreConfig::new(2, Partitioning::Hash).with_obs(false));
        plain.put(1, 1);
        let pstats = plain.stats();
        assert!(pstats.obs.is_none());
        assert!(!pstats.to_json().contains("op_latency"));
        assert!(!pstats.to_prometheus().contains("store_op_put_ns"));
    }
}
