//! The per-shard statistics surface: operation counters kept by the store,
//! per-shard key counts and interval ownership (the signals the rebalancer
//! acts on), routing-epoch and migration progress, plus the transaction
//! commit/abort counters re-exported from the shared `leap_stm` domain.

use crate::router::MigrationView;
use leap_stm::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live operation counters for one shard (relaxed atomics; advisory while
/// operations run, exact at quiescence).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub deletes: AtomicU64,
    pub ranges: AtomicU64,
    /// Components of multi-key batches applied to this shard.
    pub batch_parts: AtomicU64,
}

impl ShardCounters {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, shard: usize, keys: u64, owned: bool) -> ShardStats {
        ShardStats {
            shard,
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            ranges: self.ranges.load(Ordering::Relaxed),
            batch_parts: self.batch_parts.load(Ordering::Relaxed),
            keys,
            owned,
        }
    }
}

/// A point-in-time copy of one shard's operation counters and load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Point lookups routed here.
    pub gets: u64,
    /// Single-key puts routed here.
    pub puts: u64,
    /// Single-key deletes routed here.
    pub deletes: u64,
    /// Range queries that visited this shard.
    pub ranges: u64,
    /// Multi-key batch components applied to this shard.
    pub batch_parts: u64,
    /// Keys currently held (approximate while operations run).
    pub keys: u64,
    /// Whether the shard owns a key interval in the current routing
    /// epoch (always true under hash partitioning; false for range-mode
    /// slots a merge emptied that no split has reused yet).
    pub owned: bool,
}

impl ShardStats {
    /// All operations that touched this shard.
    pub fn total_ops(&self) -> u64 {
        self.gets + self.puts + self.deletes + self.ranges + self.batch_parts
    }
}

/// A point-in-time statistics snapshot for a whole store.
///
/// `stm` aggregates the **shared** transactional domain: cross-shard
/// atomicity requires every shard to run on one domain, so commit/abort
/// counts are store-wide by construction (a per-shard abort count would
/// claim a precision the substrate cannot provide).
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Per-shard operation counters and key counts.
    pub shards: Vec<ShardStats>,
    /// Commit/abort counters of the shared STM domain.
    pub stm: StatsSnapshot,
    /// Batches that mapped at least two keys to one shard. These commit
    /// through the same single multi-list transaction as any other batch
    /// (the multi-op chain rebuild); the counter tracks how collision-heavy
    /// the workload is.
    pub collision_batches: u64,
    /// Current routing-table version (0 until the first completed split
    /// or merge).
    pub epoch: u64,
    /// The in-flight migration, if one is running.
    pub migration: Option<MigrationView>,
    /// Migrations (splits and merges) completed since construction.
    pub migrations_completed: u64,
}

impl StoreStats {
    /// Aborts per committed transaction (0.0 when nothing committed) — the
    /// contention signal the evaluation tracks.
    pub fn abort_rate(&self) -> f64 {
        let commits = self.stm.total_commits();
        if commits == 0 {
            0.0
        } else {
            self.stm.total_aborts() as f64 / commits as f64
        }
    }

    /// Key-count spread over interval-owning shards: `max keys − min
    /// keys`. The balance signal the rebalancer narrows; 0 when fewer
    /// than two shards own intervals.
    pub fn key_spread(&self) -> u64 {
        let owned = self.shards.iter().filter(|s| s.owned);
        match (
            owned.clone().map(|s| s.keys).max(),
            owned.map(|s| s.keys).min(),
        ) {
            (Some(max), Some(min)) => max - min,
            _ => 0,
        }
    }

    /// Renders one `{...}` JSON object per line, machine-parseable for the
    /// benchmark harness's `BENCH_*.json` outputs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"shard\":{},\"gets\":{},\"puts\":{},\"deletes\":{},\"ranges\":{},\"batch_parts\":{},\"keys\":{},\"owned\":{}}}",
                s.shard, s.gets, s.puts, s.deletes, s.ranges, s.batch_parts, s.keys, s.owned
            ));
        }
        out.push_str(&format!(
            "],\"stm\":{{\"commits\":{},\"read_only_commits\":{},\"conflict_aborts\":{},\"explicit_aborts\":{}}},\"collision_batches\":{},\"abort_rate\":{:.6},\"epoch\":{},\"migrations_completed\":{},\"key_spread\":{}}}",
            self.stm.commits,
            self.stm.read_only_commits,
            self.stm.conflict_aborts,
            self.stm.explicit_aborts,
            self.collision_batches,
            self.abort_rate(),
            self.epoch,
            self.migrations_completed,
            self.key_spread(),
        ));
        out
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
            "shard", "gets", "puts", "deletes", "ranges", "batch_parts", "keys", "owned"
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>10} {:>6}",
                s.shard, s.gets, s.puts, s.deletes, s.ranges, s.batch_parts, s.keys, s.owned
            )?;
        }
        if let Some(m) = &self.migration {
            writeln!(
                f,
                "migrating [{}, {}] shard {} -> {} ({} keys moved)",
                m.lo, m.hi, m.src, m.dst, m.moved
            )?;
        }
        write!(
            f,
            "stm: {} | collision_batches={} | abort_rate={:.4} | epoch={} | migrations={} | key_spread={}",
            self.stm,
            self.collision_batches,
            self.abort_rate(),
            self.epoch,
            self.migrations_completed,
            self.key_spread(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_rates_divide() {
        let stats = StoreStats {
            shards: vec![
                ShardStats {
                    shard: 0,
                    gets: 1,
                    puts: 2,
                    deletes: 3,
                    ranges: 4,
                    batch_parts: 5,
                    keys: 40,
                    owned: true,
                },
                ShardStats {
                    keys: 10,
                    owned: true,
                    shard: 1,
                    ..ShardStats::default()
                },
                ShardStats {
                    keys: 0,
                    owned: false,
                    shard: 2,
                    ..ShardStats::default()
                },
            ],
            stm: StatsSnapshot {
                commits: 8,
                read_only_commits: 2,
                conflict_aborts: 4,
                explicit_aborts: 1,
            },
            collision_batches: 7,
            epoch: 3,
            migration: Some(MigrationView {
                src: 0,
                dst: 2,
                lo: 100,
                hi: 199,
                moved: 12,
            }),
            migrations_completed: 3,
        };
        assert_eq!(stats.shards[0].total_ops(), 15);
        assert!((stats.abort_rate() - 0.5).abs() < 1e-9);
        assert_eq!(
            stats.key_spread(),
            30,
            "unowned slots must not drag the spread"
        );
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches("\"shard\":").count(), 3);
        assert!(json.contains("\"collision_batches\":7"));
        assert!(json.contains("\"keys\":40"));
        assert!(json.contains("\"owned\":false"));
        assert!(json.contains("\"epoch\":3"));
        assert!(json.contains("\"migrations_completed\":3"));
        assert!(json.contains("\"key_spread\":30"));
        assert_eq!(StoreStats::default().abort_rate(), 0.0);
        assert_eq!(StoreStats::default().key_spread(), 0);
        let text = format!("{stats}");
        assert!(text.contains("abort_rate=0.5000"));
        assert!(text.contains("collision_batches=7"));
        assert!(text.contains("migrating [100, 199] shard 0 -> 2"));
        assert!(text.contains("key_spread=30"));
    }
}
