//! The paged scan APIs: bounded pages over `[lo, hi]` with a resume key,
//! so a million-key scan never materializes in one transaction and never
//! holds a transaction open between pages. Two consistency modes:
//!
//! * **Per-page linearizable** ([`Cursor`], via [`LeapStore::scan`]):
//!   each page is one linearizable cross-shard transaction
//!   ([`leaplist::LeapListLt::range_page_group`]). Pages are individually
//!   consistent but the scan as a whole is not one snapshot — a writer
//!   landing between pages is seen by later pages only. Pages keep
//!   working while a [`crate::Rebalancer`] moves the very keys being
//!   scanned — each page's plan includes both sides of every overlay it
//!   overlaps, and its range-scoped stamp ignores overlays elsewhere, so
//!   a disjoint range rebalancing never forces a page to retry. This is
//!   also the primitive the migration driver itself pages with.
//!
//! * **Pinned snapshot** ([`SnapshotCursor`], via
//!   [`LeapStore::scan_snapshot`]): the first cursor operation pins the
//!   global commit timestamp once; **every** page then reads the version
//!   bundles at that timestamp. The whole multi-page scan is one
//!   consistent snapshot — across pages, across concurrent batches, and
//!   across in-flight migrations (a migrated key is visible on exactly
//!   one side of the overlay at any timestamp). Pages never retry and
//!   can never be aborted by concurrent commits; the cost is that the
//!   live cursor holds back version-bundle pruning and node reclamation
//!   (drop it promptly). The handle embeds a thread-local epoch guard,
//!   so it is neither `Send` nor `Sync`.

use crate::store::{LeapStore, VisitPlan};
use leaplist::{LeapListLt, ListSnapshot};
use std::sync::Arc;

/// Default pairs per page for [`LeapStore::scan`].
pub const DEFAULT_PAGE_SIZE: usize = 256;

/// A resumable, paged scan over `[lo, hi]` of a [`LeapStore`], in the
/// per-page linearizable mode.
///
/// Every [`Cursor::next_page`] is one linearizable snapshot transaction of
/// at most `page_size` pairs; between pages the store runs free, so a
/// concurrent writer may change keys the cursor has not reached yet (the
/// usual cursor contract — each page is internally consistent, the scan as
/// a whole is not one snapshot). When the whole scan must be one
/// snapshot, use [`LeapStore::scan_snapshot`] instead.
///
/// # Example
///
/// ```
/// use leap_store::{LeapStore, Partitioning, StoreConfig};
///
/// let store: LeapStore<u64> =
///     LeapStore::new(StoreConfig::new(4, Partitioning::Range).with_key_space(1_000));
/// for k in 0..100 {
///     store.put(k, k);
/// }
/// let mut seen = Vec::new();
/// for page in store.scan_pages(0, 999, 16) {
///     assert!(page.len() <= 16);
///     seen.extend(page);
/// }
/// assert_eq!(seen.len(), 100);
/// assert!(seen.windows(2).all(|w| w[0].0 < w[1].0));
/// ```
pub struct Cursor<'a, V> {
    store: &'a LeapStore<V>,
    hi: u64,
    /// Next key to resume from; `None` once exhausted.
    next: Option<u64>,
    page_size: usize,
}

impl<'a, V: Clone + Send + Sync + 'static> Cursor<'a, V> {
    pub(crate) fn new(store: &'a LeapStore<V>, lo: u64, hi: u64, page_size: usize) -> Self {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        assert!(page_size > 0, "a page must hold at least one pair");
        Cursor {
            store,
            hi,
            next: (lo <= hi).then_some(lo),
            page_size,
        }
    }

    /// The next page: at most `page_size` ascending pairs from one
    /// linearizable snapshot, or `None` when the range is exhausted.
    /// Never returns an empty page.
    pub fn next_page(&mut self) -> Option<Vec<(u64, V)>> {
        let lo = self.next?;
        let page = self.store.range_page_merged(lo, self.hi, self.page_size);
        self.next = match page.last() {
            // A full page may have more behind it; resume past its last
            // key. A short page proves every visited shard was exhausted.
            Some(&(last, _)) if page.len() == self.page_size && last < self.hi => Some(last + 1),
            _ => None,
        };
        (!page.is_empty()).then_some(page)
    }

    /// Where the next page resumes (`None` once exhausted). Persist this
    /// to continue a scan later with a fresh cursor over
    /// `[resume_key, hi]`.
    pub fn resume_key(&self) -> Option<u64> {
        self.next
    }

    /// The page size bound.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

impl<V: Clone + Send + Sync + 'static> Iterator for Cursor<'_, V> {
    type Item = Vec<(u64, V)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_page()
    }
}

/// A snapshot-isolated paged scan over `[lo, hi]` of a [`LeapStore`]:
/// every page observes exactly the commits at-or-before one pinned
/// timestamp, chosen when the cursor was created.
///
/// The cursor captures its shard visit plan (including both sides of
/// every in-flight migration it overlaps) **once**, together with the
/// timestamp; pages then walk the shards' version bundles with no
/// transactions, no retries, and no sensitivity to concurrent commits or
/// migrations. The resume key always comes from the snapshot-visible
/// page, so a key deleted — or a whole node replaced — after the pin
/// can never derail the scan.
///
/// The captured `Arc`s keep the visited lists alive even if a migration
/// completes and recycles a source slot mid-scan, and the embedded
/// [`ListSnapshot`] holds back bundle pruning and node reclamation while
/// the cursor lives: drop it as soon as the scan finishes. Not `Send`
/// (the snapshot embeds a thread-local epoch guard).
///
/// # Example
///
/// ```
/// use leap_store::{LeapStore, Partitioning, StoreConfig};
///
/// let store: LeapStore<u64> =
///     LeapStore::new(StoreConfig::new(4, Partitioning::Range).with_key_space(1_000));
/// for k in 0..100 {
///     store.put(k, k);
/// }
/// let mut scan = store.scan_snapshot_pages(0, 999, 16);
/// let first = scan.next_page().expect("first page");
/// // Writers landing after the pin are invisible to every later page:
/// store.put(500, 999);
/// let rest: Vec<_> = scan.flatten().collect();
/// assert_eq!(first.len() + rest.len(), 100);
/// assert!(rest.iter().all(|&(_, v)| v != 999));
/// ```
pub struct SnapshotCursor<'a, V> {
    store: &'a LeapStore<V>,
    /// The pinned timestamp plus the epoch guard and prune hold-back.
    snap: ListSnapshot,
    /// The captured visit plan: every list that can hold a `[lo, hi]` key
    /// visible at the timestamp, with per-list clipped ranges.
    lists: Vec<Arc<LeapListLt<V>>>,
    clips: Vec<(u64, u64)>,
    /// Whether merged pages interleave (hash placement or an overlay) and
    /// need sorting.
    sort: bool,
    hi: u64,
    /// Next key to resume from; `None` once exhausted.
    next: Option<u64>,
    page_size: usize,
}

impl<'a, V: Clone + Send + Sync + 'static> SnapshotCursor<'a, V> {
    pub(crate) fn new(store: &'a LeapStore<V>, lo: u64, hi: u64, page_size: usize) -> Self {
        assert!(hi < u64::MAX, "key u64::MAX is reserved");
        assert!(page_size > 0, "a page must hold at least one pair");
        let (snap, (lists, clips, sort)): (ListSnapshot, VisitPlan<V>) =
            store.pinned_snapshot_plan(lo, hi);
        SnapshotCursor {
            store,
            snap,
            lists,
            clips,
            sort,
            hi,
            next: (lo <= hi).then_some(lo),
            page_size,
        }
    }

    /// The pinned snapshot timestamp every page reads at.
    pub fn ts(&self) -> u64 {
        self.snap.ts()
    }

    /// The next page: at most `page_size` ascending pairs, **as of the
    /// pinned timestamp**, or `None` when the range is exhausted at the
    /// snapshot. Never returns an empty page, never retries.
    pub fn next_page(&mut self) -> Option<Vec<(u64, V)>> {
        let lo = self.next?;
        let page = self.store.timed_snapshot_page(|| {
            let mut merged: Vec<(u64, V)> = Vec::new();
            for (list, &(clo, chi)) in self.lists.iter().zip(&self.clips) {
                let from = clo.max(lo);
                if from > chi {
                    continue;
                }
                // Appends at most `page_size` pairs per list; the
                // globally first `page_size` are all among them.
                list.snapshot_page_into(&self.snap, from, chi, self.page_size, &mut merged);
            }
            if self.sort {
                merged.sort_unstable_by_key(|(k, _)| *k);
            }
            merged.truncate(self.page_size);
            merged
        });
        self.next = match page.last() {
            // The resume key comes from the snapshot-visible page: a
            // boundary key deleted (or its node replaced) after the pin
            // is still the correct place to resume from, because every
            // later page reads at the same timestamp.
            Some(&(last, _)) if page.len() == self.page_size && last < self.hi => Some(last + 1),
            _ => None,
        };
        (!page.is_empty()).then_some(page)
    }

    /// Where the next page resumes (`None` once exhausted). Unlike
    /// [`Cursor::resume_key`], persisting this across cursors does not
    /// extend the snapshot: a fresh snapshot cursor pins a fresh
    /// timestamp.
    pub fn resume_key(&self) -> Option<u64> {
        self.next
    }

    /// The page size bound.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

impl<V: Clone + Send + Sync + 'static> Iterator for SnapshotCursor<'_, V> {
    type Item = Vec<(u64, V)>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_page()
    }
}

impl<V: Clone + Send + Sync + 'static> LeapStore<V> {
    /// A paged scan of `[lo, hi]` with the default page size
    /// ([`DEFAULT_PAGE_SIZE`]). See [`Cursor`].
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn scan(&self, lo: u64, hi: u64) -> Cursor<'_, V> {
        Cursor::new(self, lo, hi, DEFAULT_PAGE_SIZE)
    }

    /// A paged scan of `[lo, hi]` yielding at most `page_size` pairs per
    /// page. See [`Cursor`].
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX` or `page_size` is zero.
    pub fn scan_pages(&self, lo: u64, hi: u64, page_size: usize) -> Cursor<'_, V> {
        Cursor::new(self, lo, hi, page_size)
    }

    /// A snapshot-isolated paged scan of `[lo, hi]` with the default page
    /// size: every page reads at one timestamp pinned now. See
    /// [`SnapshotCursor`].
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX`.
    pub fn scan_snapshot(&self, lo: u64, hi: u64) -> SnapshotCursor<'_, V> {
        SnapshotCursor::new(self, lo, hi, DEFAULT_PAGE_SIZE)
    }

    /// A snapshot-isolated paged scan of `[lo, hi]` yielding at most
    /// `page_size` pairs per page. See [`SnapshotCursor`].
    ///
    /// # Panics
    ///
    /// Panics if `hi == u64::MAX` or `page_size` is zero.
    pub fn scan_snapshot_pages(&self, lo: u64, hi: u64, page_size: usize) -> SnapshotCursor<'_, V> {
        SnapshotCursor::new(self, lo, hi, page_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Partitioning;
    use crate::store::StoreConfig;
    use leaplist::Params;

    fn store(mode: Partitioning) -> LeapStore<u64> {
        LeapStore::new(
            StoreConfig::new(4, mode)
                .with_key_space(1_000)
                .with_params(Params {
                    node_size: 4,
                    max_level: 6,
                    use_trie: true,
                    ..Params::default()
                }),
        )
    }

    #[test]
    fn pages_tile_the_range_in_both_modes() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let s = store(mode);
            for k in 0..150u64 {
                s.put(k * 3, k);
            }
            for page_size in [1usize, 7, 64, 1_000] {
                let mut seen = Vec::new();
                let mut pages = 0;
                for page in s.scan_pages(0, 999, page_size) {
                    assert!(page.len() <= page_size, "{mode:?}");
                    assert!(page.windows(2).all(|w| w[0].0 < w[1].0));
                    seen.extend(page);
                    pages += 1;
                }
                assert_eq!(seen, s.range(0, 999), "{mode:?} page_size {page_size}");
                assert!(pages >= seen.len() / page_size, "{mode:?}");
            }
        }
    }

    #[test]
    fn cursor_respects_bounds_and_resumes() {
        let s = store(Partitioning::Range);
        for k in 0..50u64 {
            s.put(k, k);
        }
        let mut c = s.scan_pages(10, 29, 8);
        let p1 = c.next_page().expect("first page");
        assert_eq!(p1.first().unwrap().0, 10);
        assert_eq!(p1.len(), 8);
        assert_eq!(c.resume_key(), Some(18));
        // A fresh cursor from the resume key continues seamlessly.
        let rest: Vec<_> = s.scan_pages(18, 29, 8).flatten().collect();
        assert_eq!(rest.first().unwrap().0, 18);
        assert_eq!(rest.last().unwrap().0, 29);
        // Exhaustion: no empty trailing page.
        let mut c = s.scan_pages(40, 49, 10);
        assert_eq!(c.next_page().unwrap().len(), 10);
        assert_eq!(c.next_page(), None);
        assert_eq!(c.resume_key(), None);
        // Empty and inverted ranges yield no pages.
        assert_eq!(s.scan(600, 999).next(), None);
        assert_eq!(s.scan(30, 10).next(), None);
        assert_eq!(s.scan(30, 10).resume_key(), None);
    }

    #[test]
    fn cursor_sees_each_key_once_across_a_split() {
        let s = store(Partitioning::Range);
        for k in 0..120u64 {
            s.put(k, k);
        }
        let mut c = s.scan_pages(0, 999, 32);
        let p1 = c.next_page().expect("page before split");
        // Reshard mid-scan: split the hot shard, drain it fully.
        s.split_shard(0, 60).expect("split");
        s.rebalance_until_idle();
        let mut seen: Vec<_> = p1;
        for page in c {
            seen.extend(page);
        }
        assert_eq!(
            seen,
            (0..120u64).map(|k| (k, k)).collect::<Vec<_>>(),
            "no key lost or doubled across the epoch change"
        );
    }

    #[test]
    #[should_panic(expected = "at least one pair")]
    fn zero_page_size_rejected() {
        let s = store(Partitioning::Hash);
        s.scan_pages(0, 10, 0);
    }

    #[test]
    fn snapshot_pages_ignore_later_writes_in_both_modes() {
        for mode in [Partitioning::Hash, Partitioning::Range] {
            let s = store(mode);
            for k in 0..100u64 {
                s.put(k, k);
            }
            let expected: Vec<_> = (0..100u64).map(|k| (k, k)).collect();
            let mut scan = s.scan_snapshot_pages(0, 999, 16);
            let mut seen = scan.next_page().expect("first page");
            // Concurrent-looking churn after the pin: overwrite scanned
            // and unscanned keys, delete some, insert new ones.
            for k in 0..100u64 {
                s.put(k, k + 1_000);
            }
            s.delete(17);
            s.put(500, 1);
            for page in scan {
                assert!(page.len() <= 16);
                seen.extend(page);
            }
            assert_eq!(seen, expected, "{mode:?}: the pin froze the view");
            // A fresh snapshot sees the new state.
            let now: Vec<_> = s.scan_snapshot(0, 999).flatten().collect();
            assert_eq!(now.len(), 100, "100 keys - 1 deleted + 1 inserted");
            assert!(now.iter().any(|&(k, v)| k == 0 && v == 1_000));
            assert!(!now.iter().any(|&(k, _)| k == 17));
            assert!(now.iter().any(|&(k, v)| k == 500 && v == 1));
            assert_eq!(s.stats().snapshot_scans, 2, "{mode:?}");
        }
    }

    /// Satellite: the resume key at a page boundary must come from the
    /// snapshot-visible page. Delete the boundary key (and its whole
    /// neighbourhood, forcing node replacements) after the pin: the next
    /// page must resume exactly past the snapshot's boundary key and
    /// still see every pre-pin key.
    #[test]
    fn snapshot_resume_key_survives_boundary_deletion() {
        let s = store(Partitioning::Range);
        for k in 0..60u64 {
            s.put(k, k);
        }
        let mut scan = s.scan_snapshot_pages(0, 999, 10);
        let p1 = scan.next_page().expect("page 1");
        assert_eq!(p1.last().unwrap().0, 9);
        assert_eq!(scan.resume_key(), Some(10));
        // Kill the boundary key, the resume key itself, and everything
        // around them — the live list no longer contains any of them.
        for k in 5..25u64 {
            s.delete(k);
        }
        let mut seen = p1;
        for page in scan {
            seen.extend(page);
        }
        assert_eq!(
            seen,
            (0..60u64).map(|k| (k, k)).collect::<Vec<_>>(),
            "post-pin deletions must not derail the resume key"
        );
    }

    /// Snapshot consistency across an in-flight migration: pin while a
    /// rebalance is mid-drain, finish the migration, then read the
    /// remaining pages — every key appears exactly once with its pinned
    /// value, whether it moved before or after the pin.
    #[test]
    fn snapshot_pages_span_a_completing_migration() {
        let s = store(Partitioning::Range);
        for k in 0..120u64 {
            s.put(k, k);
        }
        // Start a split of shard 0 and drain only part of it, so the
        // overlay is live with keys on both sides.
        s.split_shard(0, 60).expect("split");
        s.rebalance_step();
        let mut scan = s.scan_snapshot_pages(0, 999, 32);
        let p1 = scan.next_page().expect("page before completion");
        // Post-pin: finish the drain, flip the table, overwrite freely.
        s.rebalance_until_idle();
        for k in 0..120u64 {
            s.put(k, k + 500);
        }
        let mut seen = p1;
        for page in scan {
            seen.extend(page);
        }
        assert_eq!(
            seen,
            (0..120u64).map(|k| (k, k)).collect::<Vec<_>>(),
            "one copy per key, at the pinned value, across the migration"
        );
    }

    #[test]
    fn snapshot_cursor_reports_ts_and_empty_ranges() {
        let s = store(Partitioning::Range);
        s.put(3, 30);
        let scan = s.scan_snapshot(10, 20);
        assert!(scan.ts() > 0, "commits moved the clock before the pin");
        assert_eq!(scan.count(), 0, "no pages in an empty sub-range");
        assert_eq!(s.scan_snapshot(30, 10).next(), None, "inverted range");
        let depth = s.stats().bundle_depth;
        assert!(depth >= 1, "bundle depth gauge starts at 1, got {depth}");
    }
}
